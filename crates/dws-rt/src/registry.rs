//! The runtime registry: worker threads, their deques, the injector, the
//! sleep/wake state and the coordinator — i.e. everything behind a
//! [`Runtime`] handle.
//!
//! The worker main loop is the paper's Algorithm 1; the per-policy idle
//! behaviour (spin / ABP-yield / DWS-sleep) is selected by
//! [`crate::config::Policy`].

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use dws_deque::{deque, Injector, Steal, Stealer, Worker as Deque};

use crate::affinity;
use crate::alloc_table::{CoreTable, InProcessTable};
use crate::config::{Policy, RuntimeConfig};
use crate::coordinator::coordinator_loop;
use crate::job::{JobRef, StackJob};
use crate::latch::LockLatch;
use crate::metrics::{AggregatedHistograms, MetricsSnapshot, RtMetrics, WorkerMetricsSnapshot};
use crate::rng::VictimRng;
use crate::sleep::{Sleeper, WakeReason};
use crate::sync::{preempt_point, AtomicBool, AtomicUsize, Ordering};
use crate::telemetry::{sampler_loop, TelemetryFrame, TelemetryHandle, TelemetryState};
use crate::trace::{RtEvent, RtTrace, TraceSnapshot, LANE_SHARED};

thread_local! {
    /// The worker currently driving this thread, if any.
    static CURRENT_WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// Shared, per-worker state visible to other workers and the coordinator.
pub(crate) struct WorkerInfo {
    pub(crate) stealer: Stealer<JobRef>,
    pub(crate) sleeper: Sleeper,
    /// Core this worker is affined to (== worker index for one-per-core
    /// policies).
    pub(crate) core: usize,
}

/// Shared state of one runtime instance.
pub(crate) struct Registry {
    pub(crate) config: RuntimeConfig,
    /// Policy after the §4.4 single-program fallback.
    pub(crate) effective_policy: Policy,
    pub(crate) prog_id: usize,
    pub(crate) table: Arc<dyn CoreTable>,
    pub(crate) injector: Injector<JobRef>,
    pub(crate) workers: Vec<WorkerInfo>,
    pub(crate) metrics: RtMetrics,
    pub(crate) trace: RtTrace,
    pub(crate) telemetry: TelemetryState,
    pub(crate) shutdown: AtomicBool,
    /// Workers that have exited their main loop (shutdown accounting).
    exited: AtomicUsize,
    /// Detached jobs submitted via [`Runtime::spawn`] not yet finished;
    /// shutdown waits for them.
    detached: AtomicUsize,
}

impl Registry {
    /// `N_b` as the coordinator sees it: queued jobs in all deques plus
    /// the injector.
    pub(crate) fn queued_jobs(&self) -> usize {
        self.injector.len() + self.workers.iter().map(|w| w.stealer.len()).sum::<usize>()
    }

    /// Indices of currently sleeping workers.
    pub(crate) fn sleeping_workers(&self) -> Vec<usize> {
        (0..self.workers.len()).filter(|&i| self.workers[i].sleeper.is_sleeping()).collect()
    }

    /// Wakes worker `i` (idempotent).
    pub(crate) fn wake_worker(&self, i: usize) {
        self.workers[i].sleeper.wake();
    }

    /// Makes sure at least one worker will notice freshly injected work,
    /// granting it a core first when the table demands exclusivity.
    pub(crate) fn ensure_progress(&self) {
        let sleeping = self.sleeping_workers();
        if sleeping.len() < self.workers.len() {
            return; // somebody is awake and will find the work
        }
        match self.effective_policy {
            Policy::Dws => {
                for &w in &sleeping {
                    let core = self.workers[w].core;
                    preempt_point("ensure-progress-legitimize");
                    let got = if self.table.current(core) == Some(self.prog_id) {
                        true
                    } else if self.table.try_acquire_free(core, self.prog_id) {
                        self.trace
                            .record(LANE_SHARED, RtEvent::Acquire { prog: self.prog_id, core });
                        true
                    } else if self.table.try_reclaim(core, self.prog_id) {
                        self.trace
                            .record(LANE_SHARED, RtEvent::Reclaim { prog: self.prog_id, core });
                        true
                    } else {
                        false
                    };
                    if got {
                        self.wake_worker(w);
                        return;
                    }
                }
                // No core obtainable right now; wake the first home worker
                // anyway — it will re-sleep if it cannot legitimize, and
                // the coordinator will sort things out next period.
                if let Some(&w) = sleeping.first() {
                    self.wake_worker(w);
                }
            }
            _ => {
                if let Some(&w) = sleeping.first() {
                    self.wake_worker(w);
                }
            }
        }
    }
}

/// A handle to a demand-aware work-stealing runtime (one "program" in the
/// paper's sense). Dropping the handle shuts the pool down.
pub struct Runtime {
    registry: Arc<Registry>,
    threads: Vec<std::thread::JoinHandle<()>>,
    coordinator: Option<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Builds a standalone runtime. Per the paper's §4.4, a DWS runtime
    /// that is the *only* program on the machine falls back to plain
    /// work-stealing (sleeping and coordination buy nothing solo); use
    /// [`Runtime::with_table`] to co-run multiple programs.
    pub fn new(config: RuntimeConfig) -> Runtime {
        let workers = config.workers;
        let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(workers, 1));
        Self::build(config, table, 0, true)
    }

    /// Builds a runtime participating in multiprogram co-running through a
    /// shared core-allocation table. `prog_id` must be unique among the
    /// co-runners (use [`crate::shm::ShmTable::register`] across
    /// processes).
    pub fn with_table(config: RuntimeConfig, table: Arc<dyn CoreTable>, prog_id: usize) -> Runtime {
        Self::build(config, table, prog_id, false)
    }

    fn build(
        config: RuntimeConfig,
        table: Arc<dyn CoreTable>,
        prog_id: usize,
        solo: bool,
    ) -> Runtime {
        assert!(prog_id < table.max_programs(), "prog_id out of range");
        let mut effective_policy = config.policy;
        if solo && config.policy.sleeps() {
            // §4.4: single-program fallback to traditional work-stealing.
            effective_policy = Policy::Ws;
        }
        if effective_policy == Policy::Dws {
            assert_eq!(
                config.workers,
                table.cores(),
                "DWS requires one worker per table core (worker i ↔ core i)"
            );
        }

        let n = config.workers;
        let mut deques = Vec::with_capacity(n);
        let mut infos = Vec::with_capacity(n);
        for i in 0..n {
            let (w, s) = deque::<JobRef>();
            deques.push(w);
            infos.push(WorkerInfo { stealer: s, sleeper: Sleeper::new(), core: i });
        }

        let trace = RtTrace::new(n, config.trace.capacity, config.trace.enabled);
        let telemetry = TelemetryState::new(config.telemetry.capacity);
        let registry = Arc::new(Registry {
            config,
            effective_policy,
            prog_id,
            table,
            injector: Injector::new(),
            workers: infos,
            metrics: RtMetrics::with_workers(n),
            trace,
            telemetry,
            shutdown: AtomicBool::new(false),
            exited: AtomicUsize::new(0),
            detached: AtomicUsize::new(0),
        });

        let threads = deques
            .into_iter()
            .enumerate()
            .map(|(i, dq)| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("dws-worker-{prog_id}-{i}"))
                    .spawn(move || WorkerThread::main(reg, i, dq))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        let coordinator = if effective_policy.has_coordinator() {
            let reg = Arc::clone(&registry);
            Some(
                std::thread::Builder::new()
                    .name(format!("dws-coordinator-{prog_id}"))
                    .spawn(move || coordinator_loop(reg))
                    .expect("failed to spawn coordinator"),
            )
        } else {
            None
        };

        let sampler = if registry.config.telemetry.enabled {
            let reg = Arc::clone(&registry);
            Some(
                std::thread::Builder::new()
                    .name(format!("dws-telemetry-{prog_id}"))
                    .spawn(move || sampler_loop(reg))
                    .expect("failed to spawn telemetry sampler"),
            )
        } else {
            None
        };

        Runtime { registry, threads, coordinator, sampler }
    }

    /// Runs `f` inside the pool and returns its result. If called from a
    /// worker of this pool, runs in place; otherwise injects the job and
    /// blocks until completion. `join`/`scope` called inside `f` use this
    /// pool's workers.
    pub fn block_on<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(w) = WorkerThread::current() {
            if std::ptr::eq(&*w.registry, &*self.registry) {
                return f();
            }
        }
        let job = StackJob::new(f, LockLatch::new());
        // SAFETY: the job outlives the wait below; executed exactly once
        // by a worker.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.injector.push(job_ref);
        self.registry.ensure_progress();
        job.latch.wait();
        // SAFETY: the latch is set, so the result slot is filled.
        unsafe { job.into_result() }
    }

    /// Spawns a detached fire-and-forget job on the pool. The job runs at
    /// some point before the runtime shuts down ([`Runtime`]'s `Drop`
    /// waits for all detached jobs). Panics in the job are caught and
    /// counted, not propagated (there is nobody to propagate to).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.registry.detached.fetch_add(1, Ordering::AcqRel);
        let reg = Arc::clone(&self.registry);
        let job = crate::job::HeapJob::new(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            reg.detached.fetch_sub(1, Ordering::AcqRel);
        });
        if let Some(w) = WorkerThread::current() {
            if std::ptr::eq(&*w.registry, &*self.registry) {
                w.push(job);
                return;
            }
        }
        self.registry.injector.push(job);
        self.registry.ensure_progress();
    }

    /// Number of detached jobs not yet completed (diagnostic).
    pub fn pending_spawns(&self) -> usize {
        self.registry.detached.load(Ordering::Acquire)
    }

    /// Fork-join inside the pool: convenience for
    /// `block_on(|| join(a, b))`.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.block_on(|| crate::join::join(a, b))
    }

    /// Structured spawning inside the pool: convenience for
    /// `block_on(|| scope(op))`.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&crate::scope::Scope<'scope>) -> R + Send,
        R: Send,
    {
        self.block_on(|| crate::scope::scope(op))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.registry.config.workers
    }

    /// The policy actually in effect (after the single-program fallback).
    pub fn effective_policy(&self) -> Policy {
        self.registry.effective_policy
    }

    /// This runtime's program id in the shared table.
    pub fn program_id(&self) -> usize {
        self.registry.prog_id
    }

    /// Snapshot of runtime counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.metrics.snapshot()
    }

    /// Is event tracing active (see [`crate::TraceConfig`])?
    pub fn tracing_enabled(&self) -> bool {
        self.registry.trace.enabled()
    }

    /// Merged, time-sorted snapshot of the runtime's event stream (empty
    /// when tracing is disabled). Safe to call at any time; never blocks
    /// the workers.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.registry.trace.snapshot()
    }

    /// Per-worker counter/histogram shards. Sleep counters and the
    /// sleep-duration histogram are always populated; steal-side shards
    /// and the latency histograms fill in only while tracing is enabled
    /// (the hot path takes no timestamps otherwise).
    pub fn worker_metrics(&self) -> Vec<WorkerMetricsSnapshot> {
        self.registry.metrics.worker_snapshots()
    }

    /// Latency histograms aggregated across all workers.
    pub fn histograms(&self) -> AggregatedHistograms {
        self.registry.metrics.aggregated_histograms()
    }

    /// Number of workers currently asleep (diagnostic).
    pub fn sleeping_workers(&self) -> usize {
        self.registry.sleeping_workers().len()
    }

    /// The shared core-allocation table.
    pub fn table(&self) -> &Arc<dyn CoreTable> {
        &self.registry.table
    }

    /// Has the allocation table degraded to in-process mode (shared shm
    /// file lost or corrupted mid-run)? Always false for backends without
    /// a failure mode. Mirrored into telemetry as the `dws_degraded`
    /// gauge.
    pub fn degraded(&self) -> bool {
        self.registry.table.degraded()
    }

    /// Total trace events dropped on ring overflow so far (0 with tracing
    /// disabled). Exporters and harness binaries should surface a nonzero
    /// value as a warning — a dropped event is a hole in the timeline.
    pub fn events_dropped(&self) -> u64 {
        self.registry.trace.dropped()
    }

    /// Is the telemetry sampler running (see [`crate::TelemetryConfig`])?
    pub fn telemetry_enabled(&self) -> bool {
        self.registry.config.telemetry.enabled
    }

    /// A cloneable handle to this runtime's live telemetry, labeled
    /// `label` in exposition output. Works with the sampler disabled too
    /// ([`TelemetryHandle::sample_now`] snapshots on demand); with it
    /// enabled, frames accumulate every [`crate::TelemetryConfig::tick`].
    pub fn telemetry(&self, label: impl Into<String>) -> TelemetryHandle {
        TelemetryHandle { reg: Arc::clone(&self.registry), label: label.into() }
    }

    /// The most recent telemetry frame, if the sampler has produced any.
    pub fn latest_frame(&self) -> Option<TelemetryFrame> {
        self.telemetry("").latest()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Let detached spawns finish before tearing the pool down.
        while self.registry.detached.load(Ordering::Acquire) > 0 {
            self.registry.ensure_progress();
            std::thread::yield_now();
        }
        self.registry.shutdown.store(true, Ordering::Release);
        for i in 0..self.registry.workers.len() {
            self.registry.wake_worker(i);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(c) = self.coordinator.take() {
            let _ = c.join();
        }
        if let Some(s) = self.sampler.take() {
            let _ = s.join();
        }
    }
}

/// Worker-thread state (owned by the thread itself; published via the
/// thread-local for `join`/`scope`).
pub(crate) struct WorkerThread {
    pub(crate) registry: Arc<Registry>,
    pub(crate) index: usize,
    deque: Deque<JobRef>,
    rng: VictimRng,
    /// Set after a starvation-escape wake (see `go_to_sleep`): eviction
    /// checks are suspended until the worker runs out of work again, so a
    /// hostile or corrupted table cannot livelock the pool.
    starvation_immune: Cell<bool>,
    /// Cached `registry.trace.enabled()`: the hot-path gate for event
    /// recording and latency timestamps.
    trace_on: bool,
    /// Wake instant awaiting its first executed task (wake→first-task
    /// histogram); set on resume from sleep while tracing.
    wake_at: Cell<Option<Instant>>,
}

impl WorkerThread {
    /// The worker driving the current thread, if any.
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        let ptr = CURRENT_WORKER.with(|c| c.get());
        if ptr.is_null() {
            None
        } else {
            // SAFETY: set for exactly the lifetime of `main`, which only
            // returns after clearing it; the reference never escapes the
            // worker's own call stack.
            Some(unsafe { &*ptr })
        }
    }

    fn main(registry: Arc<Registry>, index: usize, deque: Deque<JobRef>) {
        let me = WorkerThread {
            rng: VictimRng::new(0x5851_F42D_4C95_7F2D ^ ((index as u64 + 1) * 0x9E37)),
            trace_on: registry.trace.enabled(),
            registry,
            index,
            deque,
            starvation_immune: Cell::new(false),
            wake_at: Cell::new(None),
        };
        CURRENT_WORKER.with(|c| c.set(&me as *const WorkerThread));
        me.apply_affinity();
        me.run_main_loop();
        CURRENT_WORKER.with(|c| c.set(std::ptr::null()));
        me.registry.exited.fetch_add(1, Ordering::Release);
    }

    fn apply_affinity(&self) {
        if !self.registry.config.pin_workers {
            return;
        }
        match self.registry.effective_policy {
            Policy::Abp => {} // OS decides (time-sharing)
            Policy::Ep => {
                let home: Vec<usize> = (0..self.registry.table.cores())
                    .filter(|&c| self.registry.table.home(c) == self.registry.prog_id)
                    .collect();
                affinity::pin_current_thread_to_set(&home);
            }
            _ => {
                affinity::pin_current_thread(self.registry.workers[self.index].core);
            }
        }
    }

    fn run_main_loop(&self) {
        let reg = &*self.registry;
        let policy = reg.effective_policy;

        // §3.1: initially, only the workers on the program's home slice
        // are awake; the rest sleep until the coordinator grants a core.
        if policy.sleeps() {
            let core = reg.workers[self.index].core;
            if reg.table.home(core) != reg.prog_id {
                self.go_to_sleep(false);
            }
        }

        let mut failed_steals: u32 = 0;
        loop {
            // Core eviction (§4.2: a core executes a single active
            // worker): between tasks, a DWS worker whose core was
            // reclaimed by its owner — the table no longer names this
            // program — goes to sleep instead of competing for the core.
            // Its queued jobs remain stealable by siblings. Suspended
            // while the worker is starvation-immune (liveness escape).
            if policy == Policy::Dws
                && !self.starvation_immune.get()
                && !reg.shutdown.load(Ordering::Acquire)
                && reg.table.current(reg.workers[self.index].core) != Some(reg.prog_id)
            {
                failed_steals = 0;
                self.go_to_sleep(true);
                continue;
            }
            if let Some(job) = self.find_work_with(failed_steals > 0) {
                failed_steals = 0;
                self.execute(job);
                continue;
            }
            // Out of work: immunity (if any) has served its purpose.
            self.starvation_immune.set(false);
            if reg.shutdown.load(Ordering::Acquire) {
                break;
            }
            failed_steals += 1;
            RtMetrics::bump(&reg.metrics.steals_failed);
            match policy {
                Policy::Ws => {
                    if failed_steals.is_multiple_of(reg.config.spin_yield_interval.max(1)) {
                        RtMetrics::bump(&reg.metrics.yields);
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                Policy::Abp | Policy::Ep => {
                    // ABP: yield the core after every failed steal.
                    RtMetrics::bump(&reg.metrics.yields);
                    std::thread::yield_now();
                }
                Policy::Dws | Policy::DwsNc => {
                    if failed_steals > reg.config.t_sleep {
                        failed_steals = 0;
                        self.go_to_sleep(false);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    /// Algorithm 1's sleep (lines 14-17): release the core in the table
    /// (DWS only), block until woken, and on a safety-timeout wake try to
    /// legitimately re-enter (or sleep again).
    ///
    /// Liveness escape: if work is pending but the table refuses to grant
    /// this worker a core across many consecutive timeouts (corrupted or
    /// hostile table, dead co-runner holding everything), the worker
    /// eventually proceeds anyway — a stuck process is worse than a
    /// briefly over-subscribed core.
    fn go_to_sleep(&self, evicted: bool) {
        let reg = &*self.registry;
        let core = reg.workers[self.index].core;
        let lane = self.index as u32;
        let shard = &reg.metrics.workers[self.index];
        let mut first = true;
        let mut starved_timeouts = 0u32;
        const STARVATION_GRACE: u32 = 6;
        loop {
            if reg.effective_policy == Policy::Dws && reg.table.release(core, reg.prog_id) {
                RtMetrics::bump(&reg.metrics.cores_released);
                reg.trace.record(lane, RtEvent::Release { prog: reg.prog_id, core });
            }
            RtMetrics::bump(&reg.metrics.sleeps);
            RtMetrics::bump(&shard.sleeps);
            // Only the entry sleep is an eviction; loop re-entries below
            // are timeout re-sleeps.
            reg.trace
                .record(lane, RtEvent::Sleep { worker: self.index, evicted: evicted && first });
            first = false;
            let (reason, slept) =
                reg.workers[self.index].sleeper.sleep_timed(reg.config.sleep_timeout);
            RtMetrics::bump(&reg.metrics.wakes);
            {
                // Wake counter + duration sample publish together; the
                // section covers only the post-wake bookkeeping, never
                // the sleep itself.
                let _ws = shard.write_section();
                RtMetrics::bump(&shard.wakes);
                shard.sleep_duration.record(slept);
            }
            reg.trace.record(lane, RtEvent::Wake { worker: self.index });
            if reg.shutdown.load(Ordering::Acquire) {
                return;
            }
            match reason {
                WakeReason::Woken => {
                    // A core was granted (or shutdown).
                    if self.trace_on {
                        self.wake_at.set(Some(Instant::now()));
                    }
                    return;
                }
                WakeReason::TimedOut => {
                    // Self-recovery: only resume if there is work *and* we
                    // can hold our core under DWS exclusivity.
                    let has_work = reg.queued_jobs() > 0;
                    if !has_work {
                        starved_timeouts = 0;
                        continue;
                    }
                    if reg.effective_policy == Policy::Dws {
                        preempt_point("worker-legitimize");
                        let legit = if reg.table.current(core) == Some(reg.prog_id) {
                            true
                        } else if reg.table.try_acquire_free(core, reg.prog_id) {
                            reg.trace.record(lane, RtEvent::Acquire { prog: reg.prog_id, core });
                            true
                        } else if reg.table.try_reclaim(core, reg.prog_id) {
                            reg.trace.record(lane, RtEvent::Reclaim { prog: reg.prog_id, core });
                            true
                        } else {
                            false
                        };
                        if !legit {
                            starved_timeouts += 1;
                            if starved_timeouts < STARVATION_GRACE {
                                continue;
                            }
                            // Liveness over protocol purity: run anyway
                            // and stay immune to eviction until the work
                            // drought ends.
                            self.starvation_immune.set(true);
                        }
                    }
                    if self.trace_on {
                        self.wake_at.set(Some(Instant::now()));
                    }
                    return;
                }
            }
        }
    }

    /// One round of Algorithm 1's work acquisition: own pool, then the
    /// injector, then one steal attempt (random victim).
    pub(crate) fn find_work(&self) -> Option<JobRef> {
        self.find_work_with(false)
    }

    /// As [`WorkerThread::find_work`], sweeping victims when `sweeping`
    /// (set across consecutive failed attempts).
    pub(crate) fn find_work_with(&self, sweeping: bool) -> Option<JobRef> {
        if let Some(job) = self.deque.pop() {
            return Some(job);
        }
        if let Some(job) = self.registry.injector.pop() {
            return Some(job);
        }
        if sweeping {
            self.steal_sweep()
        } else {
            self.steal_once()
        }
    }

    fn steal_once(&self) -> Option<JobRef> {
        self.steal_from(|n, me| self.rng.victim(n, me))
    }

    /// As [`WorkerThread::steal_once`], but sweeping from the previous
    /// victim — used on consecutive failures so one pass visits everyone.
    fn steal_sweep(&self) -> Option<JobRef> {
        self.steal_from(|n, me| self.rng.victim_sweep(n, me))
    }

    fn steal_from(&self, pick: impl Fn(usize, usize) -> usize) -> Option<JobRef> {
        let n = self.registry.workers.len();
        if n <= 1 {
            return None;
        }
        let victim = pick(n, self.index);
        // Latency timing and per-attempt events only while tracing: the
        // disabled hot path must not take timestamps.
        let t0 = if self.trace_on { Some(Instant::now()) } else { None };
        let result = self.registry.workers[victim].stealer.steal();
        if let Some(t0) = t0 {
            let shard = &self.registry.metrics.workers[self.index];
            {
                // Outcome counter + latency sample are one logical batch:
                // publish them atomically to snapshot readers.
                let _ws = shard.write_section();
                shard.steal_latency.record(t0.elapsed());
                RtMetrics::bump(if matches!(result, Steal::Success(_)) {
                    &shard.steals_ok
                } else {
                    &shard.steals_failed
                });
            }
            if matches!(result, Steal::Success(_)) {
                self.registry
                    .trace
                    .record(self.index as u32, RtEvent::StealOk { worker: self.index, victim });
            } else {
                self.registry
                    .trace
                    .record(self.index as u32, RtEvent::StealFail { worker: self.index });
            }
        }
        match result {
            Steal::Success(job) => {
                RtMetrics::bump(&self.registry.metrics.steals_ok);
                Some(job)
            }
            Steal::Empty | Steal::Retry => None,
        }
    }

    /// Pushes a job onto this worker's own deque.
    pub(crate) fn push(&self, job: JobRef) {
        self.deque.push(job);
    }

    /// Pops the most recently pushed job, if still present.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.deque.pop()
    }

    /// Executes a job, counting it.
    pub(crate) fn execute(&self, job: JobRef) {
        RtMetrics::bump(&self.registry.metrics.jobs_executed);
        if self.trace_on {
            let shard = &self.registry.metrics.workers[self.index];
            {
                let _ws = shard.write_section();
                RtMetrics::bump(&shard.jobs_executed);
                if let Some(woke) = self.wake_at.take() {
                    shard.wake_to_first_task.record(woke.elapsed());
                }
            }
            self.registry
                .trace
                .record(self.index as u32, RtEvent::TaskStart { worker: self.index });
            // SAFETY: every JobRef in the system is executed exactly once;
            // provenance is guaranteed by push/steal discipline.
            unsafe { job.execute() };
            self.registry.trace.record(self.index as u32, RtEvent::TaskEnd { worker: self.index });
            return;
        }
        // SAFETY: as above.
        unsafe { job.execute() };
    }

    /// Works until `done` reports true: keeps popping/stealing jobs, and
    /// yields politely when none are available. Used by `join` (waiting on
    /// a stolen arm) and `scope` (waiting for spawned jobs). Never sleeps:
    /// a blocked wait must stay responsive to its completion.
    pub(crate) fn work_until(&self, done: impl Fn() -> bool) {
        let mut idle_spins = 0u32;
        while !done() {
            if let Some(job) = self.find_work() {
                self.execute(job);
                idle_spins = 0;
            } else {
                idle_spins += 1;
                if idle_spins.is_multiple_of(8) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}
