//! The runtime registry: worker threads, their deques, the injector, the
//! sleep/wake state and the coordinator — i.e. everything behind a
//! [`Runtime`] handle.
//!
//! The worker main loop is the paper's Algorithm 1; the per-policy idle
//! behaviour (spin / ABP-yield / DWS-sleep) is selected by
//! [`crate::config::Policy`].

use std::cell::Cell;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dws_deque::{
    deque, Injector, Request, Steal, Stealer, SubmitError, SubmitRing, TaskId, Worker as Deque,
};

use crate::adaptive::Knobs;
use crate::affinity;
use crate::alloc_table::{
    CoreTable, InProcessTable, LedgerTable, DOORBELL_DEMAND, DOORBELL_RELEASE, DOORBELL_SHUTDOWN,
    DOORBELL_SUBMIT, DOORBELL_SURPLUS,
};
use crate::config::{Policy, RuntimeConfig};
use crate::coordinator::coordinator_loop;
use crate::job::{JobRef, StackJob};
use crate::latch::LockLatch;
use crate::metrics::{AggregatedHistograms, MetricsSnapshot, RtMetrics, WorkerMetricsSnapshot};
use crate::rng::VictimRng;
use crate::serve::{RequestHandler, ServingState};
use crate::sleep::{Sleeper, WakeReason};
use crate::sync::{preempt_point, AtomicBool, AtomicUsize, Ordering};
use crate::telemetry::{sampler_loop, TelemetryFrame, TelemetryHandle, TelemetryState};
use crate::trace::{now_us, RtEvent, RtTrace, TraceSnapshot, LANE_SHARED};

thread_local! {
    /// The worker currently driving this thread, if any.
    static CURRENT_WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// Shared, per-worker state visible to other workers and the coordinator.
pub(crate) struct WorkerInfo {
    pub(crate) stealer: Stealer<JobRef>,
    pub(crate) sleeper: Sleeper,
    /// Core this worker is affined to (== worker index for one-per-core
    /// policies).
    pub(crate) core: usize,
    /// Written by the owning worker on sleep entry, before the sleeper
    /// flags it asleep: `true` iff it parked with jobs still queued
    /// (possible only on eviction — a voluntary sleeper just failed
    /// `find_work`, so its deque is empty). Lets [`Registry::queued_jobs`]
    /// skip the deque-length load for idle sleepers.
    pub(crate) asleep_with_work: AtomicBool,
}

/// Shared state of one runtime instance.
pub(crate) struct Registry {
    pub(crate) config: RuntimeConfig,
    /// Policy after the §4.4 single-program fallback.
    pub(crate) effective_policy: Policy,
    pub(crate) prog_id: usize,
    pub(crate) table: Arc<dyn CoreTable>,
    pub(crate) injector: Injector<JobRef>,
    pub(crate) workers: Vec<WorkerInfo>,
    pub(crate) metrics: RtMetrics,
    pub(crate) trace: RtTrace,
    pub(crate) telemetry: TelemetryState,
    pub(crate) shutdown: AtomicBool,
    /// Workers that have exited their main loop (shutdown accounting).
    exited: AtomicUsize,
    /// Detached jobs submitted via [`Runtime::spawn`] not yet finished;
    /// shutdown waits for them.
    detached: AtomicUsize,
    /// Sequence counter for tasks injected from outside the pool
    /// (stamped with [`TaskId::EXTERNAL_WORKER`] as their spawner).
    external_seq: AtomicU64,
    /// Serving mode: submission ring + request handler (None unless built
    /// via [`Runtime::serve`] / [`Runtime::serve_with_table`]).
    pub(crate) serving: Option<ServingState>,
    /// Live knob values (`T_SLEEP`, coordinator period, steal-batch
    /// limit): equal to the configured values unless the adaptive
    /// controller retunes them (DESIGN §16.2).
    pub(crate) knobs: Knobs,
}

impl Registry {
    /// `N_b` as the coordinator sees it: queued jobs in all deques plus
    /// the injector. Still O(workers), but a worker that went to sleep
    /// with nothing queued is skipped without touching its deque — only
    /// the owner pushes, so an empty deque stays empty for the whole
    /// sleep episode, and the deque's top/bottom words are exactly the
    /// cache lines sibling thieves hammer. Evicted sleepers can park with
    /// queued (still-stealable) jobs; they set `asleep_with_work` and are
    /// counted normally. Like every `N_b` read this is a racy sample: a
    /// worker observed mid-transition may be miscounted for one
    /// coordinator tick, never longer.
    pub(crate) fn queued_jobs(&self) -> usize {
        self.injector.len()
            + self
                .workers
                .iter()
                .map(|w| {
                    if w.sleeper.is_sleeping() && !w.asleep_with_work.load(Ordering::Acquire) {
                        0
                    } else {
                        w.stealer.len()
                    }
                })
                .sum::<usize>()
    }

    /// Indices of currently sleeping workers.
    pub(crate) fn sleeping_workers(&self) -> Vec<usize> {
        (0..self.workers.len()).filter(|&i| self.workers[i].sleeper.is_sleeping()).collect()
    }

    /// Wakes worker `i` (idempotent).
    pub(crate) fn wake_worker(&self, i: usize) {
        self.workers[i].sleeper.wake();
    }

    /// Rings `prog`'s doorbell (edge-triggered control plane, DESIGN
    /// §16) — a no-op when the runtime was configured polling-only or the
    /// table backend has no doorbells.
    pub(crate) fn ring_doorbell(&self, prog: usize, reason: u32) {
        if self.config.event_driven {
            self.table.ring_doorbell(prog, reason);
        }
    }

    /// Makes sure at least one worker will notice freshly injected work,
    /// granting it a core first when the table demands exclusivity.
    pub(crate) fn ensure_progress(&self) {
        let sleeping = self.sleeping_workers();
        if sleeping.len() < self.workers.len() {
            return; // somebody is awake and will find the work
        }
        match self.effective_policy {
            Policy::Dws => {
                for &w in &sleeping {
                    let core = self.workers[w].core;
                    preempt_point("ensure-progress-legitimize");
                    let got = if self.table.current(core) == Some(self.prog_id) {
                        true
                    } else if self.table.try_acquire_free(core, self.prog_id) {
                        self.trace
                            .record(LANE_SHARED, RtEvent::Acquire { prog: self.prog_id, core });
                        true
                    } else if self.table.try_reclaim(core, self.prog_id) {
                        self.trace
                            .record(LANE_SHARED, RtEvent::Reclaim { prog: self.prog_id, core });
                        true
                    } else {
                        false
                    };
                    if got {
                        self.wake_worker(w);
                        return;
                    }
                }
                // No core obtainable right now; wake the first home worker
                // anyway — it will re-sleep if it cannot legitimize — and
                // ring our own doorbell so the coordinator re-plans *now*
                // instead of at the next period.
                if let Some(&w) = sleeping.first() {
                    self.wake_worker(w);
                }
                self.ring_doorbell(self.prog_id, DOORBELL_DEMAND);
            }
            _ => {
                if let Some(&w) = sleeping.first() {
                    self.wake_worker(w);
                }
            }
        }
    }

    /// Batch-steal surplus wake: a thief that just parked extra tasks in
    /// its own deque turned one queue of work into two, so a sleeping
    /// sibling can start on the surplus *now* instead of waiting for the
    /// coordinator's next period (up to `coord_period` of dead time on
    /// the critical path). Wakes at most one sleeper, granting it a core
    /// first when the table demands exclusivity; a cheap scan-and-return
    /// when nobody sleeps.
    pub(crate) fn wake_one_for_surplus(&self) {
        let Some(w) = (0..self.workers.len()).find(|&i| self.workers[i].sleeper.is_sleeping())
        else {
            return;
        };
        if self.effective_policy == Policy::Dws {
            let core = self.workers[w].core;
            preempt_point("surplus-wake-legitimize");
            if self.table.current(core) == Some(self.prog_id) {
                // Already ours — nothing to claim.
            } else if self.table.try_acquire_free(core, self.prog_id) {
                self.trace.record(LANE_SHARED, RtEvent::Acquire { prog: self.prog_id, core });
            } else if self.table.try_reclaim(core, self.prog_id) {
                self.trace.record(LANE_SHARED, RtEvent::Reclaim { prog: self.prog_id, core });
            } else {
                // No core for it right now; don't wake into an eviction.
                // The doorbell makes the coordinator re-plan immediately
                // instead of letting the surplus sit out the period.
                self.ring_doorbell(self.prog_id, DOORBELL_SURPLUS);
                return;
            }
        }
        self.wake_worker(w);
    }

    /// Stamps a task identity onto a job entering through the injector
    /// (no worker context): spawner is [`TaskId::EXTERNAL_WORKER`], the
    /// sequence comes from a process-wide counter. With tracing on, the
    /// spawn timestamp is taken and `Spawn`/`Enqueue` land on the shared
    /// lane — external submissions have no per-worker ring of their own.
    /// Mints the next external-lane task sequence number.
    pub(crate) fn next_external_seq(&self) -> u64 {
        self.external_seq.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn stamp_external(&self, mut job: JobRef) -> JobRef {
        let seq = self.next_external_seq();
        job.task_id = TaskId::new(self.prog_id, TaskId::EXTERNAL_WORKER, seq);
        if self.trace.enabled() {
            job.spawn_us = now_us();
            let id = job.task_id.as_u64();
            self.trace.record(LANE_SHARED, RtEvent::Spawn { id });
            self.trace.record(LANE_SHARED, RtEvent::Enqueue { id });
        }
        job
    }
}

/// A handle to a demand-aware work-stealing runtime (one "program" in the
/// paper's sense). Dropping the handle shuts the pool down.
pub struct Runtime {
    registry: Arc<Registry>,
    threads: Vec<std::thread::JoinHandle<()>>,
    coordinator: Option<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Builds a standalone runtime. Per the paper's §4.4, a DWS runtime
    /// that is the *only* program on the machine falls back to plain
    /// work-stealing (sleeping and coordination buy nothing solo); use
    /// [`Runtime::with_table`] to co-run multiple programs.
    pub fn new(config: RuntimeConfig) -> Runtime {
        let workers = config.workers;
        // A ledger wraps even the solo table so core-seconds telemetry
        // (DESIGN §14) reports for single-program runs too.
        let table: Arc<dyn CoreTable> =
            Arc::new(LedgerTable::new(Arc::new(InProcessTable::new(workers, 1))));
        Self::build(config, table, 0, true, None)
    }

    /// Builds a runtime participating in multiprogram co-running through a
    /// shared core-allocation table. `prog_id` must be unique among the
    /// co-runners (use [`crate::shm::ShmTable::register`] across
    /// processes).
    pub fn with_table(config: RuntimeConfig, table: Arc<dyn CoreTable>, prog_id: usize) -> Runtime {
        Self::build(config, table, prog_id, false, None)
    }

    /// Builds a standalone *serving* runtime: a submission ring is
    /// attached (heap-backed here; shm-resident under
    /// [`Runtime::serve_with_table`] when the table carves one) and the
    /// coordinator drains it into the injector every period, running
    /// `handler` per admitted request. Serving is forced on in `config`.
    pub fn serve<F>(config: RuntimeConfig, handler: F) -> Runtime
    where
        F: Fn(Request) + Send + Sync + 'static,
    {
        let workers = config.workers;
        let table: Arc<dyn CoreTable> =
            Arc::new(LedgerTable::new(Arc::new(InProcessTable::new(workers, 1))));
        Self::build(config.with_serving(), table, 0, true, Some(Arc::new(handler)))
    }

    /// Builds a co-running *serving* runtime (see [`Runtime::serve`]).
    /// When `table` hosts a shm-resident submission ring for `prog_id`
    /// (a [`crate::shm::ShmTable`] with rings), clients in other
    /// processes can submit to it; otherwise a heap ring serves
    /// in-process submitters via [`Runtime::submit`].
    pub fn serve_with_table<F>(
        config: RuntimeConfig,
        table: Arc<dyn CoreTable>,
        prog_id: usize,
        handler: F,
    ) -> Runtime
    where
        F: Fn(Request) + Send + Sync + 'static,
    {
        Self::build(config.with_serving(), table, prog_id, false, Some(Arc::new(handler)))
    }

    fn build(
        config: RuntimeConfig,
        table: Arc<dyn CoreTable>,
        prog_id: usize,
        solo: bool,
        handler: Option<RequestHandler>,
    ) -> Runtime {
        assert!(prog_id < table.max_programs(), "prog_id out of range");
        let mut effective_policy = config.policy;
        if solo && config.policy.sleeps() {
            // §4.4: single-program fallback to traditional work-stealing.
            effective_policy = Policy::Ws;
        }
        if effective_policy == Policy::Dws {
            assert_eq!(
                config.workers,
                table.cores(),
                "DWS requires one worker per table core (worker i ↔ core i)"
            );
        }

        let n = config.workers;
        let mut deques = Vec::with_capacity(n);
        let mut infos = Vec::with_capacity(n);
        for i in 0..n {
            let (w, s) = deque::<JobRef>();
            deques.push(w);
            infos.push(WorkerInfo {
                stealer: s,
                sleeper: Sleeper::new(),
                core: i,
                asleep_with_work: AtomicBool::new(false),
            });
        }

        let trace = RtTrace::new(n, config.trace.capacity, config.trace.enabled);
        let telemetry = TelemetryState::new(config.telemetry.capacity);
        let serving = handler.map(|handler| {
            // The table's shm-resident ring wins; otherwise back the ring
            // on the heap for in-process submitters.
            let owned = if table.submit_ring(prog_id).is_some() {
                None
            } else {
                Some(SubmitRing::with_capacity(config.serve.ring_capacity))
            };
            ServingState::new(owned, handler)
        });
        let knobs = Knobs::from_config(&config);
        let registry = Arc::new(Registry {
            config,
            effective_policy,
            prog_id,
            table,
            injector: Injector::new(),
            workers: infos,
            metrics: RtMetrics::with_workers(n),
            trace,
            telemetry,
            shutdown: AtomicBool::new(false),
            exited: AtomicUsize::new(0),
            detached: AtomicUsize::new(0),
            external_seq: AtomicU64::new(0),
            serving,
            knobs,
        });

        let threads = deques
            .into_iter()
            .enumerate()
            .map(|(i, dq)| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("dws-worker-{prog_id}-{i}"))
                    .spawn(move || WorkerThread::main(reg, i, dq))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        // Serving runtimes need the drain pump even under policies with
        // no coordinator of their own (WS after the solo fallback): the
        // coordinator thread runs anyway, doing only the drain.
        let coordinator = if effective_policy.has_coordinator() || registry.serving.is_some() {
            let reg = Arc::clone(&registry);
            Some(
                std::thread::Builder::new()
                    .name(format!("dws-coordinator-{prog_id}"))
                    .spawn(move || coordinator_loop(reg))
                    .expect("failed to spawn coordinator"),
            )
        } else {
            None
        };

        let sampler = if registry.config.telemetry.enabled {
            let reg = Arc::clone(&registry);
            Some(
                std::thread::Builder::new()
                    .name(format!("dws-telemetry-{prog_id}"))
                    .spawn(move || sampler_loop(reg))
                    .expect("failed to spawn telemetry sampler"),
            )
        } else {
            None
        };

        Runtime { registry, threads, coordinator, sampler }
    }

    /// Runs `f` inside the pool and returns its result. If called from a
    /// worker of this pool, runs in place; otherwise injects the job and
    /// blocks until completion. `join`/`scope` called inside `f` use this
    /// pool's workers.
    pub fn block_on<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(w) = WorkerThread::current() {
            if std::ptr::eq(&*w.registry, &*self.registry) {
                return f();
            }
        }
        let job = StackJob::new(f, LockLatch::new());
        // SAFETY: the job outlives the wait below; executed exactly once
        // by a worker.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.injector.push(self.registry.stamp_external(job_ref));
        self.registry.ensure_progress();
        job.latch.wait();
        // SAFETY: the latch is set, so the result slot is filled.
        unsafe { job.into_result() }
    }

    /// Spawns a detached fire-and-forget job on the pool. The job runs at
    /// some point before the runtime shuts down ([`Runtime`]'s `Drop`
    /// waits for all detached jobs). Panics in the job are caught and
    /// counted, not propagated (there is nobody to propagate to).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.registry.detached.fetch_add(1, Ordering::AcqRel);
        let reg = Arc::clone(&self.registry);
        let job = crate::job::HeapJob::new(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            reg.detached.fetch_sub(1, Ordering::AcqRel);
        });
        if let Some(w) = WorkerThread::current() {
            if std::ptr::eq(&*w.registry, &*self.registry) {
                w.push(job);
                return;
            }
        }
        self.registry.injector.push(self.registry.stamp_external(job));
        self.registry.ensure_progress();
    }

    /// Number of detached jobs not yet completed (diagnostic).
    pub fn pending_spawns(&self) -> usize {
        self.registry.detached.load(Ordering::Acquire)
    }

    /// Fork-join inside the pool: convenience for
    /// `block_on(|| join(a, b))`.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.block_on(|| crate::join::join(a, b))
    }

    /// Structured spawning inside the pool: convenience for
    /// `block_on(|| scope(op))`.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&crate::scope::Scope<'scope>) -> R + Send,
        R: Send,
    {
        self.block_on(|| crate::scope::scope(op))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.registry.config.workers
    }

    /// The policy actually in effect (after the single-program fallback).
    pub fn effective_policy(&self) -> Policy {
        self.registry.effective_policy
    }

    /// This runtime's program id in the shared table.
    pub fn program_id(&self) -> usize {
        self.registry.prog_id
    }

    /// Snapshot of runtime counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.metrics.snapshot()
    }

    /// Is event tracing active (see [`crate::TraceConfig`])?
    pub fn tracing_enabled(&self) -> bool {
        self.registry.trace.enabled()
    }

    /// Merged, time-sorted snapshot of the runtime's event stream (empty
    /// when tracing is disabled). Safe to call at any time; never blocks
    /// the workers.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.registry.trace.snapshot()
    }

    /// Per-worker counter/histogram shards. Sleep counters and the
    /// sleep-duration histogram are always populated; steal-side shards
    /// and the latency histograms fill in only while tracing is enabled
    /// (the hot path takes no timestamps otherwise).
    pub fn worker_metrics(&self) -> Vec<WorkerMetricsSnapshot> {
        self.registry.metrics.worker_snapshots()
    }

    /// Latency histograms aggregated across all workers.
    pub fn histograms(&self) -> AggregatedHistograms {
        self.registry.metrics.aggregated_histograms()
    }

    /// Number of workers currently asleep (diagnostic).
    pub fn sleeping_workers(&self) -> usize {
        self.registry.sleeping_workers().len()
    }

    /// The shared core-allocation table.
    pub fn table(&self) -> &Arc<dyn CoreTable> {
        &self.registry.table
    }

    /// Has the allocation table degraded to in-process mode (shared shm
    /// file lost or corrupted mid-run)? Always false for backends without
    /// a failure mode. Mirrored into telemetry as the `dws_degraded`
    /// gauge.
    pub fn degraded(&self) -> bool {
        self.registry.table.degraded()
    }

    /// Total trace events dropped on ring overflow so far (0 with tracing
    /// disabled). Exporters and harness binaries should surface a nonzero
    /// value as a warning — a dropped event is a hole in the timeline.
    pub fn events_dropped(&self) -> u64 {
        self.registry.trace.dropped()
    }

    /// Is the telemetry sampler running (see [`crate::TelemetryConfig`])?
    pub fn telemetry_enabled(&self) -> bool {
        self.registry.config.telemetry.enabled
    }

    /// A cloneable handle to this runtime's live telemetry, labeled
    /// `label` in exposition output. Works with the sampler disabled too
    /// ([`TelemetryHandle::sample_now`] snapshots on demand); with it
    /// enabled, frames accumulate every [`crate::TelemetryConfig::tick`].
    pub fn telemetry(&self, label: impl Into<String>) -> TelemetryHandle {
        TelemetryHandle { reg: Arc::clone(&self.registry), label: label.into() }
    }

    /// The most recent telemetry frame, if the sampler has produced any.
    pub fn latest_frame(&self) -> Option<TelemetryFrame> {
        self.telemetry("").latest()
    }

    /// Is this a serving runtime (built via [`Runtime::serve`] /
    /// [`Runtime::serve_with_table`])?
    pub fn serving(&self) -> bool {
        self.registry.serving.is_some()
    }

    /// The submission ring requests arrive on, or `None` for non-serving
    /// runtimes. Cross-process clients reach the same ring through
    /// [`crate::shm::ShmTable::submit_ring`]; in-process clients can use
    /// [`Runtime::submit`] instead.
    pub fn submission_ring(&self) -> Option<&SubmitRing> {
        self.registry.submission_ring()
    }

    /// Submits one external request (in-process client convenience): the
    /// submit timestamp is stamped here, at the client. `Err(Full)` means
    /// the ring is at capacity — open-loop overload sheds at the edge, and
    /// the caller decides whether to retry or count the drop. `Err(Fenced)`
    /// also covers a serving runtime whose ring has been withdrawn — a
    /// degraded [`crate::shm::FailoverTable`] stops trusting the shared
    /// ring, so admission sheds with a typed error instead of panicking.
    pub fn submit(&self, req_id: u64, demand_us: u64) -> Result<(), SubmitError> {
        assert!(self.registry.serving.is_some(), "not a serving runtime");
        let Some(ring) = self.registry.submission_ring() else {
            return Err(SubmitError::Fenced);
        };
        let res = ring.submit(Request { req_id, submit_us: now_us(), demand_us }, ring.epoch());
        if res.is_ok() {
            // Edge-triggered admission (DESIGN §16.1): the coordinator
            // drains the ring on this doorbell instead of on its next
            // polling tick, so admission latency stops scaling with the
            // coordinator period.
            self.registry.ring_doorbell(self.registry.prog_id, DOORBELL_SUBMIT);
        }
        res
    }

    /// The live adaptive knob values — `(T_SLEEP, coordinator period,
    /// steal-batch limit)`. Equal to the configured constants unless
    /// [`crate::AdaptiveConfig`] is enabled and the controller has retuned
    /// them (observability surface for `dws-top` and the benches).
    pub fn knob_values(&self) -> (u32, Duration, usize) {
        let k = &self.registry.knobs;
        (k.t_sleep(), k.period(), k.steal_batch())
    }

    /// One manual drain pass of the submission ring (tests, pumping
    /// without waiting out a coordinator period). Returns the number of
    /// requests admitted.
    pub fn drain_submissions(&self) -> usize {
        self.registry.drain_submissions()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Let detached spawns finish before tearing the pool down.
        while self.registry.detached.load(Ordering::Acquire) > 0 {
            self.registry.ensure_progress();
            std::thread::yield_now();
        }
        self.registry.shutdown.store(true, Ordering::Release);
        // Pop the coordinator out of its doorbell wait immediately — the
        // slow-path heartbeat would notice the flag anyway, but shutdown
        // should not cost a period.
        self.registry.ring_doorbell(self.registry.prog_id, DOORBELL_SHUTDOWN);
        for i in 0..self.registry.workers.len() {
            self.registry.wake_worker(i);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(c) = self.coordinator.take() {
            let _ = c.join();
        }
        if let Some(s) = self.sampler.take() {
            let _ = s.join();
        }
    }
}

/// Worker-thread state (owned by the thread itself; published via the
/// thread-local for `join`/`scope`).
pub(crate) struct WorkerThread {
    pub(crate) registry: Arc<Registry>,
    pub(crate) index: usize,
    deque: Deque<JobRef>,
    rng: VictimRng,
    /// Set after a starvation-escape wake (see `go_to_sleep`): eviction
    /// checks are suspended until the worker runs out of work again, so a
    /// hostile or corrupted table cannot livelock the pool.
    starvation_immune: Cell<bool>,
    /// Cached `registry.trace.enabled()`: the hot-path gate for event
    /// recording and latency timestamps.
    trace_on: bool,
    /// Wake instant awaiting its first executed task (wake→first-task
    /// histogram); set on resume from sleep while tracing.
    wake_at: Cell<Option<Instant>>,
    /// Next task sequence number this worker mints (worker-local, so id
    /// stamping is a plain increment — no shared counter on the push
    /// path).
    task_seq: Cell<u64>,
}

/// Outcome of one work-acquisition round. Distinguishes "nothing found"
/// from "lost a CAS race on a non-empty deque": only the former is a
/// demand signal (it advances Algorithm 1's failed-steal counter toward
/// `T_sleep` and bumps `steals_failed`).
pub(crate) enum StealOutcome {
    /// A job to run.
    Job(JobRef),
    /// No work visible anywhere this round.
    Empty,
    /// The victim's deque was non-empty but another thief won every CAS
    /// race, even after the bounded same-victim retries.
    Contended,
}

impl WorkerThread {
    /// The worker driving the current thread, if any.
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        let ptr = CURRENT_WORKER.with(|c| c.get());
        if ptr.is_null() {
            None
        } else {
            // SAFETY: set for exactly the lifetime of `main`, which only
            // returns after clearing it; the reference never escapes the
            // worker's own call stack.
            Some(unsafe { &*ptr })
        }
    }

    fn main(registry: Arc<Registry>, index: usize, deque: Deque<JobRef>) {
        let me = WorkerThread {
            rng: VictimRng::new(0x5851_F42D_4C95_7F2D ^ ((index as u64 + 1) * 0x9E37)),
            trace_on: registry.trace.enabled(),
            registry,
            index,
            deque,
            starvation_immune: Cell::new(false),
            wake_at: Cell::new(None),
            task_seq: Cell::new(0),
        };
        CURRENT_WORKER.with(|c| c.set(&me as *const WorkerThread));
        me.apply_affinity();
        me.run_main_loop();
        CURRENT_WORKER.with(|c| c.set(std::ptr::null()));
        me.registry.exited.fetch_add(1, Ordering::Release);
    }

    fn apply_affinity(&self) {
        if !self.registry.config.pin_workers {
            return;
        }
        match self.registry.effective_policy {
            Policy::Abp => {} // OS decides (time-sharing)
            Policy::Ep => {
                let home: Vec<usize> = (0..self.registry.table.cores())
                    .filter(|&c| self.registry.table.home(c) == self.registry.prog_id)
                    .collect();
                affinity::pin_current_thread_to_set(&home);
            }
            _ => {
                affinity::pin_current_thread(self.registry.workers[self.index].core);
            }
        }
    }

    fn run_main_loop(&self) {
        let reg = &*self.registry;
        let policy = reg.effective_policy;

        // §3.1: initially, only the workers on the program's home slice
        // are awake; the rest sleep until the coordinator grants a core.
        if policy.sleeps() {
            let core = reg.workers[self.index].core;
            if reg.table.home(core) != reg.prog_id {
                self.go_to_sleep(false);
            }
        }

        let mut failed_steals: u32 = 0;
        loop {
            // Core eviction (§4.2: a core executes a single active
            // worker): between tasks, a DWS worker whose core was
            // reclaimed by its owner — the table no longer names this
            // program — goes to sleep instead of competing for the core.
            // Its queued jobs remain stealable by siblings. Suspended
            // while the worker is starvation-immune (liveness escape).
            if policy == Policy::Dws
                && !self.starvation_immune.get()
                && !reg.shutdown.load(Ordering::Acquire)
                && reg.table.current(reg.workers[self.index].core) != Some(reg.prog_id)
            {
                failed_steals = 0;
                self.go_to_sleep(true);
                continue;
            }
            match self.find_work_with(failed_steals > 0) {
                StealOutcome::Job(job) => {
                    failed_steals = 0;
                    self.execute(job);
                    continue;
                }
                StealOutcome::Contended => {
                    // Lost a CAS race on a *non-empty* deque even after
                    // the bounded retries: work exists, another thief got
                    // there first. Contention is the opposite of a work
                    // drought, so it must not feed Algorithm 1's
                    // failed-steal counter (the sleep trigger) nor the
                    // `steals_failed` demand signal.
                    if reg.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    std::hint::spin_loop();
                    continue;
                }
                StealOutcome::Empty => {}
            }
            // Out of work: immunity (if any) has served its purpose.
            self.starvation_immune.set(false);
            if reg.shutdown.load(Ordering::Acquire) {
                break;
            }
            failed_steals += 1;
            RtMetrics::bump(&reg.metrics.steals_failed);
            match policy {
                Policy::Ws => {
                    if failed_steals.is_multiple_of(reg.config.spin_yield_interval.max(1)) {
                        RtMetrics::bump(&reg.metrics.yields);
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                Policy::Abp | Policy::Ep => {
                    // ABP: yield the core after every failed steal.
                    RtMetrics::bump(&reg.metrics.yields);
                    std::thread::yield_now();
                }
                Policy::Dws | Policy::DwsNc => {
                    // The knob read, not the config: T_SLEEP may have been
                    // retuned by the adaptive controller (one relaxed load
                    // either way).
                    if failed_steals > reg.knobs.t_sleep() {
                        failed_steals = 0;
                        self.go_to_sleep(false);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    /// Algorithm 1's sleep (lines 14-17): release the core in the table
    /// (DWS only), block until woken, and on a safety-timeout wake try to
    /// legitimately re-enter (or sleep again).
    ///
    /// Liveness escape: if work is pending but the table refuses to grant
    /// this worker a core across many consecutive timeouts (corrupted or
    /// hostile table, dead co-runner holding everything), the worker
    /// eventually proceeds anyway — a stuck process is worse than a
    /// briefly over-subscribed core.
    fn go_to_sleep(&self, evicted: bool) {
        let reg = &*self.registry;
        // Published before the sleeper flags us asleep: `queued_jobs`
        // skips sleepers that provably left nothing behind. Only an
        // evicted worker can park non-empty; its jobs stay stealable and
        // must stay counted while siblings drain them.
        reg.workers[self.index].asleep_with_work.store(!self.deque.is_empty(), Ordering::Release);
        let core = reg.workers[self.index].core;
        let lane = self.index as u32;
        let shard = &reg.metrics.workers[self.index];
        let mut first = true;
        let mut starved_timeouts = 0u32;
        const STARVATION_GRACE: u32 = 6;
        loop {
            if reg.effective_policy == Policy::Dws && reg.table.release(core, reg.prog_id) {
                RtMetrics::bump(&reg.metrics.cores_released);
                // Closes any pending demand-fall stamp into the
                // release-latency histogram (DESIGN §14).
                reg.metrics.note_core_released(crate::trace::now_us());
                reg.trace.record(lane, RtEvent::Release { prog: reg.prog_id, core });
                // A released core is above all *reclaimable by its home
                // program*: ring that program's doorbell so its starved
                // coordinator reclaims now instead of next period. Our own
                // home core becoming free is not news to us — skip.
                let owner = reg.table.home(core);
                if owner != reg.prog_id {
                    reg.ring_doorbell(owner, DOORBELL_RELEASE);
                }
            }
            RtMetrics::bump(&reg.metrics.sleeps);
            RtMetrics::bump(&shard.sleeps);
            // Only the entry sleep is an eviction; loop re-entries below
            // are timeout re-sleeps.
            reg.trace
                .record(lane, RtEvent::Sleep { worker: self.index, evicted: evicted && first });
            first = false;
            let (reason, slept) =
                reg.workers[self.index].sleeper.sleep_timed(reg.config.sleep_timeout);
            RtMetrics::bump(&reg.metrics.wakes);
            {
                // Wake counter + duration sample publish together; the
                // section covers only the post-wake bookkeeping, never
                // the sleep itself.
                let _ws = shard.write_section();
                RtMetrics::bump(&shard.wakes);
                shard.sleep_duration.record(slept);
            }
            reg.trace.record(lane, RtEvent::Wake { worker: self.index });
            if reg.shutdown.load(Ordering::Acquire) {
                return;
            }
            match reason {
                WakeReason::Woken => {
                    // A core was granted (or shutdown).
                    if self.trace_on {
                        self.wake_at.set(Some(Instant::now()));
                    }
                    return;
                }
                WakeReason::TimedOut => {
                    // Self-recovery: only resume if there is work *and* we
                    // can hold our core under DWS exclusivity.
                    let has_work = reg.queued_jobs() > 0;
                    if !has_work {
                        starved_timeouts = 0;
                        continue;
                    }
                    if reg.effective_policy == Policy::Dws {
                        preempt_point("worker-legitimize");
                        let legit = if reg.table.current(core) == Some(reg.prog_id) {
                            true
                        } else if reg.table.try_acquire_free(core, reg.prog_id) {
                            reg.trace.record(lane, RtEvent::Acquire { prog: reg.prog_id, core });
                            true
                        } else if reg.table.try_reclaim(core, reg.prog_id) {
                            reg.trace.record(lane, RtEvent::Reclaim { prog: reg.prog_id, core });
                            true
                        } else {
                            false
                        };
                        if !legit {
                            starved_timeouts += 1;
                            if starved_timeouts < STARVATION_GRACE {
                                continue;
                            }
                            // Liveness over protocol purity: run anyway
                            // and stay immune to eviction until the work
                            // drought ends.
                            self.starvation_immune.set(true);
                        }
                    }
                    if self.trace_on {
                        self.wake_at.set(Some(Instant::now()));
                    }
                    return;
                }
            }
        }
    }

    /// One round of Algorithm 1's work acquisition: own pool, then the
    /// injector, then one steal attempt (random victim). Callers that
    /// only care about "got a job or not" (e.g. [`WorkerThread::work_until`])
    /// use this; the main loop uses [`WorkerThread::find_work_with`] to
    /// tell contention apart from emptiness.
    pub(crate) fn find_work(&self) -> Option<JobRef> {
        match self.find_work_with(false) {
            StealOutcome::Job(job) => Some(job),
            StealOutcome::Empty | StealOutcome::Contended => None,
        }
    }

    /// As [`WorkerThread::find_work`], sweeping victims when `sweeping`
    /// (set across consecutive failed attempts).
    pub(crate) fn find_work_with(&self, sweeping: bool) -> StealOutcome {
        if let Some(job) = self.deque.pop() {
            return StealOutcome::Job(job);
        }
        // Bulk injector drain: one lock acquisition moves a chunk of
        // injected work (ceil-half, capped by the live steal-batch knob) —
        // the surplus parks in our own deque, where it is popped lock-free
        // next round and remains stealable by siblings.
        let limit = self.registry.knobs.steal_batch();
        if let Some(job) = self.registry.injector.steal_batch_and_pop(&self.deque, limit) {
            if !self.deque.is_empty() {
                self.registry.wake_one_for_surplus();
            }
            return StealOutcome::Job(job);
        }
        if sweeping {
            self.steal_sweep()
        } else {
            self.steal_once()
        }
    }

    fn steal_once(&self) -> StealOutcome {
        self.steal_from(|n, me| self.rng.victim(n, me))
    }

    /// As [`WorkerThread::steal_once`], but sweeping from the previous
    /// victim — used on consecutive failures so one pass visits everyone.
    fn steal_sweep(&self) -> StealOutcome {
        self.steal_from(|n, me| self.rng.victim_sweep(n, me))
    }

    /// One steal operation against one victim.
    ///
    /// Fast path: a victim with fewer than two observable tasks (or
    /// batching disabled via `steal_batch_limit == 1`) gets a single-task
    /// steal — one CAS, no bookkeeping. Otherwise the thief takes up to
    /// half the victim's queue (capped by `steal_batch_limit` and
    /// [`dws_deque::MAX_STEAL_BATCH`]) into its own deque and runs the
    /// oldest task immediately, amortizing victim selection and the
    /// steal-path cache misses over the whole batch.
    ///
    /// A `Steal::Retry` (lost CAS race, deque non-empty) is retried on
    /// the *same* victim up to `steal_retries` times: contention means
    /// the deque is hot, and hopping victims or reporting failure would
    /// misread demand (§3.3 / Eq. 1). Retries still exhausted surfaces as
    /// [`StealOutcome::Contended`], which the main loop keeps out of the
    /// failed-steal counter.
    fn steal_from(&self, pick: impl Fn(usize, usize) -> usize) -> StealOutcome {
        let reg = &*self.registry;
        let n = reg.workers.len();
        if n <= 1 {
            return StealOutcome::Empty;
        }
        let victim = pick(n, self.index);
        let stealer = &reg.workers[victim].stealer;
        let batch_limit = reg.knobs.steal_batch();
        let batch = batch_limit > 1 && stealer.len() >= 2;
        // Latency timing and per-attempt events only while tracing: the
        // disabled hot path must not take timestamps.
        let t0 = if self.trace_on { Some(Instant::now()) } else { None };
        let mut retries = reg.config.steal_retries;
        let (result, moved) = loop {
            let r = if batch {
                let before = self.deque.len();
                match stealer.steal_batch_and_pop(&self.deque, batch_limit) {
                    Steal::Success(job) => {
                        // Statistics only: a sibling may already be
                        // re-stealing from our deque, so the count can
                        // transiently under-report by a task or two.
                        let moved = 1 + self.deque.len().saturating_sub(before) as u64;
                        break (Steal::Success(job), moved);
                    }
                    other => other,
                }
            } else {
                match stealer.steal() {
                    Steal::Success(job) => break (Steal::Success(job), 1),
                    other => other,
                }
            };
            match r {
                Steal::Empty => break (Steal::Empty, 0),
                Steal::Retry if retries > 0 => {
                    retries -= 1;
                    std::hint::spin_loop();
                }
                Steal::Retry => break (Steal::Retry, 0),
                Steal::Success(_) => unreachable!("success breaks above"),
            }
        };
        if let Some(t0) = t0 {
            let shard = &reg.metrics.workers[self.index];
            {
                // Outcome counters + latency sample are one logical batch:
                // publish them atomically to snapshot readers.
                let _ws = shard.write_section();
                shard.steal_latency.record(t0.elapsed());
                match result {
                    Steal::Success(_) => {
                        RtMetrics::bump(&shard.steals_ok);
                        RtMetrics::add(&shard.tasks_stolen, moved);
                        shard.steal_batch.record_ns(moved);
                    }
                    Steal::Empty => RtMetrics::bump(&shard.steals_failed),
                    // Contended: neither a hit nor a miss — counted on
                    // its own axis (plus the latency sample recording
                    // the wasted attempt).
                    Steal::Retry => RtMetrics::bump(&shard.steals_contended),
                }
            }
            match result {
                Steal::Success(_) => {
                    reg.trace
                        .record(self.index as u32, RtEvent::StealOk { worker: self.index, victim });
                    if moved > 1 {
                        reg.trace.record(
                            self.index as u32,
                            RtEvent::BatchMoved {
                                worker: self.index,
                                victim,
                                moved: moved as usize,
                            },
                        );
                    }
                }
                Steal::Empty => {
                    reg.trace.record(self.index as u32, RtEvent::StealFail { worker: self.index });
                }
                Steal::Retry => {}
            }
        }
        match result {
            Steal::Success(job) => {
                RtMetrics::bump(&reg.metrics.steals_ok);
                RtMetrics::add(&reg.metrics.tasks_stolen, moved);
                if moved > 1 {
                    reg.wake_one_for_surplus();
                }
                StealOutcome::Job(job)
            }
            Steal::Empty => StealOutcome::Empty,
            Steal::Retry => {
                RtMetrics::bump(&reg.metrics.steals_contended);
                StealOutcome::Contended
            }
        }
    }

    /// Pushes a job onto this worker's own deque, minting its [`TaskId`]
    /// if it does not carry one yet (every locally-spawned job funnels
    /// through here: `join`'s stolen arm, scope spawns, detached spawns
    /// from inside the pool). The identity then rides inside the deque
    /// element through any pops, steals and batch transfers. With tracing
    /// on, the spawn timestamp is taken and `Spawn`/`Enqueue` land on
    /// this worker's lane; off, stamping is one `Cell` increment.
    pub(crate) fn push(&self, mut job: JobRef) {
        if job.task_id.is_none() {
            let seq = self.task_seq.get();
            self.task_seq.set(seq + 1);
            job.task_id = TaskId::new(self.registry.prog_id, self.index, seq);
            if self.trace_on {
                job.spawn_us = now_us();
                let id = job.task_id.as_u64();
                let lane = self.index as u32;
                self.registry.trace.record(lane, RtEvent::Spawn { id });
                self.registry.trace.record(lane, RtEvent::Enqueue { id });
            }
        }
        self.deque.push(job);
    }

    /// Pops the most recently pushed job, if still present.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.deque.pop()
    }

    /// Executes a job, counting it. With tracing on, the gap between the
    /// job's spawn timestamp and this instant is its *sojourn* — the time
    /// the task sat queued (possibly crossing deques via steals) before a
    /// worker picked it up — recorded into the per-worker histogram
    /// alongside the `ExecBegin`/`ExecEnd` lifecycle events.
    pub(crate) fn execute(&self, job: JobRef) {
        RtMetrics::bump(&self.registry.metrics.jobs_executed);
        if self.trace_on {
            let shard = &self.registry.metrics.workers[self.index];
            {
                let _ws = shard.write_section();
                RtMetrics::bump(&shard.jobs_executed);
                if let Some(woke) = self.wake_at.take() {
                    shard.wake_to_first_task.record(woke.elapsed());
                }
                if job.spawn_us != 0 {
                    let begin_us = now_us();
                    shard.task_sojourn.record_ns(begin_us.saturating_sub(job.spawn_us) * 1_000);
                    if job.submit_us != 0 {
                        // End-to-end request sojourn: client submit →
                        // exec-begin, including the ring wait before the
                        // coordinator drained it.
                        shard
                            .request_sojourn
                            .record_ns(begin_us.saturating_sub(job.submit_us) * 1_000);
                    }
                }
            }
            let id = job.task_id.as_u64();
            self.registry
                .trace
                .record(self.index as u32, RtEvent::ExecBegin { worker: self.index, id });
            // SAFETY: every JobRef in the system is executed exactly once;
            // provenance is guaranteed by push/steal discipline.
            unsafe { job.execute() };
            self.registry
                .trace
                .record(self.index as u32, RtEvent::ExecEnd { worker: self.index, id });
            return;
        }
        // SAFETY: as above.
        unsafe { job.execute() };
    }

    /// Lifecycle bookkeeping for a job the caller is about to run
    /// *inline* after popping it back (`join`'s steal-free path): the
    /// job bypasses [`WorkerThread::execute`], but its identity must
    /// still close with an `ExecBegin` — the offline W1 rule ("every
    /// spawned task executes") reads these events. Records the sojourn
    /// sample too, so the live histogram and the trace agree on what a
    /// task is. No-op with tracing off.
    pub(crate) fn trace_inline_begin(&self, job: &JobRef) {
        if !self.trace_on {
            return;
        }
        if job.spawn_us != 0 {
            let shard = &self.registry.metrics.workers[self.index];
            let _ws = shard.write_section();
            shard.task_sojourn.record_ns(now_us().saturating_sub(job.spawn_us) * 1_000);
        }
        self.registry.trace.record(
            self.index as u32,
            RtEvent::ExecBegin { worker: self.index, id: job.task_id.as_u64() },
        );
    }

    /// Closes the pair opened by [`WorkerThread::trace_inline_begin`].
    pub(crate) fn trace_inline_end(&self, job: &JobRef) {
        if !self.trace_on {
            return;
        }
        self.registry.trace.record(
            self.index as u32,
            RtEvent::ExecEnd { worker: self.index, id: job.task_id.as_u64() },
        );
    }

    /// Works until `done` reports true: keeps popping/stealing jobs, and
    /// yields politely when none are available. Used by `join` (waiting on
    /// a stolen arm) and `scope` (waiting for spawned jobs). Never sleeps:
    /// a blocked wait must stay responsive to its completion.
    pub(crate) fn work_until(&self, done: impl Fn() -> bool) {
        let mut idle_spins = 0u32;
        while !done() {
            if let Some(job) = self.find_work() {
                self.execute(job);
                idle_spins = 0;
            } else {
                idle_spins += 1;
                if idle_spins.is_multiple_of(8) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::HeapJob;

    /// A thread-less registry: worker deques stay in the test's hands so
    /// steals can be staged deterministically.
    fn bare_registry(n: usize) -> (Arc<Registry>, Vec<Deque<JobRef>>) {
        bare_registry_with(n, Policy::Ws, 1)
    }

    fn bare_registry_with(
        n: usize,
        policy: Policy,
        programs: usize,
    ) -> (Arc<Registry>, Vec<Deque<JobRef>>) {
        let mut deques = Vec::with_capacity(n);
        let mut infos = Vec::with_capacity(n);
        for i in 0..n {
            let (w, s) = deque::<JobRef>();
            deques.push(w);
            infos.push(WorkerInfo {
                stealer: s,
                sleeper: Sleeper::new(),
                core: i,
                asleep_with_work: AtomicBool::new(false),
            });
        }
        let config = RuntimeConfig::new(n, policy);
        let knobs = Knobs::from_config(&config);
        let programs_table = InProcessTable::new(n, programs);
        let registry = Arc::new(Registry {
            effective_policy: config.policy,
            config,
            prog_id: 0,
            table: Arc::new(programs_table),
            injector: Injector::new(),
            workers: infos,
            metrics: RtMetrics::with_workers(n),
            trace: RtTrace::new(n, 16, false),
            telemetry: TelemetryState::new(4),
            shutdown: AtomicBool::new(false),
            exited: AtomicUsize::new(0),
            detached: AtomicUsize::new(0),
            external_seq: AtomicU64::new(0),
            serving: None,
            knobs,
        });
        (registry, deques)
    }

    fn noop_job() -> JobRef {
        HeapJob::new(|| {})
    }

    fn drain(d: &Deque<JobRef>) -> usize {
        let mut n = 0;
        while let Some(j) = d.pop() {
            // SAFETY: each heap job is executed exactly once, here.
            unsafe { j.execute() };
            n += 1;
        }
        n
    }

    /// Pins `N_b` while batched steals are in flight: a batch transfer
    /// between two counted deques conserves the total, and the
    /// sleeping-worker skip never hides an evicted sleeper's jobs.
    #[test]
    fn queued_jobs_survives_batched_steals_and_sleepers() {
        let (reg, deques) = bare_registry(3);
        for _ in 0..6 {
            deques[0].push(noop_job());
        }
        for _ in 0..3 {
            reg.injector.push(noop_job());
        }
        assert_eq!(reg.queued_jobs(), 9);

        // Deque→deque batch steal: tasks move between two counted pools.
        match reg.workers[0].stealer.steal_batch(&deques[1], 8) {
            Steal::Success(n) => assert_eq!(n, 3, "ceil-half of 6"),
            other => panic!("unexpected steal outcome: {other:?}"),
        }
        assert_eq!(reg.queued_jobs(), 9, "a batch in flight must not change N_b");

        // Injector bulk pop: one job handed out, the surplus parked in a
        // counted worker deque.
        let job = reg.injector.steal_batch_and_pop(&deques[2], 8).expect("injected work");
        // SAFETY: executed exactly once, here.
        unsafe { job.execute() };
        assert_eq!(reg.queued_jobs(), 8);
        assert!(!deques[2].is_empty(), "surplus parked on worker 2");

        // Worker 2 now "sleeps". Without the evicted flag the skip hides
        // its parked job (the real runtime always sets the flag on a
        // non-empty sleep entry in go_to_sleep); with it, N_b is intact.
        let reg2 = Arc::clone(&reg);
        let sleeper = std::thread::spawn(move || reg2.workers[2].sleeper.sleep(None));
        while !reg.workers[2].sleeper.is_sleeping() {
            std::thread::yield_now();
        }
        assert_eq!(reg.queued_jobs(), 7, "idle-sleeper fast path skips the deque");
        reg.workers[2].asleep_with_work.store(true, Ordering::Release);
        assert_eq!(reg.queued_jobs(), 8, "evicted sleepers' jobs stay counted");
        reg.workers[2].sleeper.wake();
        sleeper.join().unwrap();
        assert_eq!(reg.queued_jobs(), 8, "awake again: deque read directly");

        let mut drained: usize = deques.iter().map(drain).sum();
        while let Some(j) = reg.injector.pop() {
            // SAFETY: executed exactly once, here.
            unsafe { j.execute() };
            drained += 1;
        }
        assert_eq!(drained, 8, "every remaining job accounted for");
        assert_eq!(reg.queued_jobs(), 0);
    }

    /// A batch surplus wakes one sleeping sibling immediately, instead of
    /// leaving it to the coordinator's next period.
    #[test]
    fn surplus_wake_rouses_a_sleeper() {
        let (reg, _deques) = bare_registry(2);
        reg.wake_one_for_surplus(); // nobody asleep: cheap no-op

        let reg2 = Arc::clone(&reg);
        let sleeper = std::thread::spawn(move || reg2.workers[1].sleeper.sleep(None));
        while !reg.workers[1].sleeper.is_sleeping() {
            std::thread::yield_now();
        }
        reg.wake_one_for_surplus();
        sleeper.join().unwrap(); // returns only once woken
        assert!(!reg.workers[1].sleeper.is_sleeping());
    }

    /// Under DWS the surplus wake must respect the table: no core grant,
    /// no wake — waking into an eviction would just bounce the sleeper.
    #[test]
    fn surplus_wake_needs_a_core_under_dws() {
        let (reg, _deques) = bare_registry_with(2, Policy::Dws, 2);
        let reg2 = Arc::clone(&reg);
        let sleeper = std::thread::spawn(move || reg2.workers[1].sleeper.sleep(None));
        while !reg.workers[1].sleeper.is_sleeping() {
            std::thread::yield_now();
        }

        // Worker 1's core is home to (and used by) the co-runner: no
        // grant path exists, so the sleeper must be left alone.
        assert_eq!(reg.table.current(1), Some(1));
        reg.wake_one_for_surplus();
        assert!(reg.workers[1].sleeper.is_sleeping(), "no core, no wake");

        // The co-runner releases the core: now the wake claims it first.
        assert!(reg.table.release(1, 1));
        reg.wake_one_for_surplus();
        sleeper.join().unwrap();
        assert_eq!(reg.table.current(1), Some(0), "core granted before the wake");
    }
}
