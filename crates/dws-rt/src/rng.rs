//! Per-worker victim-selection RNG.
//!
//! Victim choice must be cheap (it sits on the steal path) and must not
//! share state across workers (a global RNG would serialize thieves), so
//! each worker owns an xorshift64* generator seeded from its index.

use std::cell::Cell;

/// Small, fast xorshift64* generator. One per worker, never shared.
#[derive(Debug)]
pub(crate) struct VictimRng {
    state: Cell<u64>,
    /// Victim-scan cursor for the cyclic sweep after a failed attempt.
    scan: Cell<usize>,
}

impl VictimRng {
    /// Seeds from an arbitrary value (zero remapped off the fixed point).
    pub(crate) fn new(seed: u64) -> Self {
        VictimRng {
            state: Cell::new(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed }),
            scan: Cell::new(0),
        }
    }

    #[inline]
    fn next_u64(&self) -> u64 {
        let mut x = self.state.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub(crate) fn next_below(&self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A victim index in `[0, n)` that is never `me` (requires `n > 1`).
    #[inline]
    pub(crate) fn victim(&self, n: usize, me: usize) -> usize {
        debug_assert!(n > 1);
        let mut v = self.next_below(n - 1);
        if v >= me {
            v += 1;
        }
        self.scan.set(v);
        v
    }

    /// Victim for a retry after a failed attempt: sweeps cyclically from
    /// the last victim (so one full pass visits every peer), never `me`.
    #[inline]
    pub(crate) fn victim_sweep(&self, n: usize, me: usize) -> usize {
        debug_assert!(n > 1);
        let mut v = (self.scan.get() + 1) % n;
        if v == me {
            v = (v + 1) % n;
        }
        self.scan.set(v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_never_self() {
        let rng = VictimRng::new(123);
        for _ in 0..10_000 {
            let v = rng.victim(8, 3);
            assert!(v < 8);
            assert_ne!(v, 3);
        }
    }

    #[test]
    fn victim_covers_everyone_else() {
        let rng = VictimRng::new(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.victim(8, 0)] = true;
        }
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn two_worker_pool_always_picks_the_other() {
        let rng = VictimRng::new(5);
        for _ in 0..100 {
            assert_eq!(rng.victim(2, 1), 0);
            assert_eq!(rng.victim(2, 0), 1);
        }
    }
}
