//! Structured task spawning: `scope(|s| { s.spawn(...); ... })`.
//!
//! A scope lets tasks borrow from the enclosing stack frame: every job
//! spawned on the scope is guaranteed to finish before `scope` returns,
//! so closures may capture `&'scope` references. This is the API the
//! wave-style benchmarks (Heat, SOR, GE...) use to fan out one iteration's
//! tasks.

use std::marker::PhantomData;

use parking_lot::Mutex;

use crate::job::{HeapJob, PanicPayload};
use crate::latch::{CountLatch, Latch};
use crate::registry::WorkerThread;

/// A spawn scope tied to lifetime `'scope`. Create with [`scope`].
pub struct Scope<'scope> {
    /// Outstanding spawned jobs.
    pending: CountLatch,
    /// First panic from a spawned job, re-thrown when the scope closes.
    panic: Mutex<Option<PanicPayload>>,
    /// Invariant over 'scope (captures must outlive the scope's body).
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` on the pool. The closure may borrow anything that lives
    /// at least as long as `'scope`; it will run before [`scope`] returns.
    ///
    /// Must be called from a pool thread (any thread currently inside the
    /// scope's body qualifies, since the body runs on a worker).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let worker = WorkerThread::current()
            .expect("Scope::spawn called off the pool; scopes run on worker threads");
        self.pending.increment();

        // Erase 'scope: the job ref may sit in a deque typed for 'static.
        // SAFETY: `scope` does not return until `pending` reaches zero,
        // so every borrow in `f` outlives the job's execution.
        struct ScopePtr<'s>(*const Scope<'s>);
        // SAFETY: the Scope's fields (atomic counter, mutex) are Sync;
        // only the raw pointer makes this !Send automatically.
        unsafe impl Send for ScopePtr<'_> {}
        impl<'s> ScopePtr<'s> {
            // Method access (rather than field access) makes the closure
            // capture the whole Send wrapper, not the raw pointer field.
            fn get(&self) -> *const Scope<'s> {
                self.0
            }
        }
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        let job = HeapJob::new(move || {
            // SAFETY: the scope outlives all its jobs (waited on below).
            let scope = unsafe { &*scope_ptr.get() };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = scope.panic.lock();
                slot.get_or_insert(payload);
            }
            scope.pending.set();
        });
        worker.push(job);
    }

    fn done(&self) -> bool {
        self.pending.probe_done()
    }
}

/// Creates a scope, runs `op` inside it, waits for every spawned job, and
/// returns `op`'s result. Panics from spawned jobs (the first one) and
/// from `op` itself are propagated; spawned jobs always complete before
/// the panic resumes.
///
/// Must be called from inside a pool (e.g. within
/// [`crate::Runtime::block_on`]); [`crate::Runtime::scope`] wraps the two.
/// Called from outside any pool, spawns would have nowhere to run, so this
/// panics with a descriptive message.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let worker = WorkerThread::current()
        .expect("scope() called off the pool; use Runtime::scope or call inside block_on");

    let s =
        Scope { pending: CountLatch::with_count(0), panic: Mutex::new(None), marker: PhantomData };

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op(&s)));

    // Wait for all spawned jobs, helping to execute them.
    worker.work_until(|| s.done());

    // Propagation order: op's own panic first, then the first job panic.
    match result {
        Err(payload) => std::panic::resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = s.panic.lock().take() {
                std::panic::resume_unwind(payload);
            }
            r
        }
    }
}
