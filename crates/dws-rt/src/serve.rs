//! Serving mode: the cross-process request path (DESIGN §13).
//!
//! A serving program attaches a fixed-capacity MPSC [`SubmitRing`] —
//! carved out of the shared shm segment by [`crate::shm::ShmTable`], or
//! heap-backed for in-process runs — and its coordinator drains the ring
//! into the [`dws_deque::Injector`] once per period. Each drained
//! [`Request`] becomes an ordinary external task (spawner
//! [`TaskId::EXTERNAL_WORKER`]) running the program's request handler, so
//! the whole demand-aware machinery (Eq. 1 wakes, batched steals,
//! lifecycle tracing) applies to open-loop traffic unchanged.
//!
//! Timeline of one request:
//!
//! ```text
//! client submit ──ring──▶ coordinator drain (Admit) ──injector──▶
//!   worker pickup (ExecBegin) ──▶ handler returns (ExecEnd)
//! ```
//!
//! `submit → ExecBegin` is the *end-to-end request sojourn* — the
//! headline tail-latency metric, one hop earlier than the task sojourn
//! (`spawn → ExecBegin`, which here starts at the drain). The client-side
//! submit timestamp rides inside the ring slot and then inside the
//! [`crate::job::JobRef`], so no side table is needed.
//!
//! Fencing: the ring carries the program's lease epoch. A client that
//! attached before a crash/re-register cycle submits with a stale epoch
//! and is rejected with [`SubmitError::Fenced`] instead of feeding a
//! reincarnated program requests from a dead conversation.

use std::sync::Arc;

use dws_deque::{Request, SubmitRing, TaskId};

use crate::alloc_table::CoreTable;
use crate::job::HeapJob;
use crate::metrics::RtMetrics;
use crate::registry::Registry;
use crate::sync::Ordering;
use crate::trace::{now_us, RtEvent, LANE_SHARED};

/// The work a serving program performs per admitted request. Runs on a
/// worker like any spawned task; `Request::demand_us` conventionally
/// carries the service demand the generator sampled, but the handler is
/// free to interpret the payload however it likes.
pub type RequestHandler = Arc<dyn Fn(Request) + Send + Sync>;

/// Per-runtime serving state: where the ring lives and what to run per
/// request.
pub(crate) struct ServingState {
    /// Heap-backed ring used when the allocation table carves none (solo
    /// runs, in-process tables). Tables that host per-program rings in
    /// their shm segment ([`crate::shm::ShmTable`]) take precedence.
    owned: Option<SubmitRing>,
    /// The request handler, cloned into each admitted job.
    pub(crate) handler: RequestHandler,
}

impl ServingState {
    pub(crate) fn new(owned: Option<SubmitRing>, handler: RequestHandler) -> Self {
        ServingState { owned, handler }
    }

    /// The ring requests arrive on: the table's shm-resident ring for
    /// this program if it has one, else the runtime's own heap ring.
    pub(crate) fn ring<'a>(
        &'a self,
        table: &'a dyn CoreTable,
        prog: usize,
    ) -> Option<&'a SubmitRing> {
        table.submit_ring(prog).or(self.owned.as_ref())
    }
}

impl Registry {
    /// The submission ring serving this program, if any.
    pub(crate) fn submission_ring(&self) -> Option<&SubmitRing> {
        self.serving.as_ref()?.ring(&*self.table, self.prog_id)
    }

    /// One drain pass: moves up to `serve.drain_batch` requests from the
    /// submission ring into the injector, stamping each with an external
    /// [`TaskId`] and carrying the client's submit timestamp through to
    /// the executing worker. Returns the number admitted. Run by the
    /// coordinator once per period; also callable directly (tests,
    /// manual pumping).
    pub(crate) fn drain_submissions(&self) -> usize {
        let Some(serving) = &self.serving else { return 0 };
        // A zombie's ring belongs to its successor incarnation (the
        // recycle reset it): draining would steal the successor's
        // requests. Park until re-armed or degraded.
        if self.table.zombie_fenced() {
            return 0;
        }
        let Some(ring) = serving.ring(&*self.table, self.prog_id) else { return 0 };
        let tracing = self.trace.enabled();
        let mut admitted = 0usize;
        ring.drain(self.config.serve.drain_batch, &mut |req| {
            let handler = Arc::clone(&serving.handler);
            let mut job = HeapJob::new(move || handler(req));
            job.task_id =
                TaskId::new(self.prog_id, TaskId::EXTERNAL_WORKER, self.next_external_seq());
            // The submit timestamp always flows through (a copy, no
            // syscall); the spawn timestamp and lifecycle events follow
            // the usual tracing gate.
            job.submit_us = req.submit_us;
            if tracing {
                job.spawn_us = now_us();
                let id = job.task_id.as_u64();
                self.trace.record(LANE_SHARED, RtEvent::Admit { id, submit_us: req.submit_us });
                self.trace.record(LANE_SHARED, RtEvent::Enqueue { id });
            }
            self.injector.push(job);
            admitted += 1;
        });
        if admitted > 0 {
            RtMetrics::add(&self.metrics.requests_admitted, admitted as u64);
            self.ensure_progress();
        }
        // Mirror the ring's client-side reject counters so one metrics
        // snapshot carries both sides of the protocol. Stores, not adds:
        // the ring counters are already monotone totals.
        self.metrics.requests_dropped.store(ring.dropped(), Ordering::Relaxed);
        self.metrics.requests_fenced.store(ring.fenced(), Ordering::Relaxed);
        self.metrics.requests_abandoned.store(ring.abandoned(), Ordering::Relaxed);
        admitted
    }
}
