//! The `mmap`-backed cross-process core-allocation table (paper §3.4),
//! extended with a failure model: per-program **leases**, orphan
//! **reaping**, and graceful **degradation**.
//!
//! "The first-launched work-stealing program creates a new file and maps
//! the file into the shared memory using `mmap()` ... all the following
//! programs can easily access the core allocation table using `mmap()`."
//!
//! Layout of the mapped file (version 4; all fields little-endian):
//!
//! ```text
//! offset 0        u64  MAGIC (written last by the creator, release order)
//! offset 8        u32  version
//! offset 12       u32  cores (k)
//! offset 16       u32  max programs (m)
//! offset 20       u32  registered-programs counter (informational)
//! offset 24       u32  submission-ring capacity (r, requests per program)
//! offset 28       u32  reserved (0)
//! offset 32       lease[0] .. lease[m-1], 24 bytes each:
//!                   +0   u64  state = (epoch << 32) | status
//!                   +8   u64  pid (0 = dead sentinel / never registered)
//!                   +16  u64  last heartbeat, CLOCK_MONOTONIC ms
//! offset 32+24m   u64  slot[0] .. slot[k-1] = (epoch << 32) | owner
//!                   (owner is an i32 in the low half; -1 = FREE)
//! offset 32+24m+8k   doorbell[0] .. doorbell[m-1], 8 bytes each:
//!                   +0   u32  pending-reason bits (futex word; DESIGN §16)
//!                   +4   u32  pad (keeps the rings 8-aligned)
//! offset 32+24m+8k+8m   ring[0] .. ring[m-1], SubmitRing::bytes_for(r)
//!                   each: the per-program MPSC submission rings (serving
//!                   mode, DESIGN §13); ring epochs mirror the lease epochs
//! ```
//!
//! The creator initializes dimensions, leases and slots (the §3.1
//! equipartition, every slot stamped with epoch 1) and then publishes
//! `MAGIC`; openers spin until the magic appears, so a concurrent
//! create/open race is benign. An opener that finds a *wrong* magic,
//! version or geometry fails fast with a typed [`ShmError`] instead of
//! aliasing an incompatible layout.
//!
//! # The failure model
//!
//! * **Leases** — each registered program owns one lease record; its
//!   coordinator refreshes the heartbeat every tick. A program whose
//!   heartbeat goes stale *and* whose pid no longer exists (`kill(pid,
//!   0)` → `ESRCH`) is eligible for reaping.
//! * **Epoch fencing** — every slot CAS carries the owner's lease epoch,
//!   so a reaper racing a re-registered (reincarnated, epoch-bumped)
//!   program can never free the new incarnation's cores: its stale
//!   `(owner, old_epoch)` compare simply fails.
//! * **Reap protocol** — `ACTIVE → FENCED` (one CAS, after the death
//!   check) stops the dead program's cores from being handed back;
//!   per-core `(dead, epoch) → FREE` CASes return the stranded cores to
//!   the free pool; `FENCED → REAPED` completes once no slot names the
//!   dead incarnation. Re-registration recycles only `REAPED` leases, so
//!   a reap in progress can never race a reincarnation.
//! * **Degradation** — [`FailoverTable`] wraps a `ShmTable` and, when the
//!   backing file disappears or its header stops validating, flips a
//!   `degraded` flag and routes every operation to a private
//!   [`InProcessTable`] (plain work-stealing on the home partition)
//!   instead of panicking.
//! * **Zombie fencing** — a coordinator SIGSTOPped past its lease timeout
//!   can be reaped and then *resume*, a stale-lease **zombie** that would
//!   keep writing a table it no longer owns. Registration latches the
//!   handle's own `(program, epoch)`; every mutating operation first
//!   self-checks the live lease against the latch and, on mismatch, sets
//!   a sticky `zombie` flag and refuses — the resumed coordinator detects
//!   the fence on its first table touch instead of corrupting a
//!   co-runner. Slot CASes stamp the *latched* epoch (never a re-read of
//!   the live lease word), so even a mutation racing its own reap writes
//!   the old incarnation's epoch, which the in-flight reap ladder frees.
//!   A zombie recovers by [`ShmTable::try_rearm`] (re-claiming its own
//!   reaped lease under a bumped epoch) or degrades via [`FailoverTable`].
//! * **Stall fencing (opt-in)** — [`CoreTable::set_stall_timeout`] lets a
//!   deployment treat a live-but-stalled program (heartbeat stale beyond
//!   the stall timeout, pid still present) as expired. Only sound
//!   together with zombie fencing: the stalled program that resumes finds
//!   itself fenced and stops.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dws_deque::SubmitRing;

use crate::alloc_table::{equipartition_home, CoreTable, InProcessTable, FREE};

const MAGIC: u64 = 0x4457_535F_5441_424C; // "DWS_TABL"
const VERSION: u32 = 4;
const HEADER_BYTES: usize = 32;
const LEASE_BYTES: usize = 24;
/// Bytes per program in the doorbell section: the u32 futex word plus a
/// u32 pad keeping the rings behind it 8-aligned.
const DOORBELL_BYTES: usize = 8;

/// Submission-ring capacity every table carries by default. ~32 KiB per
/// program in the segment; use [`ShmTable::create_or_open_with_rings`] to
/// pick a different geometry (all participants must agree).
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Lease lifecycle (low 32 bits of the lease state word).
const LEASE_UNUSED: u32 = 0;
const LEASE_REGISTERING: u32 = 1;
const LEASE_ACTIVE: u32 = 2;
const LEASE_FENCED: u32 = 3;
const LEASE_REAPED: u32 = 4;

const fn pack_slot(owner: i32, epoch: u32) -> u64 {
    ((epoch as u64) << 32) | (owner as u32 as u64)
}

const fn slot_owner(v: u64) -> i32 {
    v as u32 as i32
}

const fn slot_epoch(v: u64) -> u32 {
    (v >> 32) as u32
}

const fn pack_lease(epoch: u32, status: u32) -> u64 {
    ((epoch as u64) << 32) | status as u64
}

const fn lease_status(v: u64) -> u32 {
    v as u32
}

const fn lease_epoch(v: u64) -> u32 {
    (v >> 32) as u32
}

/// A free slot: owner −1, epoch 0 (releases always restore exactly this).
const FREE_SLOT: u64 = pack_slot(FREE, 0);

/// Milliseconds on `CLOCK_MONOTONIC` — comparable across processes on the
/// same boot, immune to wall-clock steps.
fn monotonic_ms() -> u64 {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: plain clock_gettime into a valid timespec.
    unsafe { libc::clock_gettime(libc::CLOCK_MONOTONIC, &mut ts) };
    ts.tv_sec as u64 * 1_000 + ts.tv_nsec as u64 / 1_000_000
}

/// Is the recorded pid certainly gone? `0` is the explicit dead sentinel
/// (never passed to `kill`, which would signal the process group);
/// otherwise only an `ESRCH` answer counts — permission errors and live
/// processes are both treated as alive (conservative: never reap a maybe).
fn pid_is_dead(pid: u64) -> bool {
    if pid == 0 {
        return true;
    }
    let Ok(pid) = i32::try_from(pid) else {
        return true; // not a representable pid: corrupt record
    };
    // SAFETY: kill with signal 0 only probes for existence.
    let r = unsafe { libc::kill(pid, 0) };
    r == -1 && io::Error::last_os_error().raw_os_error() == Some(libc::ESRCH)
}

/// Parks on the futex word while it still reads `expected`, for at most
/// `timeout`. Spurious returns (EINTR, a wake with the bits already
/// consumed) are fine: the caller loops re-reading the word. **No**
/// `FUTEX_PRIVATE_FLAG` — ringers and waiters are different processes
/// sharing the mapping.
#[cfg(target_os = "linux")]
fn futex_wait(word: &AtomicU32, expected: u32, timeout: Duration) {
    let ts = libc::timespec {
        tv_sec: timeout.as_secs().min(i64::MAX as u64) as libc::time_t,
        tv_nsec: libc::c_long::from(timeout.subsec_nanos()),
    };
    // SAFETY: `word` points into the live mapping (held by &self),
    // `ts` outlives the call; FUTEX_WAIT reads, never writes.
    unsafe {
        libc::syscall(libc::SYS_futex, word.as_ptr(), libc::FUTEX_WAIT, expected, &ts, 0usize, 0);
    }
}

/// Wakes up to `n` waiters parked on the futex word.
#[cfg(target_os = "linux")]
fn futex_wake(word: &AtomicU32, n: u32) {
    // SAFETY: `word` points into the live mapping; FUTEX_WAKE takes no
    // timeout or address arguments beyond the word itself.
    unsafe {
        libc::syscall(libc::SYS_futex, word.as_ptr(), libc::FUTEX_WAKE, n, 0usize, 0usize, 0);
    }
}

/// Typed failures of the shared-table lifecycle ([`ShmTable::create_or_open`],
/// [`ShmTable::register`]).
#[derive(Debug)]
pub enum ShmError {
    /// Underlying file operation failed.
    Io(io::Error),
    /// The file's magic is present but wrong — not a DWS table.
    BadMagic {
        /// The 8 bytes found where the magic belongs.
        found: u64,
    },
    /// The table speaks a different layout version.
    VersionMismatch {
        /// Version recorded in the file.
        found: u32,
    },
    /// The table was sized for different dimensions.
    GeometryMismatch {
        /// Cores recorded in the file.
        cores: usize,
        /// Programs recorded in the file.
        programs: usize,
        /// Cores the caller expected.
        expected_cores: usize,
        /// Programs the caller expected.
        expected_programs: usize,
    },
    /// The table's submission rings were sized for a different capacity.
    RingMismatch {
        /// Ring capacity recorded in the file.
        found: usize,
        /// Ring capacity the caller expected.
        expected: usize,
    },
    /// The creator never published the magic (crashed mid-init?).
    InitTimeout,
    /// Every program lease is taken and none is reaped.
    Exhausted,
    /// A retry loop ([`Backoff::retry`]) exhausted its attempts. Wraps
    /// the last transient error so callers keep the root cause.
    Timeout {
        /// Attempts made before giving up.
        attempts: u32,
        /// Wall-clock time spent retrying (including backoff sleeps).
        elapsed: Duration,
        /// The transient error the final attempt died on.
        last: Box<ShmError>,
    },
}

impl std::fmt::Display for ShmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmError::Io(e) => write!(f, "shared table I/O error: {e}"),
            ShmError::BadMagic { found } => {
                write!(f, "not a DWS table: bad magic {found:#018x}")
            }
            ShmError::VersionMismatch { found } => {
                write!(f, "table layout version {found}, expected {VERSION}")
            }
            ShmError::GeometryMismatch { cores, programs, expected_cores, expected_programs } => {
                write!(
                    f,
                    "table is {cores} cores / {programs} programs, \
                     expected {expected_cores}/{expected_programs}"
                )
            }
            ShmError::RingMismatch { found, expected } => {
                write!(f, "table rings hold {found} requests, expected {expected}")
            }
            ShmError::InitTimeout => write!(f, "shared table never initialized"),
            ShmError::Exhausted => write!(f, "all program slots taken"),
            ShmError::Timeout { attempts, elapsed, last } => {
                write!(f, "gave up after {attempts} attempts over {elapsed:?}: {last}")
            }
        }
    }
}

impl std::error::Error for ShmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShmError::Io(e) => Some(e),
            ShmError::Timeout { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<io::Error> for ShmError {
    fn from(e: io::Error) -> Self {
        ShmError::Io(e)
    }
}

/// Jittered exponential-backoff policy — the one retry loop every shm
/// open/attach path shares ([`ShmTable::open_with_retry`],
/// [`ShmTable::register_with_retry`], [`FailoverTable::open_or_degraded`]).
///
/// The delay doubles per attempt from `base` up to `max`, and each sleep
/// is drawn uniformly from `[delay/2, delay]` (equal jitter): when a
/// churn burst restarts a whole cohort of programs at once, their
/// retries decorrelate instead of hammering the table creator in
/// lockstep. Exhausting `attempts` yields [`ShmError::Timeout`] wrapping
/// the last transient error.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// Total attempts (≥ 1; 0 is treated as 1).
    pub attempts: u32,
    /// Delay before the second attempt; doubles each retry.
    pub base: Duration,
    /// Ceiling the doubling saturates at.
    pub max: Duration,
}

impl Backoff {
    /// A policy with `max` capped at 64× the base (six doublings).
    pub const fn new(attempts: u32, base: Duration) -> Self {
        Backoff { attempts, base, max: Duration::from_nanos(base.as_nanos() as u64 * 64) }
    }

    /// Runs `op` until it succeeds, fails non-transiently, or the
    /// attempts run out. `transient` decides which errors are worth
    /// retrying; anything else propagates immediately (retrying cannot
    /// fix an incompatible file).
    pub fn retry<T>(
        &self,
        mut op: impl FnMut() -> Result<T, ShmError>,
        transient: impl Fn(&ShmError) -> bool,
    ) -> Result<T, ShmError> {
        let attempts = self.attempts.max(1);
        let started = std::time::Instant::now();
        // Jitter PRNG (xorshift64*): seeded per call from the pid and the
        // policy address, so co-launched processes draw different delays.
        // Deliberately *not* part of any replayable seed — jitter shapes
        // wall-clock contention only, never logical outcomes.
        let mut jrng: u64 = (u64::from(std::process::id()) << 17)
            ^ (self as *const Backoff as u64)
            ^ 0x9E37_79B9_7F4A_7C15;
        let mut delay = self.base;
        let mut last = None;
        for attempt in 0..attempts {
            match op() {
                Ok(t) => return Ok(t),
                Err(e) if transient(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
            if attempt + 1 < attempts {
                jrng ^= jrng << 13;
                jrng ^= jrng >> 7;
                jrng ^= jrng << 17;
                let frac =
                    (jrng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64 / (1u64 << 24) as f64;
                let half = delay.as_secs_f64() / 2.0;
                std::thread::sleep(Duration::from_secs_f64(half + half * frac));
                delay = delay.saturating_mul(2).min(self.max);
            }
        }
        Err(ShmError::Timeout {
            attempts,
            elapsed: started.elapsed(),
            last: Box::new(last.unwrap_or(ShmError::InitTimeout)),
        })
    }
}

impl From<ShmError> for io::Error {
    fn from(e: ShmError) -> Self {
        match e {
            ShmError::Io(e) => e,
            ShmError::InitTimeout | ShmError::Timeout { .. } => {
                io::Error::new(io::ErrorKind::TimedOut, e.to_string())
            }
            ShmError::Exhausted => io::Error::new(io::ErrorKind::QuotaExceeded, e.to_string()),
            _ => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        }
    }
}

struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// The mapping is shared memory accessed exclusively through atomics.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap of exactly len bytes.
        unsafe {
            libc::munmap(self.ptr.cast(), self.len);
        }
    }
}

/// Handle-local latch of "my own lease": `(epoch << 32) | prog`, or
/// [`UNBOUND`] when this handle never registered (fixed-id tests stay
/// oblivious to zombie fencing).
const UNBOUND: u64 = u64::MAX;

const fn pack_bound(prog: usize, epoch: u32) -> u64 {
    ((epoch as u64) << 32) | prog as u64
}

const fn bound_prog(v: u64) -> usize {
    v as u32 as usize
}

const fn bound_epoch(v: u64) -> u32 {
    (v >> 32) as u32
}

/// Cross-process core-allocation table over a shared file.
pub struct ShmTable {
    // (fields below; Debug is implemented manually to avoid printing the
    // raw mapping pointer contents)
    map: Mapping,
    home: Vec<usize>,
    cores: usize,
    programs: usize,
    ring_capacity: usize,
    /// Per-program submission rings viewing the tail of the mapping; the
    /// `Mapping` they borrow from lives in the same struct and is dropped
    /// after them.
    rings: Vec<SubmitRing>,
    /// This handle's own latched lease identity (`pack_bound`), or
    /// [`UNBOUND`]. Handle-local, never in shared memory: it is precisely
    /// the state that must *not* follow the live lease word.
    bound: AtomicU64,
    /// Sticky zombie flag: this handle's lease was fenced or recycled
    /// behind its back. Set by the first failing self-check; cleared only
    /// by a successful [`ShmTable::try_rearm`].
    zombie: AtomicBool,
    /// Opt-in stall fence: heartbeats staler than this many ms mark a
    /// program expired even when its pid is alive. 0 = disabled
    /// (confirmed-dead-only, the conservative default).
    stall_timeout_ms: AtomicU64,
}

impl ShmTable {
    /// Creates the table file (or opens it if another program got there
    /// first) and maps it, with submission rings sized at
    /// [`DEFAULT_RING_CAPACITY`]. `cores` and `programs` must match across
    /// all participants; on open the magic, layout version and geometry
    /// are all validated, and a mismatch is a typed [`ShmError`] rather
    /// than an aliased wrong layout.
    pub fn create_or_open(
        path: &Path,
        cores: usize,
        programs: usize,
    ) -> Result<ShmTable, ShmError> {
        Self::create_or_open_with_rings(path, cores, programs, DEFAULT_RING_CAPACITY)
    }

    /// [`ShmTable::create_or_open`] with an explicit per-program
    /// submission-ring capacity — another table dimension every
    /// participant must agree on ([`ShmError::RingMismatch`] otherwise).
    pub fn create_or_open_with_rings(
        path: &Path,
        cores: usize,
        programs: usize,
        ring_capacity: usize,
    ) -> Result<ShmTable, ShmError> {
        assert!(cores > 0 && cores < 4096, "unreasonable core count");
        assert!(programs > 0 && programs <= cores);
        assert!(ring_capacity >= 2, "submission ring needs capacity >= 2");
        let ring_bytes = SubmitRing::bytes_for(ring_capacity);
        let len = HEADER_BYTES
            + programs * LEASE_BYTES
            + cores * 8
            + programs * DOORBELL_BYTES
            + programs * ring_bytes;

        let cpath = std::ffi::CString::new(path.as_os_str().as_encoded_bytes())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "NUL in path"))?;

        // Try exclusive creation first.
        // SAFETY: plain libc calls with a valid C string.
        let (fd, creator) = unsafe {
            let fd = libc::open(cpath.as_ptr(), libc::O_RDWR | libc::O_CREAT | libc::O_EXCL, 0o600);
            if fd >= 0 {
                (fd, true)
            } else {
                let err = io::Error::last_os_error();
                if err.raw_os_error() != Some(libc::EEXIST) {
                    return Err(err.into());
                }
                let fd = libc::open(cpath.as_ptr(), libc::O_RDWR);
                if fd < 0 {
                    return Err(io::Error::last_os_error().into());
                }
                (fd, false)
            }
        };

        // SAFETY: fd is a valid open descriptor; we size and map it.
        let map = unsafe {
            if creator && libc::ftruncate(fd, len as libc::off_t) != 0 {
                let e = io::Error::last_os_error();
                libc::close(fd);
                return Err(e.into());
            }
            // Wait for a non-creator's file to cover the header (creator
            // may still be between open and ftruncate; touching an unbacked
            // page would SIGBUS). Only the header is needed up front: no
            // byte past it is read until the geometry check passes, and a
            // published magic implies the creator's full-length ftruncate
            // already ran — so a geometry mismatch on a smaller file is
            // still detected instead of timing out on its size.
            if !creator {
                let mut sized = false;
                for _ in 0..10_000 {
                    let mut st: libc::stat = std::mem::zeroed();
                    if libc::fstat(fd, &mut st) == 0 && st.st_size as usize >= HEADER_BYTES {
                        sized = true;
                        break;
                    }
                    std::thread::yield_now();
                }
                if !sized {
                    libc::close(fd);
                    return Err(ShmError::InitTimeout);
                }
            }
            let ptr = libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                fd,
                0,
            );
            libc::close(fd);
            if ptr == libc::MAP_FAILED {
                return Err(io::Error::last_os_error().into());
            }
            Mapping { ptr: ptr.cast(), len }
        };

        // View the per-program rings over the tail of the mapping. Wrapping
        // is pointer arithmetic only — no byte of the region is touched
        // until after the creator's init (below) or the opener's
        // validation, so a mismatched file can never be misread as rings.
        let rings_base =
            HEADER_BYTES + programs * LEASE_BYTES + cores * 8 + programs * DOORBELL_BYTES;
        let rings: Vec<SubmitRing> = (0..programs)
            .map(|p| {
                // SAFETY: the region is in-bounds of the `len`-byte mapping
                // and 8-aligned (page-aligned base, all offsets multiples
                // of 8); rings are only dereferenced through `&self`, while
                // the Mapping in the same struct keeps the region alive
                // (SubmitRing's drop never touches the region).
                unsafe {
                    SubmitRing::from_raw(map.ptr.add(rings_base + p * ring_bytes), ring_capacity)
                }
            })
            .collect();
        let table = ShmTable {
            map,
            home: equipartition_home(cores, programs),
            cores,
            programs,
            ring_capacity,
            rings,
            bound: AtomicU64::new(UNBOUND),
            zombie: AtomicBool::new(false),
            stall_timeout_ms: AtomicU64::new(0),
        };

        if creator {
            table.u32_at(8).store(VERSION, Ordering::Relaxed);
            table.u32_at(12).store(cores as u32, Ordering::Relaxed);
            table.u32_at(16).store(programs as u32, Ordering::Relaxed);
            table.u32_at(20).store(0, Ordering::Relaxed);
            table.u32_at(24).store(ring_capacity as u32, Ordering::Relaxed);
            // Leases and doorbell words start zeroed by ftruncate: UNUSED,
            // epoch 0, pid 0, no pending wake.
            // Slots carry epoch 1, matching the first registration epoch.
            for c in 0..cores {
                table.slot(c).store(pack_slot(table.home[c] as i32, 1), Ordering::Relaxed);
            }
            // Rings open at epoch 1 like the slots, so unregistered
            // (fixed-id) programs can serve against the creator epoch.
            for ring in &table.rings {
                ring.reset(1);
            }
            // Publish.
            table.magic().store(MAGIC, Ordering::Release);
        } else {
            // Spin until the creator publishes. A *wrong* nonzero magic is
            // a fail-fast error (this is not a DWS table); only an all-zero
            // word means "creator still initializing".
            let mut ok = false;
            for _ in 0..1_000_000 {
                match table.magic().load(Ordering::Acquire) {
                    MAGIC => {
                        ok = true;
                        break;
                    }
                    0 => std::thread::yield_now(),
                    found => return Err(ShmError::BadMagic { found }),
                }
            }
            if !ok {
                return Err(ShmError::InitTimeout);
            }
            let v = table.u32_at(8).load(Ordering::Relaxed);
            if v != VERSION {
                return Err(ShmError::VersionMismatch { found: v });
            }
            let (k, m) = (
                table.u32_at(12).load(Ordering::Relaxed) as usize,
                table.u32_at(16).load(Ordering::Relaxed) as usize,
            );
            if k != cores || m != programs {
                return Err(ShmError::GeometryMismatch {
                    cores: k,
                    programs: m,
                    expected_cores: cores,
                    expected_programs: programs,
                });
            }
            let r = table.u32_at(24).load(Ordering::Relaxed) as usize;
            if r != ring_capacity {
                return Err(ShmError::RingMismatch { found: r, expected: ring_capacity });
            }
        }
        Ok(table)
    }

    /// [`ShmTable::create_or_open`] under the shared [`Backoff`] retry
    /// loop. Transient failures (I/O errors, an unpublished table) are
    /// retried with jittered exponential backoff; validation failures —
    /// wrong magic, version or geometry — fail fast: retrying cannot fix
    /// an incompatible file. Exhaustion yields [`ShmError::Timeout`].
    pub fn open_with_retry(
        path: &Path,
        cores: usize,
        programs: usize,
        attempts: u32,
        backoff: Duration,
    ) -> Result<ShmTable, ShmError> {
        Backoff::new(attempts, backoff).retry(
            || ShmTable::create_or_open(path, cores, programs),
            |e| matches!(e, ShmError::Io(_) | ShmError::InitTimeout),
        )
    }

    /// [`ShmTable::register`] under the shared [`Backoff`] retry loop,
    /// treating [`ShmError::Exhausted`] as transient: under program churn
    /// a lease frees as soon as a reaper finishes with it, so an arriving
    /// program should wait out a full table instead of dying at the door.
    pub fn register_with_retry(&self, policy: Backoff) -> Result<usize, ShmError> {
        policy.retry(|| self.register(), |e| matches!(e, ShmError::Exhausted))
    }

    /// Registers the calling program, claiming a lease record (pid +
    /// heartbeat) and returning its program id. Fresh tables hand out
    /// sequential ids (creation order, as in the paper where the
    /// first-launched program creates the table); once every lease has
    /// been used, fully-**reaped** leases are recycled with a bumped
    /// epoch. Errors with [`ShmError::Exhausted`] when no lease is
    /// claimable.
    pub fn register(&self) -> Result<usize, ShmError> {
        let pid = u64::from(std::process::id());
        // Pass 1: the first never-used lease.
        for p in 0..self.programs {
            let st = self.lease_state(p);
            if st
                .compare_exchange(
                    pack_lease(0, LEASE_UNUSED),
                    pack_lease(1, LEASE_REGISTERING),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.lease_pid(p).store(pid, Ordering::Release);
                self.lease_heartbeat(p).store(monotonic_ms(), Ordering::Release);
                // Open the submission ring at the lease epoch *before*
                // activating, so a client can never observe ACTIVE with a
                // stale ring; clear the doorbell so a wake rung for a dead
                // predecessor can't leak into the new incarnation.
                self.rings[p].reset(1);
                self.doorbell_word(p).store(0, Ordering::Release);
                // Activate with a CAS, not a store: a fencer may have
                // taken this lease for dead mid-registration (REGISTERING
                // with a stale pid looks expired). Losing means the slot
                // is on its way to REAPED — just try the next one.
                if st
                    .compare_exchange(
                        pack_lease(1, LEASE_REGISTERING),
                        pack_lease(1, LEASE_ACTIVE),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    continue;
                }
                self.u32_at(20).fetch_add(1, Ordering::AcqRel);
                // Latch "this handle IS (p, epoch 1)" for zombie fencing.
                self.bound.store(pack_bound(p, 1), Ordering::Release);
                self.zombie.store(false, Ordering::Release);
                return Ok(p);
            }
        }
        // Pass 2: recycle a reaped lease under the next epoch. REAPED
        // guarantees no slot still names the previous incarnation, so the
        // new epoch can never collide with a stale reaper's CAS.
        for p in 0..self.programs {
            let cur = self.lease_state(p).load(Ordering::Acquire);
            if lease_status(cur) != LEASE_REAPED {
                continue;
            }
            let e = lease_epoch(cur).wrapping_add(1).max(1);
            if self
                .lease_state(p)
                .compare_exchange(
                    cur,
                    pack_lease(e, LEASE_REGISTERING),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.lease_pid(p).store(pid, Ordering::Release);
                self.lease_heartbeat(p).store(monotonic_ms(), Ordering::Release);
                // Re-arm the ring under the bumped epoch: clients of the
                // dead incarnation now get `SubmitError::Fenced`, and any
                // requests they left behind are discarded with the reset.
                // The doorbell clears with it — stale wakes die with the
                // lease they were rung for.
                self.rings[p].reset(u64::from(e));
                self.doorbell_word(p).store(0, Ordering::Release);
                // CAS, not store (see pass 1): a fencer may have fenced
                // us mid-registration; concede the slot and move on.
                if self
                    .lease_state(p)
                    .compare_exchange(
                        pack_lease(e, LEASE_REGISTERING),
                        pack_lease(e, LEASE_ACTIVE),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    continue;
                }
                self.u32_at(20).fetch_add(1, Ordering::AcqRel);
                self.bound.store(pack_bound(p, e), Ordering::Release);
                self.zombie.store(false, Ordering::Release);
                return Ok(p);
            }
        }
        Err(ShmError::Exhausted)
    }

    /// Does the mapped header still describe this table? Used by
    /// [`FailoverTable`]'s health check to detect in-place corruption.
    pub fn validate_header(&self) -> bool {
        self.magic().load(Ordering::Acquire) == MAGIC
            && self.u32_at(8).load(Ordering::Relaxed) == VERSION
            && self.u32_at(12).load(Ordering::Relaxed) as usize == self.cores
            && self.u32_at(16).load(Ordering::Relaxed) as usize == self.programs
            && self.u32_at(24).load(Ordering::Relaxed) as usize == self.ring_capacity
    }

    /// Requests each per-program submission ring can hold.
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// Settled-state table audit: every core slot is either exactly
    /// [`FREE`] (owner −1, epoch 0) or owned by an in-range program whose
    /// lease is ACTIVE at the *same* epoch the slot is stamped with.
    /// Returns every violation found, not just the first.
    ///
    /// This is the invariant the whole fencing design defends — a slot
    /// naming a fenced, reaped, or previous-epoch incarnation is core
    /// theft in progress. The check is only meaningful at a *settled*
    /// instant (mid-reap a slot legitimately names a FENCED lease for a
    /// few ticks), so chaos/recovery harnesses poll it until clean
    /// rather than asserting it mid-transition.
    pub fn audit(&self) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        for core in 0..self.cores {
            let s = self.slot(core).load(Ordering::Acquire);
            let owner = slot_owner(s);
            if owner == FREE {
                if slot_epoch(s) != 0 {
                    errors.push(format!(
                        "core {core}: free slot carries epoch {} (expected 0)",
                        slot_epoch(s)
                    ));
                }
                continue;
            }
            if owner < 0 || owner as usize >= self.programs {
                errors.push(format!("core {core}: owner {owner} out of range (torn write?)"));
                continue;
            }
            let st = self.lease_state(owner as usize).load(Ordering::Acquire);
            if lease_status(st) == LEASE_UNUSED && slot_epoch(s) == 1 {
                // The creator pre-stamps every slot owned-by-home at
                // epoch 1 before anyone registers (fixed-id co-runs never
                // do); that initial state is legitimate.
                continue;
            }
            if lease_status(st) != LEASE_ACTIVE {
                errors.push(format!(
                    "core {core}: owner {owner} lease status {} is not ACTIVE",
                    lease_status(st)
                ));
            } else if lease_epoch(st) != slot_epoch(s) {
                errors.push(format!(
                    "core {core}: slot epoch {} != owner {owner} lease epoch {} (zombie stamp?)",
                    slot_epoch(s),
                    lease_epoch(st)
                ));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// The lease epoch all of `prog`'s slot transitions are stamped with.
    /// Programs that never registered (tests, fixed-id co-runs) fall back
    /// to epoch 1 — the epoch the creator stamped the initial slots with.
    /// Public for fencing diagnostics and wraparound tests.
    pub fn epoch_of(&self, prog: usize) -> u32 {
        lease_epoch(self.lease_state(prog).load(Ordering::Acquire)).max(1)
    }

    /// The epoch a mutation *by this handle on behalf of `prog`* must be
    /// stamped with. When the handle is bound to `prog`, this is the
    /// **latched** registration epoch — never a re-read of the live lease
    /// word, which after a reap/recycle belongs to a successor (stamping
    /// the successor's epoch is exactly the zombie corruption this PR
    /// fences). Unbound handles (fixed-id tests) keep the live read.
    fn stamp_epoch(&self, prog: usize) -> u32 {
        let b = self.bound.load(Ordering::Acquire);
        if b != UNBOUND && bound_prog(b) == prog {
            bound_epoch(b).max(1)
        } else {
            self.epoch_of(prog)
        }
    }

    /// Pre-mutation self-check: when this handle is bound to `prog`, the
    /// live lease must still be ACTIVE at the latched epoch. On mismatch
    /// the handle has been fenced or recycled behind its back — set the
    /// sticky zombie flag and refuse. Ops on *other* programs (shared
    /// test handles) pass through; a zombie handle refuses everything.
    #[inline]
    fn self_check(&self, prog: usize) -> bool {
        if self.zombie.load(Ordering::Acquire) {
            return false;
        }
        let b = self.bound.load(Ordering::Acquire);
        if b == UNBOUND || bound_prog(b) != prog {
            return true;
        }
        let st = self.lease_state(prog).load(Ordering::Acquire);
        if lease_status(st) == LEASE_ACTIVE && lease_epoch(st) == bound_epoch(b) {
            return true;
        }
        self.zombie.store(true, Ordering::Release);
        false
    }

    /// Is the (possibly merely stalled) program expired right now?
    /// Confirmed-dead always counts; with a stall timeout armed, a
    /// heartbeat staler than it counts too even when the pid is alive.
    fn expired_now(&self, prog: usize) -> bool {
        if pid_is_dead(self.lease_pid(prog).load(Ordering::Acquire)) {
            return true;
        }
        let stall_ms = self.stall_timeout_ms.load(Ordering::Relaxed);
        stall_ms != 0
            && monotonic_ms().saturating_sub(self.lease_heartbeat(prog).load(Ordering::Acquire))
                > stall_ms
    }

    fn magic(&self) -> &AtomicU64 {
        // SAFETY: offset 0 is within the mapping and 8-aligned (mmap is
        // page-aligned); shared-memory atomics are the intended use.
        unsafe { &*self.map.ptr.cast::<AtomicU64>() }
    }

    fn u32_at(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= HEADER_BYTES && off.is_multiple_of(4));
        // SAFETY: in-bounds, 4-aligned.
        unsafe { &*self.map.ptr.add(off).cast::<AtomicU32>() }
    }

    fn u64_at(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= self.map.len && off.is_multiple_of(8));
        // SAFETY: in-bounds, 8-aligned (all u64 fields sit at 8-byte
        // multiples from the page-aligned base).
        unsafe { &*self.map.ptr.add(off).cast::<AtomicU64>() }
    }

    fn lease_state(&self, prog: usize) -> &AtomicU64 {
        debug_assert!(prog < self.programs);
        self.u64_at(HEADER_BYTES + prog * LEASE_BYTES)
    }

    fn lease_pid(&self, prog: usize) -> &AtomicU64 {
        debug_assert!(prog < self.programs);
        self.u64_at(HEADER_BYTES + prog * LEASE_BYTES + 8)
    }

    fn lease_heartbeat(&self, prog: usize) -> &AtomicU64 {
        debug_assert!(prog < self.programs);
        self.u64_at(HEADER_BYTES + prog * LEASE_BYTES + 16)
    }

    fn slot(&self, core: usize) -> &AtomicU64 {
        debug_assert!(core < self.cores);
        self.u64_at(HEADER_BYTES + self.programs * LEASE_BYTES + core * 8)
    }

    /// The program's doorbell futex word (pending-reason bits).
    fn doorbell_word(&self, prog: usize) -> &AtomicU32 {
        debug_assert!(prog < self.programs);
        let off =
            HEADER_BYTES + self.programs * LEASE_BYTES + self.cores * 8 + prog * DOORBELL_BYTES;
        debug_assert!(off + 4 <= self.map.len && off.is_multiple_of(4));
        // SAFETY: in-bounds, 4-aligned (the doorbell section sits at an
        // 8-byte multiple from the page-aligned base).
        unsafe { &*self.map.ptr.add(off).cast::<AtomicU32>() }
    }
}

impl std::fmt::Debug for ShmTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmTable")
            .field("cores", &self.cores)
            .field("programs", &self.programs)
            .finish_non_exhaustive()
    }
}

impl CoreTable for ShmTable {
    fn cores(&self) -> usize {
        self.cores
    }

    fn max_programs(&self) -> usize {
        self.programs
    }

    fn home(&self, core: usize) -> usize {
        self.home[core]
    }

    fn current(&self, core: usize) -> Option<usize> {
        match slot_owner(self.slot(core).load(Ordering::Acquire)) {
            FREE => None,
            p => Some(p as usize),
        }
    }

    fn release(&self, core: usize, prog: usize) -> bool {
        if !self.self_check(prog) {
            return false;
        }
        self.slot(core)
            .compare_exchange(
                pack_slot(prog as i32, self.stamp_epoch(prog)),
                FREE_SLOT,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    fn try_acquire_free(&self, core: usize, prog: usize) -> bool {
        if !self.self_check(prog) {
            return false;
        }
        self.slot(core)
            .compare_exchange(
                FREE_SLOT,
                pack_slot(prog as i32, self.stamp_epoch(prog)),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    fn owners(&self) -> Vec<i64> {
        // Bulk read straight off the mapped slots: one acquire load per
        // core, no per-core Option round-trip.
        (0..self.cores)
            .map(|c| i64::from(slot_owner(self.slot(c).load(Ordering::Acquire))))
            .collect()
    }

    fn try_reclaim(&self, core: usize, prog: usize) -> bool {
        if self.home[core] != prog || !self.self_check(prog) {
            return false;
        }
        let mine = pack_slot(prog as i32, self.stamp_epoch(prog));
        let mut cur = self.slot(core).load(Ordering::Acquire);
        loop {
            if slot_owner(cur) == prog as i32 {
                return false;
            }
            match self.slot(core).compare_exchange_weak(
                cur,
                mine,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => {
                    if slot_owner(actual) == prog as i32 {
                        return false;
                    }
                    cur = actual;
                }
            }
        }
    }

    fn heartbeat(&self, prog: usize) {
        // A zombie refreshing "its" heartbeat would keep a successor's (or
        // its own fenced) lease artificially fresh — the self-check is
        // where a resumed coordinator first discovers the fence.
        if !self.self_check(prog) {
            return;
        }
        self.lease_heartbeat(prog).store(monotonic_ms(), Ordering::Release);
    }

    fn mark_dead(&self, prog: usize) {
        if self.zombie.load(Ordering::Acquire) {
            return;
        }
        // Claim a never-used lease first so unregistered (fixed-id) test
        // programs are killable too; a registered lease stays ACTIVE.
        let _ = self.lease_state(prog).compare_exchange(
            pack_lease(0, LEASE_UNUSED),
            pack_lease(1, LEASE_ACTIVE),
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
        self.lease_pid(prog).store(0, Ordering::Release);
        self.lease_heartbeat(prog).store(0, Ordering::Release);
    }

    fn reapable_programs(&self, caller: usize, timeout: Duration) -> Vec<usize> {
        // A fenced zombie holds no reap duties: its view of who is dead
        // is as stale as its lease.
        if self.zombie.load(Ordering::Acquire) {
            return Vec::new();
        }
        let timeout_ms = timeout.as_millis().min(u128::from(u64::MAX)) as u64;
        let now = monotonic_ms();
        (0..self.programs)
            .filter(|&p| {
                if p == caller {
                    return false;
                }
                let st = self.lease_state(p).load(Ordering::Acquire);
                match lease_status(st) {
                    // A crashed reaper's half-done work is resumable.
                    LEASE_FENCED => true,
                    // A registrant killed between claiming REGISTERING and
                    // activating would otherwise leak its lease forever —
                    // no registration pass can claim it, so the reaper
                    // must. Same staleness bar as ACTIVE.
                    LEASE_ACTIVE | LEASE_REGISTERING => {
                        let hb = self.lease_heartbeat(p).load(Ordering::Acquire);
                        now.saturating_sub(hb) > timeout_ms && self.expired_now(p)
                    }
                    _ => false,
                }
            })
            .collect()
    }

    fn fence_expired(&self, prog: usize) -> bool {
        if self.zombie.load(Ordering::Acquire) {
            return false;
        }
        let st = self.lease_state(prog).load(Ordering::Acquire);
        // REGISTERING counts: a registrant killed before activating left a
        // lease only the fence→reap path can recycle. If the registrant is
        // actually alive and about to activate, its REGISTERING→ACTIVE CAS
        // loses against ours and it concedes the slot (see `register`).
        if lease_status(st) != LEASE_ACTIVE && lease_status(st) != LEASE_REGISTERING {
            return false;
        }
        // Re-confirm expiry right before the fence: the staleness scan and
        // this CAS may be far apart under preemption.
        if !self.expired_now(prog) {
            return false;
        }
        self.lease_state(prog)
            .compare_exchange(
                st,
                pack_lease(lease_epoch(st), LEASE_FENCED),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    fn try_reap(&self, core: usize, dead: usize) -> bool {
        if self.zombie.load(Ordering::Acquire) {
            return false;
        }
        let st = self.lease_state(dead).load(Ordering::Acquire);
        if lease_status(st) != LEASE_FENCED {
            return false;
        }
        // The fenced epoch is the only incarnation we may free; a
        // reincarnated program's slots carry a later epoch and the CAS
        // fails harmlessly.
        self.slot(core)
            .compare_exchange(
                pack_slot(dead as i32, lease_epoch(st).max(1)),
                FREE_SLOT,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    fn finish_reap(&self, dead: usize) -> bool {
        if self.zombie.load(Ordering::Acquire) {
            return false;
        }
        let st = self.lease_state(dead).load(Ordering::Acquire);
        if lease_status(st) != LEASE_FENCED {
            return false;
        }
        let e = lease_epoch(st).max(1);
        for c in 0..self.cores {
            let v = self.slot(c).load(Ordering::Acquire);
            if slot_owner(v) == dead as i32 && slot_epoch(v) == e {
                return false; // cores still stranded: reap not finished
            }
        }
        self.lease_state(dead)
            .compare_exchange(
                st,
                pack_lease(lease_epoch(st), LEASE_REAPED),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    fn check_health(&self) -> bool {
        self.validate_header()
    }

    fn submit_ring(&self, prog: usize) -> Option<&SubmitRing> {
        self.rings.get(prog)
    }

    fn ring_doorbell(&self, prog: usize, reason: u32) {
        // Deliberately *not* behind `self_check`: a ring is purely
        // advisory (the woken coordinator re-reads the table before
        // acting), so a zombie's stray ring costs one wasted scan, never
        // corruption — and gating it would let a fenced releaser strand
        // the beneficiary of its last release until the fallback timeout.
        debug_assert!(reason != 0, "a zero-reason ring wakes nobody");
        if prog >= self.programs {
            return;
        }
        let w = self.doorbell_word(prog);
        w.fetch_or(reason, Ordering::AcqRel);
        #[cfg(target_os = "linux")]
        futex_wake(w, 1);
    }

    fn wait_doorbell(&self, prog: usize, timeout: Duration) -> u32 {
        if prog >= self.programs {
            crate::sync::sleep(timeout);
            return 0;
        }
        let w = self.doorbell_word(prog);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // Consume-then-park: a ring landing between this swap and the
            // futex_wait flips the word nonzero, so the FUTEX_WAIT's
            // compare against 0 fails (EAGAIN) and the loop re-reads —
            // the classic futex no-lost-wake protocol.
            let v = w.swap(0, Ordering::AcqRel);
            if v != 0 {
                return v;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|r| !r.is_zero())
            else {
                return 0;
            };
            #[cfg(target_os = "linux")]
            futex_wait(w, 0, remaining);
            // Portable fallback: chunked naps bound the ring-to-wake
            // latency at 1ms instead of the caller's full timeout.
            #[cfg(not(target_os = "linux"))]
            std::thread::sleep(remaining.min(Duration::from_millis(1)));
        }
    }

    fn bind_self(&self, prog: usize) {
        self.bound.store(pack_bound(prog, self.epoch_of(prog)), Ordering::Release);
        self.zombie.store(false, Ordering::Release);
    }

    fn zombie_fenced(&self) -> bool {
        self.zombie.load(Ordering::Acquire)
    }

    fn set_stall_timeout(&self, timeout: Option<Duration>) {
        let ms = timeout.map(|t| t.as_millis().min(u128::from(u64::MAX)) as u64).unwrap_or(0);
        self.stall_timeout_ms.store(ms, Ordering::Release);
    }

    fn try_rearm(&self, prog: usize) -> bool {
        let b = self.bound.load(Ordering::Acquire);
        if b == UNBOUND || bound_prog(b) != prog || !self.zombie.load(Ordering::Acquire) {
            return false;
        }
        let my_epoch = bound_epoch(b);
        let st = self.lease_state(prog).load(Ordering::Acquire);
        if lease_epoch(st) != my_epoch {
            // A successor already recycled the lease under a later epoch:
            // this incarnation is permanently dead. Stay fenced; the
            // caller degrades instead.
            return false;
        }
        // Self-reap: finish (or perform) the reap of our own fenced
        // incarnation. The reap ladder frees slots stamped with exactly
        // `my_epoch`, which is also the only epoch this handle ever
        // stamps — so nothing a concurrent reaper or this handle does can
        // free a successor's cores. Note the raw CAS loop, not the
        // zombie-guarded trait methods: reaping *ourselves* is the one
        // reap duty a zombie keeps.
        if lease_status(st) == LEASE_FENCED {
            for c in 0..self.cores {
                let _ = self.slot(c).compare_exchange(
                    pack_slot(prog as i32, my_epoch.max(1)),
                    FREE_SLOT,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            if self
                .lease_state(prog)
                .compare_exchange(
                    st,
                    pack_lease(my_epoch, LEASE_REAPED),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_err()
            {
                // A concurrent reaper moved the lease meanwhile; retry on
                // the next tick from whatever state it reached.
                return false;
            }
        } else if lease_status(st) != LEASE_REAPED {
            // ACTIVE at our own epoch means the fence call raced a lost
            // heartbeat (no reaper ever fenced us) — rebinding is enough.
            if lease_status(st) == LEASE_ACTIVE {
                self.zombie.store(false, Ordering::Release);
                return true;
            }
            return false;
        }
        // Recycle REAPED → ACTIVE under the next epoch, exactly like
        // `register`'s pass 2, but pinned to our own program id.
        let reaped = pack_lease(my_epoch, LEASE_REAPED);
        let ne = my_epoch.wrapping_add(1).max(1);
        if self
            .lease_state(prog)
            .compare_exchange(
                reaped,
                pack_lease(ne, LEASE_REGISTERING),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return false; // lost the recycle race to a fresh registrant
        }
        self.lease_pid(prog).store(u64::from(std::process::id()), Ordering::Release);
        self.lease_heartbeat(prog).store(monotonic_ms(), Ordering::Release);
        self.rings[prog].reset(u64::from(ne));
        self.doorbell_word(prog).store(0, Ordering::Release);
        self.lease_state(prog).store(pack_lease(ne, LEASE_ACTIVE), Ordering::Release);
        self.u32_at(20).fetch_add(1, Ordering::AcqRel);
        self.bound.store(pack_bound(prog, ne), Ordering::Release);
        self.zombie.store(false, Ordering::Release);
        true
    }
}

/// A [`CoreTable`] that degrades gracefully: every operation goes to the
/// shared [`ShmTable`] until its health check fails (backing file deleted
/// or header corrupted), after which the table flips a sticky `degraded`
/// flag and routes everything to a private [`InProcessTable`] — the
/// program keeps running as plain work-stealing on its home partition
/// instead of panicking or touching poisoned shared memory.
///
/// The health check runs from the coordinator tick
/// ([`CoreTable::check_health`]); the flag is visible in telemetry as the
/// `degraded` gauge.
pub struct FailoverTable {
    primary: Option<Arc<ShmTable>>,
    path: PathBuf,
    fallback: InProcessTable,
    degraded: AtomicBool,
    /// Program ids handed out while degraded from scratch (no primary).
    local_ids: AtomicUsize,
}

impl FailoverTable {
    /// Wraps an open shared table; `path` is re-checked for existence on
    /// every health check.
    pub fn new(primary: Arc<ShmTable>, path: impl Into<PathBuf>) -> Self {
        let fallback = InProcessTable::new(primary.cores(), primary.max_programs());
        FailoverTable {
            primary: Some(primary),
            path: path.into(),
            fallback,
            degraded: AtomicBool::new(false),
            local_ids: AtomicUsize::new(0),
        }
    }

    /// A table that is degraded from the start — used when the shared
    /// table could not be opened at all (persistent open failure) but the
    /// program should still run on its home partition.
    pub fn degraded_from_scratch(path: impl Into<PathBuf>, cores: usize, programs: usize) -> Self {
        FailoverTable {
            primary: None,
            path: path.into(),
            fallback: InProcessTable::new(cores, programs),
            degraded: AtomicBool::new(true),
            local_ids: AtomicUsize::new(0),
        }
    }

    /// Opens the shared table with retry-with-backoff; on persistent
    /// failure returns a table degraded from scratch instead of an error.
    pub fn open_or_degraded(
        path: &Path,
        cores: usize,
        programs: usize,
        attempts: u32,
        backoff: Duration,
    ) -> FailoverTable {
        match ShmTable::open_with_retry(path, cores, programs, attempts, backoff) {
            Ok(t) => FailoverTable::new(Arc::new(t), path),
            Err(_) => FailoverTable::degraded_from_scratch(path, cores, programs),
        }
    }

    /// Registers through the shared table, or locally when degraded.
    pub fn register(&self) -> Result<usize, ShmError> {
        if let (Some(p), false) = (&self.primary, self.degraded.load(Ordering::Acquire)) {
            return p.register();
        }
        let id = self.local_ids.fetch_add(1, Ordering::AcqRel);
        if id >= self.fallback.max_programs() {
            return Err(ShmError::Exhausted);
        }
        Ok(id)
    }

    #[inline]
    fn active(&self) -> &dyn CoreTable {
        match (&self.primary, self.degraded.load(Ordering::Acquire)) {
            (Some(p), false) => &**p,
            _ => &self.fallback,
        }
    }
}

impl std::fmt::Debug for FailoverTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverTable")
            .field("path", &self.path)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CoreTable for FailoverTable {
    fn cores(&self) -> usize {
        self.active().cores()
    }

    fn max_programs(&self) -> usize {
        self.active().max_programs()
    }

    fn home(&self, core: usize) -> usize {
        self.active().home(core)
    }

    fn current(&self, core: usize) -> Option<usize> {
        self.active().current(core)
    }

    fn release(&self, core: usize, prog: usize) -> bool {
        self.active().release(core, prog)
    }

    fn try_acquire_free(&self, core: usize, prog: usize) -> bool {
        self.active().try_acquire_free(core, prog)
    }

    fn try_reclaim(&self, core: usize, prog: usize) -> bool {
        self.active().try_reclaim(core, prog)
    }

    fn owners(&self) -> Vec<i64> {
        self.active().owners()
    }

    fn heartbeat(&self, prog: usize) {
        self.active().heartbeat(prog);
    }

    fn mark_dead(&self, prog: usize) {
        self.active().mark_dead(prog);
    }

    fn reapable_programs(&self, caller: usize, timeout: Duration) -> Vec<usize> {
        self.active().reapable_programs(caller, timeout)
    }

    fn fence_expired(&self, prog: usize) -> bool {
        self.active().fence_expired(prog)
    }

    fn try_reap(&self, core: usize, dead: usize) -> bool {
        self.active().try_reap(core, dead)
    }

    fn finish_reap(&self, dead: usize) -> bool {
        self.active().finish_reap(dead)
    }

    fn check_health(&self) -> bool {
        if self.degraded.load(Ordering::Acquire) {
            return false;
        }
        let healthy = match &self.primary {
            Some(p) => std::fs::metadata(&self.path).is_ok() && p.validate_header(),
            None => false,
        };
        if !healthy {
            // Sticky: once degraded, the shared mapping is never trusted
            // again (it may be mid-corruption).
            self.degraded.store(true, Ordering::Release);
        }
        healthy
    }

    fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    fn submit_ring(&self, prog: usize) -> Option<&dws_deque::SubmitRing> {
        // Degraded: the shared mapping is untrusted, so its rings are too.
        match (&self.primary, self.degraded.load(Ordering::Acquire)) {
            (Some(p), false) => p.submit_ring(prog),
            _ => None,
        }
    }

    fn alloc_ledger(&self) -> Option<&crate::alloc_table::AllocLedger> {
        self.active().alloc_ledger()
    }

    fn ring_doorbell(&self, prog: usize, reason: u32) {
        self.active().ring_doorbell(prog, reason);
    }

    fn wait_doorbell(&self, prog: usize, timeout: Duration) -> u32 {
        // A waiter parked in the primary's futex when degradation flips
        // recovers at its own timeout: wait_doorbell is always called
        // with the fallback-heartbeat bound, never indefinitely.
        self.active().wait_doorbell(prog, timeout)
    }

    fn bind_self(&self, prog: usize) {
        self.active().bind_self(prog);
    }

    fn zombie_fenced(&self) -> bool {
        self.active().zombie_fenced()
    }

    fn try_rearm(&self, prog: usize) -> bool {
        self.active().try_rearm(prog)
    }

    fn set_stall_timeout(&self, timeout: Option<Duration>) {
        self.active().set_stall_timeout(timeout);
    }

    fn degrade_now(&self) {
        // Same sticky flag check_health sets; used when a zombie cannot
        // re-arm its lease (a successor took it) and must retreat to the
        // home partition.
        self.degraded.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_table::reap_expired;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dws-table-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn create_initializes_equipartition() {
        let path = temp_path("init");
        let t = ShmTable::create_or_open(&path, 8, 2).unwrap();
        assert_eq!(t.cores(), 8);
        assert_eq!(t.max_programs(), 2);
        assert_eq!(t.used_by(0), vec![0, 1, 2, 3]);
        assert_eq!(t.used_by(1), vec![4, 5, 6, 7]);
        assert_eq!(t.owners(), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(t.release(2, 0));
        assert_eq!(t.owners()[2], -1, "bulk owners() read sees FREE as -1");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn audit_tracks_the_fencing_lifecycle() {
        let path = temp_path("audit");
        let t = ShmTable::create_or_open(&path, 4, 2).unwrap();
        // Pre-registration initial state (slots at epoch 1, leases
        // UNUSED) is legitimate.
        assert_eq!(t.audit(), Ok(()));
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(t.register().unwrap(), 0);
        assert_eq!(b.register().unwrap(), 1);
        assert_eq!(t.audit(), Ok(()));
        // Mid-reap: fencing b's lease while its slots are still stamped
        // is exactly the transient the audit exists to flag.
        t.mark_dead(1);
        assert!(t.fence_expired(1));
        let errs = t.audit().unwrap_err();
        assert!(errs.iter().any(|m| m.contains("not ACTIVE")), "{errs:?}");
        // Reap both stranded cores and the table settles clean again.
        assert!(t.try_reap(2, 1));
        assert!(t.try_reap(3, 1));
        assert!(t.finish_reap(1));
        assert_eq!(t.audit(), Ok(()));
        // A recycled lease re-stamps its home cores under the new epoch.
        let c = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(c.register().unwrap(), 1);
        assert!(c.try_reclaim(2, 1));
        assert_eq!(t.audit(), Ok(()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn audit_flags_an_out_of_range_owner() {
        let path = temp_path("audit-torn");
        let t = ShmTable::create_or_open(&path, 4, 2).unwrap();
        // A torn/garbage write lands a nonsense owner in a slot word.
        t.slot(1).store(pack_slot(77, 9), Ordering::Release);
        let errs = t.audit().unwrap_err();
        assert!(errs.iter().any(|m| m.contains("out of range")), "{errs:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn killed_mid_registration_lease_is_fenced_and_recycled() {
        let path = temp_path("registering-leak");
        let t = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(t.register().unwrap(), 0);
        // A registrant SIGKILLed between claiming REGISTERING and
        // activating: lease claimed, pid at the dead sentinel, heartbeat
        // never stored. No registration pass can touch such a lease
        // (pass 1 wants UNUSED, pass 2 wants REAPED)...
        t.lease_state(1).store(pack_lease(1, LEASE_REGISTERING), Ordering::Release);
        t.lease_pid(1).store(0, Ordering::Release);
        t.lease_heartbeat(1).store(0, Ordering::Release);
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert!(matches!(b.register(), Err(ShmError::Exhausted)));
        // ...so the reap ladder must: the stale claim is fenceable like
        // any expired ACTIVE lease, and one reaper pass recycles it.
        assert_eq!(t.reapable_programs(0, Duration::ZERO), vec![1]);
        let pass = reap_expired(&t, 0, Duration::ZERO);
        assert_eq!(pass.leases_expired, 1);
        assert_eq!(b.register().unwrap(), 1);
        assert_eq!(b.epoch_of(1), 2, "recycled under a bumped epoch");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn second_open_sees_first_programs_writes() {
        let path = temp_path("share");
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert!(a.release(0, 0));
        // b observes through its own mapping.
        assert_eq!(b.current(0), None);
        assert!(b.try_acquire_free(0, 1));
        assert_eq!(a.current(0), Some(1));
        assert_eq!(a.reclaimable_cores(0), vec![0]);
        assert!(a.try_reclaim(0, 0));
        assert_eq!(b.current(0), Some(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn doorbell_rings_cross_handle_and_ring_before_wait_is_not_lost() {
        let path = temp_path("doorbell");
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        // Rung through one handle (one "process") before the other waits:
        // the pending bits persist in the shared word, so the wait
        // consumes them without parking.
        a.ring_doorbell(1, crate::alloc_table::DOORBELL_RELEASE);
        a.ring_doorbell(1, crate::alloc_table::DOORBELL_SUBMIT);
        assert_eq!(
            b.wait_doorbell(1, Duration::from_secs(5)),
            crate::alloc_table::DOORBELL_RELEASE | crate::alloc_table::DOORBELL_SUBMIT,
            "reasons accumulate and a pre-delivered ring is consumed without parking"
        );
        // Consumed: the next wait times out empty, well under the bound.
        let t0 = std::time::Instant::now();
        assert_eq!(b.wait_doorbell(1, Duration::from_millis(20)), 0);
        assert!(t0.elapsed() < Duration::from_secs(2));
        // Per-program isolation: prog 0's word was never touched.
        assert_eq!(a.wait_doorbell(0, Duration::from_millis(10)), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn doorbell_wakes_a_parked_cross_handle_waiter() {
        let path = temp_path("doorbell-park");
        let a = Arc::new(ShmTable::create_or_open(&path, 4, 2).unwrap());
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        let a2 = Arc::clone(&a);
        let waiter = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            let v = a2.wait_doorbell(0, Duration::from_secs(30));
            (v, t0.elapsed())
        });
        // Give the waiter time to actually park in the futex.
        std::thread::sleep(Duration::from_millis(50));
        b.ring_doorbell(0, crate::alloc_table::DOORBELL_DEMAND);
        let (v, waited) = waiter.join().unwrap();
        assert_eq!(v, crate::alloc_table::DOORBELL_DEMAND);
        assert!(waited < Duration::from_secs(10), "woken by the ring, not the timeout");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lease_recycling_clears_a_stale_doorbell() {
        let path = temp_path("doorbell-recycle");
        let t = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(t.register().unwrap(), 0);
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(b.register().unwrap(), 1);
        // A wake rung for incarnation 1 of prog 1, never consumed...
        t.ring_doorbell(1, crate::alloc_table::DOORBELL_SUBMIT);
        // ...then prog 1 dies and is reaped.
        t.mark_dead(1);
        let pass = reap_expired(&t, 0, Duration::ZERO);
        assert_eq!(pass.leases_expired, 1);
        // The recycled incarnation must not inherit the dead one's wake.
        let c = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(c.register().unwrap(), 1);
        assert_eq!(
            c.wait_doorbell(1, Duration::from_millis(20)),
            0,
            "stale pre-reap ring leaked into the recycled lease"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let path = temp_path("mismatch");
        let _a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        match ShmTable::create_or_open(&path, 8, 2) {
            Err(ShmError::GeometryMismatch { cores, expected_cores, .. }) => {
                assert_eq!((cores, expected_cores), (4, 8));
            }
            other => panic!("expected GeometryMismatch, got {other:?}"),
        }
        // The typed error converts to the io kind callers historically saw.
        let err: io::Error = ShmTable::create_or_open(&path, 8, 2).unwrap_err().into();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_magic_is_rejected_fast() {
        let path = temp_path("garbage");
        std::fs::write(&path, vec![0xAAu8; 1024]).unwrap();
        match ShmTable::create_or_open(&path, 4, 2) {
            Err(ShmError::BadMagic { found }) => assert_eq!(found, 0xAAAA_AAAA_AAAA_AAAA),
            other => panic!("expected BadMagic, got {other:?}"),
        }
        // Fail-fast also under retry: validation errors are not retried.
        let t0 = std::time::Instant::now();
        assert!(matches!(
            ShmTable::open_with_retry(&path, 4, 2, 5, Duration::from_millis(100)),
            Err(ShmError::BadMagic { .. })
        ));
        assert!(t0.elapsed() < Duration::from_millis(100), "no backoff on validation errors");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = temp_path("version");
        drop(ShmTable::create_or_open(&path, 4, 2).unwrap());
        // Patch the version field in place (offset 8), leaving the magic.
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(8)).unwrap();
        f.write_all(&99u32.to_le_bytes()).unwrap();
        drop(f);
        assert!(matches!(
            ShmTable::create_or_open(&path, 4, 2),
            Err(ShmError::VersionMismatch { found: 99 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn registration_hands_out_sequential_ids() {
        let path = temp_path("register");
        let t = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(t.register().unwrap(), 0);
        let t2 = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(t2.register().unwrap(), 1);
        assert!(
            matches!(t.register(), Err(ShmError::Exhausted)),
            "third program rejected with a typed error"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_registration_is_exclusive() {
        // Twice as many threads as leases race to register; exactly
        // `programs` must win, with distinct ids.
        let path = temp_path("register-race");
        let t = Arc::new(ShmTable::create_or_open(&path, 8, 4).unwrap());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.register().ok())
            })
            .collect();
        let mut ids: Vec<usize> = handles
            .into_iter()
            .enumerate()
            .filter_map(|(i, h)| match h.join() {
                Ok(id) => id,
                Err(_) => panic!("registration thread {i} panicked"),
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3], "exactly the 4 leases, each claimed once");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reap_returns_stranded_cores_and_recycles_the_lease() {
        let path = temp_path("reap");
        let t = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(t.register().unwrap(), 0);
        assert_eq!(t.register().unwrap(), 1);
        // Prog 1 grabs a foreign core too, then "dies" holding 3 cores.
        assert!(t.release(0, 0));
        assert!(t.try_acquire_free(0, 1));
        assert_eq!(t.used_by(1), vec![0, 2, 3]);

        // Alive programs are never reapable, however stale the heartbeat:
        // the pid check protects a slow-but-alive owner.
        assert!(t.reapable_programs(0, Duration::ZERO).is_empty());

        t.mark_dead(1);
        assert_eq!(t.reapable_programs(0, Duration::ZERO), vec![1]);
        let pass = reap_expired(&t, 0, Duration::ZERO);
        assert_eq!(pass.leases_expired, 1);
        assert_eq!(pass.cores_reaped, 3);
        assert_eq!(t.used_by(1), Vec::<usize>::new());
        assert_eq!(t.free_cores(), vec![0, 2, 3]);
        // Reap is terminal: nothing further to do.
        assert!(t.reapable_programs(0, Duration::ZERO).is_empty());

        // The lease is recycled under a bumped epoch; the newcomer's
        // transitions work as usual.
        assert_eq!(t.register().unwrap(), 1, "reaped lease recycled");
        assert_eq!(t.epoch_of(1), 2);
        assert!(t.try_acquire_free(2, 1));
        assert!(t.release(2, 1));
        // A stale reaper of the old incarnation can no longer free the
        // new incarnation's cores.
        assert!(t.try_acquire_free(3, 1));
        assert!(!t.try_reap(3, 1), "fence is gone; stale reap must fail");
        assert_eq!(t.current(3), Some(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ring_capacity_mismatch_is_rejected() {
        let path = temp_path("ring-cap");
        let _a = ShmTable::create_or_open_with_rings(&path, 4, 2, 64).unwrap();
        assert!(matches!(
            ShmTable::create_or_open_with_rings(&path, 4, 2, 128),
            Err(ShmError::RingMismatch { found: 64, expected: 128 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn submissions_cross_mappings() {
        let path = temp_path("ring-share");
        let a = ShmTable::create_or_open_with_rings(&path, 4, 2, 8).unwrap();
        let b = ShmTable::create_or_open_with_rings(&path, 4, 2, 8).unwrap();
        assert_eq!(a.ring_capacity(), 8);
        let ring_a = a.submit_ring(1).unwrap();
        let req = dws_deque::Request { req_id: 7, submit_us: 42, demand_us: 5 };
        ring_a.submit(req, ring_a.epoch()).unwrap();
        // The other mapping drains the very same shm-resident ring.
        assert_eq!(b.submit_ring(1).unwrap().pop(), Some(req));
        assert!(a.submit_ring(1).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recycled_lease_fences_stale_ring_clients() {
        let path = temp_path("ring-fence");
        let t = ShmTable::create_or_open_with_rings(&path, 4, 2, 8).unwrap();
        assert_eq!(t.register().unwrap(), 0);
        assert_eq!(t.register().unwrap(), 1);
        let req = dws_deque::Request { req_id: 1, submit_us: 1, demand_us: 1 };
        let ring = t.submit_ring(1).unwrap();
        assert_eq!(ring.epoch(), 1);
        ring.submit(req, 1).unwrap();

        // Prog 1 dies with a request still queued; prog 0 reaps it and a
        // successor recycles the lease.
        t.mark_dead(1);
        let _ = reap_expired(&t, 0, Duration::ZERO);
        assert_eq!(t.register().unwrap(), 1, "reaped lease recycled");
        let ring = t.submit_ring(1).unwrap();
        assert_eq!(ring.epoch(), 2, "ring epoch follows the recycled lease");
        assert!(ring.is_empty(), "the dead incarnation's backlog is discarded");
        assert_eq!(ring.submit(req, 1), Err(dws_deque::SubmitError::Fenced));
        ring.submit(req, 2).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_create_or_open_converges() {
        let path = temp_path("race");
        let p2 = path.clone();
        let h = std::thread::spawn(move || ShmTable::create_or_open(&p2, 4, 2).unwrap());
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        let b = match h.join() {
            Ok(t) => t,
            Err(_) => panic!("concurrent-open thread panicked"),
        };
        // Whichever created it, both see the same initialized state.
        assert_eq!(a.used_by(0), b.used_by(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failover_degrades_on_file_loss_instead_of_panicking() {
        let path = temp_path("failover");
        let shm = Arc::new(ShmTable::create_or_open(&path, 4, 2).unwrap());
        let t = FailoverTable::new(Arc::clone(&shm), &path);
        assert!(t.check_health());
        assert!(!t.degraded());
        // Shared-table ops flow through while healthy.
        assert!(t.release(0, 0));
        assert_eq!(shm.current(0), None);
        assert!(t.submit_ring(0).is_some(), "healthy failover exposes the shm rings");

        std::fs::remove_file(&path).unwrap();
        assert!(!t.check_health());
        assert!(t.degraded());
        assert!(t.submit_ring(0).is_none(), "degraded rings are untrusted");
        // Degraded ops hit the private fallback: core 0 is home-owned
        // again there, so the release succeeds against the fresh state.
        assert!(t.release(0, 0));
        assert_eq!(t.current(0), None);
        assert!(t.try_acquire_free(0, 0));
        // Sticky even if the file reappears.
        drop(ShmTable::create_or_open(&path, 4, 2).unwrap());
        assert!(!t.check_health());
        assert!(t.degraded());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failover_from_scratch_serves_the_home_partition() {
        let t = FailoverTable::degraded_from_scratch("/nonexistent/dws-table", 4, 2);
        assert!(t.degraded());
        assert!(!t.check_health());
        assert_eq!(t.cores(), 4);
        assert_eq!(t.register().unwrap(), 0);
        assert_eq!(t.register().unwrap(), 1);
        assert!(matches!(t.register(), Err(ShmError::Exhausted)));
        assert_eq!(t.used_by(0), vec![0, 1]);
    }

    /// The stale-lease zombie scenario (DESIGN §15): program A is
    /// SIGSTOPped past its lease timeout, B reaps it, A resumes. A's
    /// first mutation must trip the fence and every subsequent mutation
    /// must refuse — and `try_rearm` must bring A back under a fresh
    /// epoch because nobody claimed its lease meanwhile.
    #[test]
    fn zombie_handle_refuses_mutations_and_rearms_its_own_lease() {
        let path = temp_path("zombie-rearm");
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(a.register().unwrap(), 0);
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(b.register().unwrap(), 1);

        // B's view: A died (pid cleared, heartbeat ancient) and is reaped.
        b.mark_dead(0);
        let pass = reap_expired(&b, 1, Duration::ZERO);
        assert_eq!(pass.leases_expired, 1);
        assert_eq!(pass.cores_reaped, 2, "A's home cores returned to the pool");
        assert_eq!(a.current(0), None);

        // A resumes. The first mutation discovers the fence...
        assert!(!a.zombie_fenced(), "fence latches on first touch, not eagerly");
        assert!(!a.release(0, 0));
        assert!(a.zombie_fenced());
        // ...and everything after it refuses without touching shared state.
        assert!(!a.try_acquire_free(0, 0));
        assert!(!a.try_reclaim(0, 0));
        let hb_before = b.lease_heartbeat(0).load(Ordering::Acquire);
        a.heartbeat(0);
        assert_eq!(
            b.lease_heartbeat(0).load(Ordering::Acquire),
            hb_before,
            "a zombie cannot refresh the lease heartbeat"
        );
        assert!(a.reapable_programs(0, Duration::ZERO).is_empty(), "zombies hold no reap duties");

        // The lease is REAPED and unclaimed: re-arm succeeds, epoch bumps.
        assert!(a.try_rearm(0));
        assert!(!a.zombie_fenced());
        assert_eq!(a.epoch_of(0), 2);
        assert!(a.try_acquire_free(0, 0), "re-armed handle mutates again");
        assert_eq!(b.current(0), Some(0), "new-epoch ownership visible to B");
        // And the new incarnation is first-class: B can see its fresh
        // heartbeat instead of the tombstone.
        assert!(!pid_is_dead(b.lease_pid(0).load(Ordering::Acquire)));
        std::fs::remove_file(&path).unwrap();
    }

    /// If a *successor* recycled the zombie's lease before it resumed,
    /// re-arming must fail and the zombie must stay fenced forever — its
    /// epoch-1 CASes can never free or steal the successor's epoch-2
    /// cores.
    #[test]
    fn zombie_cannot_rearm_once_a_successor_recycled_its_lease() {
        let path = temp_path("zombie-successor");
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(a.register().unwrap(), 0);
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(b.register().unwrap(), 1);
        b.mark_dead(0);
        reap_expired(&b, 1, Duration::ZERO);

        // A successor process takes A's recycled lease (both leases are
        // used, so registration must go through the recycle path).
        let c = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(c.register().unwrap(), 0);
        assert_eq!(c.epoch_of(0), 2);
        assert!(c.try_acquire_free(0, 0));

        // The zombie resumes: fenced, and permanently unrecoverable.
        assert!(!a.release(0, 0));
        assert!(a.zombie_fenced());
        assert!(!a.try_rearm(0), "lease now belongs to the successor");
        assert!(a.zombie_fenced(), "still fenced after the failed re-arm");
        assert_eq!(b.current(0), Some(0), "successor's core untouched by the zombie");
        assert_eq!(c.epoch_of(0), 2, "successor's epoch untouched");
        std::fs::remove_file(&path).unwrap();
    }

    /// Stall fencing (opt-in): a live-but-stalled program (pid exists,
    /// heartbeat ancient) is only reapable once a handle arms
    /// `set_stall_timeout` — and the stalled program recovers through the
    /// same zombie → re-arm path as a reaped-while-paused one.
    #[test]
    fn stall_timeout_fences_live_programs_only_when_armed() {
        let path = temp_path("stall-fence");
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(a.register().unwrap(), 0);
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(b.register().unwrap(), 1);

        // A's heartbeat goes ancient but its pid (this process) is alive.
        b.lease_heartbeat(0).store(1, Ordering::Release);
        assert!(
            b.reapable_programs(1, Duration::ZERO).is_empty(),
            "confirmed-dead-only default never fences a live pid"
        );

        b.set_stall_timeout(Some(Duration::from_millis(5)));
        assert_eq!(b.reapable_programs(1, Duration::ZERO), vec![0]);
        let pass = reap_expired(&b, 1, Duration::ZERO);
        assert_eq!((pass.leases_expired, pass.cores_reaped), (1, 2));

        // The stalled program wakes, finds itself fenced, re-arms.
        assert!(!a.try_acquire_free(0, 0));
        assert!(a.zombie_fenced());
        assert!(a.try_rearm(0));
        assert_eq!(a.epoch_of(0), 2);
        // Disarming restores the conservative behavior.
        b.set_stall_timeout(None);
        b.lease_heartbeat(0).store(1, Ordering::Release);
        assert!(b.reapable_programs(1, Duration::ZERO).is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn retry_exhaustion_is_a_typed_timeout_wrapping_the_cause() {
        // A directory can never become a table: every attempt fails with
        // Io, and exhaustion wraps the last one.
        let dir = std::env::temp_dir();
        let t0 = std::time::Instant::now();
        match ShmTable::open_with_retry(&dir, 4, 2, 3, Duration::from_micros(200)) {
            Err(ShmError::Timeout { attempts: 3, last, .. }) => {
                assert!(matches!(*last, ShmError::Io(_)), "root cause preserved: {last:?}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_micros(300), "backoff slept between attempts");
        // And the io::Error conversion classifies it as a timeout.
        let err: io::Error =
            ShmTable::open_with_retry(&dir, 4, 2, 1, Duration::ZERO).unwrap_err().into();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn register_with_retry_waits_out_a_full_table() {
        let path = temp_path("register-retry");
        let a = ShmTable::create_or_open(&path, 4, 1).unwrap();
        assert_eq!(a.register().unwrap(), 0);

        // Fail fast when nothing will free a lease.
        let b = ShmTable::create_or_open(&path, 4, 1).unwrap();
        match b.register_with_retry(Backoff::new(2, Duration::from_micros(100))) {
            Err(ShmError::Timeout { last, .. }) => assert!(matches!(*last, ShmError::Exhausted)),
            other => panic!("expected Timeout(Exhausted), got {other:?}"),
        }

        // A reaper frees the lease mid-retry; the arriving program gets
        // the recycled slot instead of dying at the door.
        let p2 = path.clone();
        let reaper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let c = ShmTable::create_or_open(&p2, 4, 1).unwrap();
            c.mark_dead(0);
            reap_expired(&c, usize::MAX, Duration::ZERO)
        });
        let got = b.register_with_retry(Backoff::new(200, Duration::from_millis(1))).unwrap();
        assert_eq!(got, 0);
        assert_eq!(b.epoch_of(0), 2, "recycled under a bumped epoch");
        let pass = reaper.join().unwrap();
        assert_eq!(pass.leases_expired, 1);
        std::fs::remove_file(&path).unwrap();
    }

    /// A fence that never went through (the reaper fenced nobody — e.g. a
    /// heartbeat hiccup healed) must not strand the handle: `try_rearm`
    /// on a still-ACTIVE own lease just clears the flag.
    #[test]
    fn spurious_zombie_flag_clears_when_lease_is_still_active() {
        let path = temp_path("zombie-spurious");
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(a.register().unwrap(), 0);
        // Force the sticky flag without any lease transition.
        a.zombie.store(true, Ordering::Release);
        assert!(!a.release(0, 0), "flag alone blocks mutation");
        assert!(a.try_rearm(0), "ACTIVE own lease at the latched epoch: rebind suffices");
        assert!(!a.zombie_fenced());
        assert_eq!(a.epoch_of(0), 1, "no epoch bump for a spurious fence");
        assert!(a.release(0, 0));
        std::fs::remove_file(&path).unwrap();
    }
}
