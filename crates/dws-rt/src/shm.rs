//! The `mmap`-backed cross-process core-allocation table (paper §3.4).
//!
//! "The first-launched work-stealing program creates a new file and maps
//! the file into the shared memory using `mmap()` ... all the following
//! programs can easily access the core allocation table using `mmap()`."
//!
//! Layout of the mapped file (all fields little-endian, cache-line
//! alignment is irrelevant at this scale):
//!
//! ```text
//! offset 0   u64  MAGIC (written last by the creator, release order)
//! offset 8   u32  version
//! offset 12  u32  cores (k)
//! offset 16  u32  max programs (m)
//! offset 20  u32  registered-programs counter (atomic fetch_add)
//! offset 24  i32  slot[0] .. slot[k-1]   (-1 = FREE, else program id)
//! ```
//!
//! The creator initializes dimensions and slots (the §3.1 equipartition)
//! and then publishes `MAGIC`; openers spin until the magic appears, so a
//! concurrent create/open race is benign.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, Ordering};

use crate::alloc_table::{equipartition_home, CoreTable, FREE};

const MAGIC: u64 = 0x4457_535F_5441_424C; // "DWS_TABL"
const VERSION: u32 = 1;
const HEADER_BYTES: usize = 24;

struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// The mapping is shared memory accessed exclusively through atomics.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap of exactly len bytes.
        unsafe {
            libc::munmap(self.ptr.cast(), self.len);
        }
    }
}

/// Cross-process core-allocation table over a shared file.
pub struct ShmTable {
    // (fields below; Debug is implemented manually to avoid printing the
    // raw mapping pointer contents)
    map: Mapping,
    home: Vec<usize>,
    cores: usize,
    programs: usize,
}

impl ShmTable {
    /// Creates the table file (or opens it if another program got there
    /// first) and maps it. `cores` and `programs` must match across all
    /// participants; a mismatch with an existing table is an error.
    pub fn create_or_open(path: &Path, cores: usize, programs: usize) -> io::Result<ShmTable> {
        assert!(cores > 0 && cores < 4096, "unreasonable core count");
        assert!(programs > 0 && programs <= cores);
        let len = HEADER_BYTES + cores * 4;

        let cpath = std::ffi::CString::new(path.as_os_str().as_encoded_bytes())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "NUL in path"))?;

        // Try exclusive creation first.
        // SAFETY: plain libc calls with a valid C string.
        let (fd, creator) = unsafe {
            let fd = libc::open(cpath.as_ptr(), libc::O_RDWR | libc::O_CREAT | libc::O_EXCL, 0o600);
            if fd >= 0 {
                (fd, true)
            } else {
                let err = io::Error::last_os_error();
                if err.raw_os_error() != Some(libc::EEXIST) {
                    return Err(err);
                }
                let fd = libc::open(cpath.as_ptr(), libc::O_RDWR);
                if fd < 0 {
                    return Err(io::Error::last_os_error());
                }
                (fd, false)
            }
        };

        // SAFETY: fd is a valid open descriptor; we size and map it.
        let map = unsafe {
            if creator && libc::ftruncate(fd, len as libc::off_t) != 0 {
                let e = io::Error::last_os_error();
                libc::close(fd);
                return Err(e);
            }
            // Wait for a non-creator's file to be sized (creator may still
            // be between open and ftruncate).
            if !creator {
                for _ in 0..10_000 {
                    let mut st: libc::stat = std::mem::zeroed();
                    if libc::fstat(fd, &mut st) == 0 && st.st_size as usize >= len {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            let ptr = libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                fd,
                0,
            );
            libc::close(fd);
            if ptr == libc::MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Mapping { ptr: ptr.cast(), len }
        };

        let table = ShmTable { map, home: equipartition_home(cores, programs), cores, programs };

        if creator {
            table.u32_at(8).store(VERSION, Ordering::Relaxed);
            table.u32_at(12).store(cores as u32, Ordering::Relaxed);
            table.u32_at(16).store(programs as u32, Ordering::Relaxed);
            table.u32_at(20).store(0, Ordering::Relaxed);
            for c in 0..cores {
                table.slot(c).store(table.home[c] as i32, Ordering::Relaxed);
            }
            // Publish.
            table.magic().store(MAGIC, Ordering::Release);
        } else {
            // Spin until the creator publishes, then validate dimensions.
            let mut ok = false;
            for _ in 0..1_000_000 {
                if table.magic().load(Ordering::Acquire) == MAGIC {
                    ok = true;
                    break;
                }
                std::thread::yield_now();
            }
            if !ok {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "shared table never initialized",
                ));
            }
            let (k, m) = (
                table.u32_at(12).load(Ordering::Relaxed) as usize,
                table.u32_at(16).load(Ordering::Relaxed) as usize,
            );
            if k != cores || m != programs {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("table is {k} cores / {m} programs, expected {cores}/{programs}"),
                ));
            }
        }
        Ok(table)
    }

    /// Registers the calling program, returning its program id (creation
    /// order, as in the paper where the first-launched program creates the
    /// table). Errors once `max_programs` registrations have happened.
    pub fn register(&self) -> io::Result<usize> {
        let id = self.u32_at(20).fetch_add(1, Ordering::AcqRel) as usize;
        if id >= self.programs {
            Err(io::Error::new(io::ErrorKind::QuotaExceeded, "all program slots taken"))
        } else {
            Ok(id)
        }
    }

    fn magic(&self) -> &AtomicU64 {
        // SAFETY: offset 0 is within the mapping and 8-aligned (mmap is
        // page-aligned); shared-memory atomics are the intended use.
        unsafe { &*self.map.ptr.cast::<AtomicU64>() }
    }

    fn u32_at(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= HEADER_BYTES && off.is_multiple_of(4));
        // SAFETY: in-bounds, 4-aligned.
        unsafe { &*self.map.ptr.add(off).cast::<AtomicU32>() }
    }

    fn slot(&self, core: usize) -> &AtomicI32 {
        debug_assert!(core < self.cores);
        // SAFETY: in-bounds (len covers HEADER + cores*4), 4-aligned.
        unsafe { &*self.map.ptr.add(HEADER_BYTES + core * 4).cast::<AtomicI32>() }
    }
}

impl std::fmt::Debug for ShmTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmTable")
            .field("cores", &self.cores)
            .field("programs", &self.programs)
            .finish_non_exhaustive()
    }
}

impl CoreTable for ShmTable {
    fn cores(&self) -> usize {
        self.cores
    }

    fn max_programs(&self) -> usize {
        self.programs
    }

    fn home(&self, core: usize) -> usize {
        self.home[core]
    }

    fn current(&self, core: usize) -> Option<usize> {
        match self.slot(core).load(Ordering::Acquire) {
            FREE => None,
            p => Some(p as usize),
        }
    }

    fn release(&self, core: usize, prog: usize) -> bool {
        self.slot(core)
            .compare_exchange(prog as i32, FREE, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    fn try_acquire_free(&self, core: usize, prog: usize) -> bool {
        self.slot(core)
            .compare_exchange(FREE, prog as i32, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    fn owners(&self) -> Vec<i64> {
        // Bulk read straight off the mapped slots: one acquire load per
        // core, no per-core Option round-trip.
        (0..self.cores).map(|c| i64::from(self.slot(c).load(Ordering::Acquire))).collect()
    }

    fn try_reclaim(&self, core: usize, prog: usize) -> bool {
        if self.home[core] != prog {
            return false;
        }
        let mut cur = self.slot(core).load(Ordering::Acquire);
        loop {
            if cur == prog as i32 {
                return false;
            }
            match self.slot(core).compare_exchange_weak(
                cur,
                prog as i32,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => {
                    if actual == prog as i32 {
                        return false;
                    }
                    cur = actual;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dws-table-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn create_initializes_equipartition() {
        let path = temp_path("init");
        let t = ShmTable::create_or_open(&path, 8, 2).unwrap();
        assert_eq!(t.cores(), 8);
        assert_eq!(t.max_programs(), 2);
        assert_eq!(t.used_by(0), vec![0, 1, 2, 3]);
        assert_eq!(t.used_by(1), vec![4, 5, 6, 7]);
        assert_eq!(t.owners(), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(t.release(2, 0));
        assert_eq!(t.owners()[2], -1, "bulk owners() read sees FREE as -1");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn second_open_sees_first_programs_writes() {
        let path = temp_path("share");
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        let b = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert!(a.release(0, 0));
        // b observes through its own mapping.
        assert_eq!(b.current(0), None);
        assert!(b.try_acquire_free(0, 1));
        assert_eq!(a.current(0), Some(1));
        assert_eq!(a.reclaimable_cores(0), vec![0]);
        assert!(a.try_reclaim(0, 0));
        assert_eq!(b.current(0), Some(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let path = temp_path("mismatch");
        let _a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        let err = ShmTable::create_or_open(&path, 8, 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn registration_hands_out_sequential_ids() {
        let path = temp_path("register");
        let t = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(t.register().unwrap(), 0);
        let t2 = ShmTable::create_or_open(&path, 4, 2).unwrap();
        assert_eq!(t2.register().unwrap(), 1);
        assert!(t.register().is_err(), "third program rejected");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_create_or_open_converges() {
        let path = temp_path("race");
        let p2 = path.clone();
        let h = std::thread::spawn(move || ShmTable::create_or_open(&p2, 4, 2).unwrap());
        let a = ShmTable::create_or_open(&path, 4, 2).unwrap();
        let b = h.join().unwrap();
        // Whichever created it, both see the same initialized state.
        assert_eq!(a.used_by(0), b.used_by(0));
        std::fs::remove_file(&path).unwrap();
    }
}
