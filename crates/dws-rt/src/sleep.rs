//! Per-worker sleep/wake machinery.
//!
//! Algorithm 1 line 15-16: a worker "goes to sleep; waits to be woken
//! up". Each worker owns a mutex+condvar pair; the coordinator (or the
//! shutdown path) wakes a *specific* worker — the one affined to the core
//! being granted — matching the paper's "wake up the workers on the
//! correspondence cores".

use std::time::Duration;

use crate::sync::{AtomicBool, Condvar, Mutex, Ordering};

/// Why a sleeping worker resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// A wake was delivered (coordinator grant or shutdown).
    Woken,
    /// The safety timeout elapsed without a wake.
    TimedOut,
}

/// One worker's sleep slot.
#[derive(Debug, Default)]
pub struct Sleeper {
    /// True while the worker is asleep (read by the coordinator to count
    /// `N_a` and pick wake targets without locking).
    sleeping: AtomicBool,
    /// Wake permit: set by `wake`, consumed by the sleeper. Guards against
    /// the wake-before-sleep race (a permit delivered while the worker is
    /// still draining makes the next `sleep` return immediately).
    permit: Mutex<bool>,
    cond: Condvar,
}

impl Sleeper {
    /// Creates a slot in the awake state.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the worker is currently asleep.
    pub fn is_sleeping(&self) -> bool {
        self.sleeping.load(Ordering::Acquire)
    }

    /// Blocks the calling worker until woken or until `timeout` elapses
    /// (if provided). Returns why it resumed.
    pub fn sleep(&self, timeout: Option<Duration>) -> WakeReason {
        let mut permit = self.permit.lock();
        if *permit {
            // A wake raced ahead of us; consume it and do not block.
            *permit = false;
            return WakeReason::Woken;
        }
        self.sleeping.store(true, Ordering::Release);
        let reason = loop {
            match timeout {
                Some(t) => {
                    if self.cond.wait_for(&mut permit, t).timed_out() {
                        break if *permit { WakeReason::Woken } else { WakeReason::TimedOut };
                    }
                }
                None => self.cond.wait(&mut permit),
            }
            if *permit {
                break WakeReason::Woken;
            }
            // Spurious wake-up: sleep again.
        };
        *permit = false;
        self.sleeping.store(false, Ordering::Release);
        reason
    }

    /// As [`Sleeper::sleep`], also measuring how long the call blocked
    /// (for the sleep-duration histogram; a consumed pre-delivered permit
    /// reports a near-zero duration).
    pub fn sleep_timed(&self, timeout: Option<Duration>) -> (WakeReason, Duration) {
        let t0 = std::time::Instant::now();
        let reason = self.sleep(timeout);
        (reason, t0.elapsed())
    }

    /// Delivers a wake permit. Idempotent; safe to call whether or not the
    /// worker is currently asleep.
    pub fn wake(&self) {
        let mut permit = self.permit.lock();
        *permit = true;
        self.cond.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn wake_releases_sleeper() {
        let s = Arc::new(Sleeper::new());
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || s2.sleep(None));
        // Wait until it is actually asleep, then wake.
        while !s.is_sleeping() {
            std::thread::yield_now();
        }
        s.wake();
        assert_eq!(h.join().unwrap(), WakeReason::Woken);
        assert!(!s.is_sleeping());
    }

    #[test]
    fn timeout_fires_without_wake() {
        let s = Sleeper::new();
        let t0 = Instant::now();
        let reason = s.sleep(Some(Duration::from_millis(20)));
        assert_eq!(reason, WakeReason::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn wake_before_sleep_is_not_lost() {
        let s = Sleeper::new();
        s.wake();
        let t0 = Instant::now();
        let reason = s.sleep(Some(Duration::from_secs(5)));
        assert_eq!(reason, WakeReason::Woken);
        assert!(t0.elapsed() < Duration::from_millis(500), "must not block");
    }

    #[test]
    fn repeated_cycles() {
        let s = Arc::new(Sleeper::new());
        for _ in 0..20 {
            let s2 = Arc::clone(&s);
            let h = std::thread::spawn(move || s2.sleep(Some(Duration::from_secs(2))));
            while !s.is_sleeping() {
                std::thread::yield_now();
            }
            s.wake();
            assert_eq!(h.join().unwrap(), WakeReason::Woken);
        }
    }

    #[test]
    fn sleep_timed_reports_duration() {
        let s = Sleeper::new();
        let (reason, dur) = s.sleep_timed(Some(Duration::from_millis(20)));
        assert_eq!(reason, WakeReason::TimedOut);
        assert!(dur >= Duration::from_millis(15));
        s.wake();
        let (reason, dur) = s.sleep_timed(Some(Duration::from_secs(5)));
        assert_eq!(reason, WakeReason::Woken);
        assert!(dur < Duration::from_millis(500));
    }

    #[test]
    fn double_wake_is_idempotent() {
        let s = Sleeper::new();
        s.wake();
        s.wake();
        assert_eq!(s.sleep(Some(Duration::from_secs(1))), WakeReason::Woken);
        // The permit was consumed: the next sleep times out.
        assert_eq!(s.sleep(Some(Duration::from_millis(10))), WakeReason::TimedOut);
    }
}
