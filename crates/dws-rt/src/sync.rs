//! Synchronization shim: real primitives in production, checker-
//! instrumented ones under `--cfg dws_check`.
//!
//! Every atomic, mutex, and condvar the sleep/wake/reclaim protocol
//! touches is imported through this module instead of `std` /
//! `parking_lot` directly. A normal build re-exports the real types, so
//! there is zero overhead. Building with `RUSTFLAGS="--cfg dws_check"`
//! (loom-style) swaps in [`dws_check::sync`], whose primitives are
//! yield points for the deterministic token-passing scheduler — the
//! *production* `Sleeper`, `InProcessTable`, and coordinator logic then
//! run unmodified under exhaustive schedule exploration.
//!
//! [`preempt_point`] additionally marks protocol-critical windows (the
//! gap between a coordinator snapshot and its apply phase, a worker's
//! timeout-legitimize path) where the checker may force a virtual
//! preemption; in production it compiles to nothing.

#[cfg(dws_check)]
pub use dws_check::sync::{
    preempt_point, sleep, yield_now, AtomicBool, AtomicI32, AtomicUsize, Condvar, Mutex,
    MutexGuard, Ordering, WaitTimeoutResult,
};

#[cfg(not(dws_check))]
pub use real::*;

#[cfg(not(dws_check))]
mod real {
    pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    pub use std::sync::atomic::{AtomicBool, AtomicI32, AtomicUsize, Ordering};
    pub use std::thread::{sleep, yield_now};

    /// Marks a protocol-critical window for the checker's forced-
    /// preemption fault injector. A no-op in production builds.
    #[inline(always)]
    pub fn preempt_point(_tag: &str) {}
}
