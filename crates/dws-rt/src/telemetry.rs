//! Live telemetry: a low-overhead time-series sampler over the runtime.
//!
//! PR 1's tracing is post-mortem — rings are dumped after the run ends.
//! This module adds the *while it happens* view: a sampler thread
//! snapshots the per-worker metric shards, the core-allocation table and
//! the coordinator's latest Eq. 1 inputs every [`TelemetryConfig::tick`]
//! (a fixed sampling cadence, deliberately independent of the — possibly
//! adaptive — coordinator period) into a bounded ring of
//! [`TelemetryFrame`]s. Frames yield per-core occupancy
//! timelines (who owns each core over time, reclaims, sleeps) and
//! *rolling* steal/wake/reclaim latency percentiles (percentiles over the
//! samples recorded since the previous frame, not merely cumulative).
//!
//! Exposure paths:
//!
//! * [`render_prometheus`] — Prometheus text exposition format, served by
//!   [`serve`] from a plain `std::net::TcpListener` (no dependencies);
//! * [`frames_to_jsonl`] — one frame per line, the `--telemetry-out`
//!   file-sink format of the harness binaries;
//! * `dws-top` (in `dws-harness`) — a live ANSI terminal view.
//!
//! The frame schema is mirrored field-for-field by `dws_sim::telemetry`,
//! so simulated and real co-runs emit byte-identical JSON for identical
//! content (verified by the `telemetry_mirror` integration test).
//!
//! Overhead budget: sampling is off the hot path entirely — the sampler
//! thread reads the same relaxed atomics the workers write, at 100 Hz.
//! One frame costs one pass over `k` table slots plus `w` shard
//! snapshots; with telemetry disabled no thread is spawned and the only
//! residual cost is the coordinator's per-period decision publish (a
//! handful of relaxed stores every 10 ms).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::metrics::AggregatedHistograms;
use crate::registry::Registry;
use crate::trace::now_us;

/// Owner of one core at sample time (`-1` = free).
pub type CoreOwner = i64;

/// One core's slot in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreSample {
    /// Core index.
    pub core: usize,
    /// Home program under the initial equipartition.
    pub home: usize,
    /// Current owner, or `-1` when free.
    pub owner: CoreOwner,
}

/// One worker's state in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerSample {
    /// Worker index.
    pub worker: usize,
    /// Is the worker asleep right now?
    pub asleep: bool,
    /// Jobs queued in the worker's deque.
    pub queue: usize,
}

/// The coordinator's most recent §3.3 evaluation: Eq. 1 inputs, the plan,
/// and what actually happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoordSample {
    /// Queued jobs observed (`N_b`).
    pub n_b: u64,
    /// Active workers observed (`N_a`).
    pub n_a: u64,
    /// Free cores observed (`N_f`).
    pub n_f: u64,
    /// Reclaimable home cores observed (`N_r`).
    pub n_r: u64,
    /// Eq. 1 wake target (`N_w`, clamped to sleepers).
    pub n_w: u64,
    /// Cores the plan takes from the free pool.
    pub planned_free: u64,
    /// Cores the plan reclaims.
    pub planned_reclaim: u64,
    /// Wakes actually delivered (CAS races can lose grants).
    pub woken: u64,
    /// Total coordinator evaluations so far (monotone).
    pub decisions: u64,
    /// Live `T_SLEEP` knob at decision time (== the configured constant
    /// unless the adaptive controller retuned it, DESIGN §16.2).
    pub knob_t_sleep: u64,
    /// Live coordinator decision period knob, µs.
    pub knob_period_us: u64,
    /// Live steal-batch limit knob.
    pub knob_steal_batch: u64,
}

/// Monotone counters at sample time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSample {
    /// Successful steals.
    pub steals_ok: u64,
    /// Failed steal attempts.
    pub steals_failed: u64,
    /// Jobs executed to completion.
    pub jobs_executed: u64,
    /// Worker sleeps.
    pub sleeps: u64,
    /// Worker wakes.
    pub wakes: u64,
    /// Idle yields.
    pub yields: u64,
    /// Coordinator invocations.
    pub coordinator_runs: u64,
    /// Free cores acquired from the table.
    pub cores_acquired: u64,
    /// Home cores reclaimed from co-runners.
    pub cores_reclaimed: u64,
    /// Cores released to the table on sleep.
    pub cores_released: u64,
    /// Trace events dropped on ring overflow (0 with tracing off).
    pub events_dropped: u64,
    /// Telemetry frames evicted from the frame ring to admit newer ones.
    pub frames_evicted: u64,
    /// Stranded cores reaped back from dead co-runners.
    pub cores_reaped: u64,
    /// Dead-program leases fenced by this runtime's reaper pass.
    pub leases_expired: u64,
    /// 1 when the allocation table has degraded to in-process mode
    /// (shared shm file lost or corrupted), else 0.
    pub degraded: u64,
    /// Tasks moved by successful steals. One batched steal bumps
    /// `steals_ok` once but can move several tasks; the ratio is the
    /// mean steal batch size.
    pub tasks_stolen: u64,
    /// Steal attempts that lost every CAS race against a non-empty deque
    /// (contention, not a work drought — kept out of `steals_failed`).
    pub steals_contended: u64,
    /// External requests admitted from the submission ring (serving mode;
    /// 0 otherwise).
    pub requests_admitted: u64,
    /// External requests dropped on a full submission ring.
    pub requests_dropped: u64,
    /// External requests refused for a stale client epoch.
    pub requests_fenced: u64,
    /// Ring reservations abandoned by the consumer (client died between
    /// reserve and publish).
    pub requests_abandoned: u64,
    /// Times this program found its own lease fenced/recycled (zombie
    /// fencing tripped).
    pub zombies_fenced: u64,
    /// Zombie recoveries: own lease re-armed under a bumped epoch.
    pub leases_rearmed: u64,
    /// Coordinator passes triggered by a doorbell edge instead of the
    /// polling fallback heartbeat (0 with `event_driven` off).
    pub doorbell_wakes: u64,
    /// This program's settled core-µs integral from the allocation ledger
    /// (DESIGN §14): total core time received since the ledger started.
    /// 0 when the table carries no ledger.
    pub core_us_total: u64,
}

/// Rolling latency percentiles in nanoseconds (0 when no new samples
/// arrived since the previous frame — e.g. with tracing disabled, since
/// the latency histograms only fill while tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencySample {
    /// Steal-attempt latency p50 over the last interval.
    pub steal_p50_ns: u64,
    /// Steal-attempt latency p99 over the last interval.
    pub steal_p99_ns: u64,
    /// Sleep duration p50 over the last interval.
    pub sleep_p50_ns: u64,
    /// Sleep duration p99 over the last interval.
    pub sleep_p99_ns: u64,
    /// Wake→first-task p50 over the last interval.
    pub wake_p50_ns: u64,
    /// Wake→first-task p99 over the last interval.
    pub wake_p99_ns: u64,
    /// Steal batch-size p50 over the last interval, as the upper
    /// power-of-two bucket bound (tasks, not ns; 0 when no steals landed
    /// — or, in `dws-rt`, when tracing is off).
    pub batch_p50_tasks: u64,
    /// Steal batch-size p99 over the last interval (tasks, not ns).
    pub batch_p99_tasks: u64,
    /// Task sojourn (spawn→exec-begin) p50 over the last interval.
    pub sojourn_p50_ns: u64,
    /// Task sojourn p99 over the last interval.
    pub sojourn_p99_ns: u64,
    /// Task sojourn p99.9 over the last interval — the straggler tail the
    /// paper's demand-aware wakeups are meant to shorten.
    pub sojourn_p999_ns: u64,
    /// End-to-end request sojourn (client submit→exec-begin) p50 over the
    /// last interval. Fills only in serving mode with tracing on.
    pub request_p50_ns: u64,
    /// Request sojourn p99 over the last interval.
    pub request_p99_ns: u64,
    /// Request sojourn p99.9 over the last interval — the headline
    /// tail-latency number of the serving evaluation.
    pub request_p999_ns: u64,
    /// Demand-satisfaction latency (Eq. 1 demand rise → core grant) p50
    /// over the last interval (DESIGN §14).
    pub alloc_p50_ns: u64,
    /// Demand-satisfaction latency p99 over the last interval.
    pub alloc_p99_ns: u64,
    /// Demand-release latency (demand fall → core released) p50 over the
    /// last interval.
    pub release_p50_ns: u64,
    /// Demand-release latency p99 over the last interval.
    pub release_p99_ns: u64,
}

/// One time-series frame: everything an observer needs to render the
/// instant — core occupancy, worker states, demand/supply, counters and
/// rolling latency percentiles.
///
/// Field order is part of the wire format: `dws_sim::telemetry` declares
/// the identical struct and the two serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryFrame {
    /// Microseconds since the process trace epoch (real time) or the
    /// simulated clock (sim).
    pub t_us: u64,
    /// Emitting program id.
    pub prog: usize,
    /// Frame sequence number (monotone per program).
    pub seq: u64,
    /// Per-core occupancy, one entry per table core.
    pub cores: Vec<CoreSample>,
    /// Per-worker state, one entry per worker.
    pub workers: Vec<WorkerSample>,
    /// Latest coordinator decision.
    pub coord: CoordSample,
    /// Monotone counters.
    pub counters: CounterSample,
    /// Rolling latency percentiles.
    pub latency: LatencySample,
}

impl TelemetryFrame {
    /// Cores currently owned by the emitting program.
    pub fn cores_owned(&self) -> usize {
        self.cores.iter().filter(|c| c.owner == self.prog as i64).count()
    }

    /// Workers currently asleep.
    pub fn workers_asleep(&self) -> usize {
        self.workers.iter().filter(|w| w.asleep).count()
    }

    /// Total queued jobs across worker deques.
    pub fn queued_jobs(&self) -> usize {
        self.workers.iter().map(|w| w.queue).sum()
    }
}

/// The coordinator's published decision: a tiny seqlock'd cell the
/// sampler (and exposition endpoint) read without ever blocking the
/// coordinator.
#[derive(Debug, Default)]
pub(crate) struct DecisionCell {
    seq: AtomicU64,
    n_b: AtomicU64,
    n_a: AtomicU64,
    n_f: AtomicU64,
    n_r: AtomicU64,
    n_w: AtomicU64,
    planned_free: AtomicU64,
    planned_reclaim: AtomicU64,
    woken: AtomicU64,
    decisions: AtomicU64,
    knob_t_sleep: AtomicU64,
    knob_period_us: AtomicU64,
    knob_steal_batch: AtomicU64,
}

impl DecisionCell {
    /// Publishes one decision (coordinator thread only). The odd/even
    /// seqlock keeps readers from observing a half-written decision.
    pub(crate) fn publish(&self, d: CoordSample) {
        self.seq.fetch_add(1, Ordering::AcqRel); // odd: write in progress
        self.n_b.store(d.n_b, Ordering::Relaxed);
        self.n_a.store(d.n_a, Ordering::Relaxed);
        self.n_f.store(d.n_f, Ordering::Relaxed);
        self.n_r.store(d.n_r, Ordering::Relaxed);
        self.n_w.store(d.n_w, Ordering::Relaxed);
        self.planned_free.store(d.planned_free, Ordering::Relaxed);
        self.planned_reclaim.store(d.planned_reclaim, Ordering::Relaxed);
        self.woken.store(d.woken, Ordering::Relaxed);
        self.knob_t_sleep.store(d.knob_t_sleep, Ordering::Relaxed);
        self.knob_period_us.store(d.knob_period_us, Ordering::Relaxed);
        self.knob_steal_batch.store(d.knob_steal_batch, Ordering::Relaxed);
        self.decisions.fetch_add(1, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::AcqRel); // even: published
    }

    /// Reads the latest decision; retries while a publish is in flight.
    pub(crate) fn load(&self) -> CoordSample {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let d = CoordSample {
                n_b: self.n_b.load(Ordering::Relaxed),
                n_a: self.n_a.load(Ordering::Relaxed),
                n_f: self.n_f.load(Ordering::Relaxed),
                n_r: self.n_r.load(Ordering::Relaxed),
                n_w: self.n_w.load(Ordering::Relaxed),
                planned_free: self.planned_free.load(Ordering::Relaxed),
                planned_reclaim: self.planned_reclaim.load(Ordering::Relaxed),
                woken: self.woken.load(Ordering::Relaxed),
                decisions: self.decisions.load(Ordering::Relaxed),
                knob_t_sleep: self.knob_t_sleep.load(Ordering::Relaxed),
                knob_period_us: self.knob_period_us.load(Ordering::Relaxed),
                knob_steal_batch: self.knob_steal_batch.load(Ordering::Relaxed),
            };
            if self.seq.load(Ordering::Acquire) == s1 {
                return d;
            }
        }
    }
}

/// Per-runtime telemetry state: the frame ring plus the coordinator's
/// decision cell. Always present on the registry (a few hundred bytes);
/// the sampler thread only exists when telemetry is enabled.
#[derive(Debug)]
pub(crate) struct TelemetryState {
    /// Latest coordinator decision (written every period).
    pub(crate) decision: DecisionCell,
    /// Bounded ring of recent frames; oldest evicted first.
    frames: Mutex<std::collections::VecDeque<Arc<TelemetryFrame>>>,
    capacity: usize,
    evicted: AtomicU64,
    next_seq: AtomicU64,
}

impl TelemetryState {
    pub(crate) fn new(capacity: usize) -> Self {
        TelemetryState {
            decision: DecisionCell::default(),
            frames: Mutex::new(std::collections::VecDeque::new()),
            capacity: capacity.max(1),
            evicted: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
        }
    }

    fn push(&self, frame: TelemetryFrame) {
        let mut q = self.frames.lock();
        if q.len() >= self.capacity {
            q.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(Arc::new(frame));
    }

    fn latest(&self) -> Option<Arc<TelemetryFrame>> {
        self.frames.lock().back().cloned()
    }

    fn all(&self) -> Vec<Arc<TelemetryFrame>> {
        self.frames.lock().iter().cloned().collect()
    }

    fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// Builds one frame from live registry state. `prev` carries the
/// aggregated histograms of the previous frame for the rolling
/// percentiles; pass `None` for cumulative-since-start.
pub(crate) fn sample_frame(reg: &Registry, prev: Option<&AggregatedHistograms>) -> TelemetryFrame {
    let table = &*reg.table;
    let prog = reg.prog_id;
    let owners = table.owners();
    let cores = owners
        .iter()
        .enumerate()
        .map(|(core, &owner)| CoreSample { core, home: table.home(core), owner })
        .collect();
    let workers = (0..reg.workers.len())
        .map(|w| WorkerSample {
            worker: w,
            asleep: reg.workers[w].sleeper.is_sleeping(),
            queue: reg.workers[w].stealer.len(),
        })
        .collect();
    let snap = reg.metrics.snapshot();
    let trace_dropped = reg.trace.dropped();
    let counters = CounterSample {
        steals_ok: snap.steals_ok,
        steals_failed: snap.steals_failed,
        jobs_executed: snap.jobs_executed,
        sleeps: snap.sleeps,
        wakes: snap.wakes,
        yields: snap.yields,
        coordinator_runs: snap.coordinator_runs,
        cores_acquired: snap.cores_acquired,
        cores_reclaimed: snap.cores_reclaimed,
        cores_released: snap.cores_released,
        events_dropped: trace_dropped,
        frames_evicted: reg.telemetry.evicted(),
        cores_reaped: snap.cores_reaped,
        leases_expired: snap.leases_expired,
        degraded: table.degraded() as u64,
        tasks_stolen: snap.tasks_stolen,
        steals_contended: snap.steals_contended,
        requests_admitted: snap.requests_admitted,
        requests_dropped: snap.requests_dropped,
        requests_fenced: snap.requests_fenced,
        requests_abandoned: snap.requests_abandoned,
        zombies_fenced: snap.zombies_fenced,
        leases_rearmed: snap.leases_rearmed,
        doorbell_wakes: snap.doorbell_wakes,
        core_us_total: table
            .alloc_ledger()
            .map_or(0, |ledger| ledger.snapshot().core_us.get(prog).copied().unwrap_or(0)),
    };
    let hist = reg.metrics.aggregated_histograms();
    let window = match prev {
        Some(p) => AggregatedHistograms {
            steal_latency: hist.steal_latency.saturating_diff(&p.steal_latency),
            sleep_duration: hist.sleep_duration.saturating_diff(&p.sleep_duration),
            wake_to_first_task: hist.wake_to_first_task.saturating_diff(&p.wake_to_first_task),
            steal_batch: hist.steal_batch.saturating_diff(&p.steal_batch),
            task_sojourn: hist.task_sojourn.saturating_diff(&p.task_sojourn),
            request_sojourn: hist.request_sojourn.saturating_diff(&p.request_sojourn),
            alloc_latency: hist.alloc_latency.saturating_diff(&p.alloc_latency),
            release_latency: hist.release_latency.saturating_diff(&p.release_latency),
        },
        None => hist,
    };
    let q = |h: &crate::metrics::HistogramSnapshot, q: f64| h.quantile_ns(q).unwrap_or(0);
    let latency = LatencySample {
        steal_p50_ns: q(&window.steal_latency, 0.5),
        steal_p99_ns: q(&window.steal_latency, 0.99),
        sleep_p50_ns: q(&window.sleep_duration, 0.5),
        sleep_p99_ns: q(&window.sleep_duration, 0.99),
        wake_p50_ns: q(&window.wake_to_first_task, 0.5),
        wake_p99_ns: q(&window.wake_to_first_task, 0.99),
        batch_p50_tasks: q(&window.steal_batch, 0.5),
        batch_p99_tasks: q(&window.steal_batch, 0.99),
        sojourn_p50_ns: q(&window.task_sojourn, 0.5),
        sojourn_p99_ns: q(&window.task_sojourn, 0.99),
        sojourn_p999_ns: q(&window.task_sojourn, 0.999),
        request_p50_ns: q(&window.request_sojourn, 0.5),
        request_p99_ns: q(&window.request_sojourn, 0.99),
        request_p999_ns: q(&window.request_sojourn, 0.999),
        alloc_p50_ns: q(&window.alloc_latency, 0.5),
        alloc_p99_ns: q(&window.alloc_latency, 0.99),
        release_p50_ns: q(&window.release_latency, 0.5),
        release_p99_ns: q(&window.release_latency, 0.99),
    };
    TelemetryFrame {
        t_us: now_us(),
        prog,
        seq: reg.telemetry.next_seq.fetch_add(1, Ordering::Relaxed),
        cores,
        workers,
        coord: reg.telemetry.decision.load(),
        counters,
        latency,
    }
}

/// The sampler thread body: one frame every `tick` until shutdown, plus a
/// final frame so short runs always leave at least one.
pub(crate) fn sampler_loop(reg: Arc<Registry>) {
    let tick = reg.config.telemetry.tick.max(Duration::from_micros(100));
    let chunk = tick.min(Duration::from_millis(50));
    let mut prev: Option<AggregatedHistograms> = None;
    loop {
        let frame = sample_frame(&reg, prev.as_ref());
        prev = Some(reg.metrics.aggregated_histograms());
        reg.telemetry.push(frame);
        if reg.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut slept = Duration::ZERO;
        while slept < tick {
            let step = chunk.min(tick - slept);
            std::thread::sleep(step);
            slept += step;
            if reg.shutdown.load(Ordering::Acquire) {
                // One last frame so the series covers the whole run.
                reg.telemetry.push(sample_frame(&reg, prev.as_ref()));
                return;
            }
        }
    }
}

/// A cloneable, runtime-independent view of one program's telemetry;
/// obtained from [`crate::Runtime::telemetry`]. Handles stay valid after
/// the runtime shuts down (the final frames remain readable).
#[derive(Clone)]
pub struct TelemetryHandle {
    pub(crate) reg: Arc<Registry>,
    pub(crate) label: String,
}

impl TelemetryHandle {
    /// The human label used in exposition (`prog` label value).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Program id in the shared table.
    pub fn program_id(&self) -> usize {
        self.reg.prog_id
    }

    /// The most recent sampled frame, if the sampler has produced any.
    pub fn latest(&self) -> Option<TelemetryFrame> {
        self.reg.telemetry.latest().map(|f| (*f).clone())
    }

    /// Every retained frame, oldest first.
    pub fn frames(&self) -> Vec<TelemetryFrame> {
        self.reg.telemetry.all().iter().map(|f| (**f).clone()).collect()
    }

    /// Samples a frame right now, bypassing the ring (works with the
    /// sampler disabled; percentiles are cumulative-since-start).
    pub fn sample_now(&self) -> TelemetryFrame {
        sample_frame(&self.reg, None)
    }

    /// Latest sampled frame, or a fresh on-demand sample.
    pub fn latest_or_sample(&self) -> TelemetryFrame {
        self.latest().unwrap_or_else(|| self.sample_now())
    }
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle")
            .field("prog", &self.reg.prog_id)
            .field("label", &self.label)
            .finish()
    }
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the text exposition format's three escapes).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes Prometheus HELP text (`\` and newline only — quotes are legal
/// there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The Content-Type of the text exposition format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

struct PromWriter {
    out: String,
}

impl PromWriter {
    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    fn line(&mut self, name: &str, labels: &[(&str, &str)], value: impl std::fmt::Display) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
            }
            self.out.push('}');
        }
        self.out.push_str(&format!(" {value}\n"));
    }
}

/// A metric row in the exposition tables below: name, HELP text, getter.
type CounterMetric = (&'static str, &'static str, fn(&CounterSample) -> u64);
type CoordMetric = (&'static str, &'static str, fn(&CoordSample) -> u64);
/// As above plus the `quantile` label value.
type LatencyMetric = (&'static str, &'static str, fn(&LatencySample) -> u64, &'static str);

/// Renders Prometheus text exposition for one or more programs' latest
/// frames. Every series carries a `prog` label (the handle's display
/// label, escaped); per-core and per-worker gauges add `core` / `worker`
/// labels.
pub fn render_prometheus(frames: &[(String, TelemetryFrame)]) -> String {
    let mut w = PromWriter { out: String::new() };

    let counters: [CounterMetric; 22] = [
        ("dws_steals_ok_total", "Successful steals.", |c| c.steals_ok),
        ("dws_steals_failed_total", "Failed steal attempts.", |c| c.steals_failed),
        (
            "dws_steals_contended_total",
            "Steal attempts that lost every CAS race against a non-empty deque.",
            |c| c.steals_contended,
        ),
        ("dws_tasks_stolen_total", "Tasks moved by successful (possibly batched) steals.", |c| {
            c.tasks_stolen
        }),
        ("dws_jobs_executed_total", "Jobs executed to completion.", |c| c.jobs_executed),
        ("dws_sleeps_total", "Times a worker went to sleep.", |c| c.sleeps),
        ("dws_wakes_total", "Times a worker woke.", |c| c.wakes),
        ("dws_yields_total", "Idle sched_yields.", |c| c.yields),
        ("dws_coordinator_runs_total", "Coordinator invocations.", |c| c.coordinator_runs),
        ("dws_cores_acquired_total", "Free cores acquired from the table.", |c| c.cores_acquired),
        ("dws_cores_reclaimed_total", "Home cores reclaimed from co-runners.", |c| {
            c.cores_reclaimed
        }),
        ("dws_cores_released_total", "Cores released to the table on sleep.", |c| c.cores_released),
        ("dws_events_dropped_total", "Trace events dropped on ring overflow.", |c| {
            c.events_dropped
        }),
        ("dws_cores_reaped_total", "Stranded cores reaped from dead co-runners.", |c| {
            c.cores_reaped
        }),
        ("dws_leases_expired_total", "Dead-program leases fenced by the reaper.", |c| {
            c.leases_expired
        }),
        (
            "dws_requests_admitted_total",
            "External requests admitted from the submission ring.",
            |c| c.requests_admitted,
        ),
        (
            "dws_requests_dropped_total",
            "External requests dropped on a full submission ring.",
            |c| c.requests_dropped,
        ),
        ("dws_requests_fenced_total", "External requests refused for a stale client epoch.", |c| {
            c.requests_fenced
        }),
        (
            "dws_requests_abandoned_total",
            "Ring reservations abandoned by the consumer (client died mid-publish).",
            |c| c.requests_abandoned,
        ),
        (
            "dws_zombies_fenced_total",
            "Times the program found its own lease fenced or recycled.",
            |c| c.zombies_fenced,
        ),
        (
            "dws_leases_rearmed_total",
            "Zombie recoveries: own lease re-armed under a bumped epoch.",
            |c| c.leases_rearmed,
        ),
        (
            "dws_doorbell_wakes_total",
            "Coordinator passes triggered by a doorbell edge instead of the polling heartbeat.",
            |c| c.doorbell_wakes,
        ),
    ];
    for (name, help, get) in counters {
        w.header(name, help, "counter");
        for (label, f) in frames {
            w.line(name, &[("prog", label)], get(&f.counters));
        }
    }

    w.header("dws_frames_evicted_total", "Telemetry frames evicted from the ring.", "counter");
    for (label, f) in frames {
        w.line("dws_frames_evicted_total", &[("prog", label)], f.counters.frames_evicted);
    }

    w.header(
        "dws_core_seconds_total",
        "Core-seconds received by the program per the allocation ledger (DESIGN \u{a7}14).",
        "counter",
    );
    for (label, f) in frames {
        w.line(
            "dws_core_seconds_total",
            &[("prog", label)],
            format!("{:.6}", f.counters.core_us_total as f64 / 1e6),
        );
    }

    // Jain's fairness index across the exported programs' received
    // core-time — one global gauge, not per-prog. Meaningful when the
    // programs share one ledgered table; 1.0 when nothing was measured.
    w.header(
        "dws_fairness_index",
        "Jain's fairness index across exported programs' ledger core-seconds.",
        "gauge",
    );
    let shares: Vec<f64> = frames.iter().map(|(_, f)| f.counters.core_us_total as f64).collect();
    w.line("dws_fairness_index", &[], format!("{:.6}", crate::alloc_table::jain_fairness(&shares)));

    w.header("dws_degraded", "1 when the allocation table fell back to in-process mode.", "gauge");
    for (label, f) in frames {
        w.line("dws_degraded", &[("prog", label)], f.counters.degraded);
    }

    w.header("dws_frame_seq", "Sequence number of the exported frame.", "gauge");
    for (label, f) in frames {
        w.line("dws_frame_seq", &[("prog", label)], f.seq);
    }
    w.header("dws_frame_t_us", "Frame timestamp, µs since the trace epoch.", "gauge");
    for (label, f) in frames {
        w.line("dws_frame_t_us", &[("prog", label)], f.t_us);
    }

    w.header("dws_cores_owned", "Cores currently owned by the program.", "gauge");
    for (label, f) in frames {
        w.line("dws_cores_owned", &[("prog", label)], f.cores_owned());
    }
    w.header("dws_workers_asleep", "Workers currently asleep.", "gauge");
    for (label, f) in frames {
        w.line("dws_workers_asleep", &[("prog", label)], f.workers_asleep());
    }
    w.header("dws_queued_jobs", "Jobs queued across worker deques.", "gauge");
    for (label, f) in frames {
        w.line("dws_queued_jobs", &[("prog", label)], f.queued_jobs());
    }

    w.header(
        "dws_core_owner",
        "Owner program of each table core (-1 = free). Table-global: identical across programs sharing a table.",
        "gauge",
    );
    for (label, f) in frames {
        for c in &f.cores {
            let core = c.core.to_string();
            w.line("dws_core_owner", &[("prog", label), ("core", &core)], c.owner);
        }
    }

    w.header("dws_worker_queue_depth", "Jobs queued in each worker's deque.", "gauge");
    for (label, f) in frames {
        for ws in &f.workers {
            let worker = ws.worker.to_string();
            w.line("dws_worker_queue_depth", &[("prog", label), ("worker", &worker)], ws.queue);
        }
    }
    w.header("dws_worker_asleep", "1 when the worker is asleep.", "gauge");
    for (label, f) in frames {
        for ws in &f.workers {
            let worker = ws.worker.to_string();
            w.line(
                "dws_worker_asleep",
                &[("prog", label), ("worker", &worker)],
                u64::from(ws.asleep),
            );
        }
    }

    let coords: [CoordMetric; 11] = [
        ("dws_coord_n_b", "Queued jobs observed by the coordinator (Eq. 1 N_b).", |c| c.n_b),
        ("dws_coord_n_a", "Active workers observed (Eq. 1 N_a).", |c| c.n_a),
        ("dws_coord_n_f", "Free cores observed (N_f).", |c| c.n_f),
        ("dws_coord_n_r", "Reclaimable home cores observed (N_r).", |c| c.n_r),
        ("dws_coord_n_w", "Eq. 1 wake target (N_w).", |c| c.n_w),
        ("dws_coord_planned_free", "Cores the plan takes from the free pool.", |c| c.planned_free),
        ("dws_coord_planned_reclaim", "Cores the plan reclaims.", |c| c.planned_reclaim),
        ("dws_coord_woken", "Wakes actually delivered by the last decision.", |c| c.woken),
        ("dws_knob_t_sleep", "Live T_SLEEP knob (failed steals before sleep).", |c| c.knob_t_sleep),
        ("dws_knob_period_us", "Live coordinator decision period knob, microseconds.", |c| {
            c.knob_period_us
        }),
        ("dws_knob_steal_batch", "Live steal-batch limit knob.", |c| c.knob_steal_batch),
    ];
    for (name, help, get) in coords {
        w.header(name, help, "gauge");
        for (label, f) in frames {
            w.line(name, &[("prog", label)], get(&f.coord));
        }
    }
    w.header("dws_coord_decisions_total", "Coordinator decisions published.", "counter");
    for (label, f) in frames {
        w.line("dws_coord_decisions_total", &[("prog", label)], f.coord.decisions);
    }

    let lats: [LatencyMetric; 18] = [
        ("dws_steal_latency_ns", "Rolling steal-attempt latency.", |l| l.steal_p50_ns, "0.5"),
        ("dws_steal_latency_ns", "Rolling steal-attempt latency.", |l| l.steal_p99_ns, "0.99"),
        ("dws_sleep_duration_ns", "Rolling sleep duration.", |l| l.sleep_p50_ns, "0.5"),
        ("dws_sleep_duration_ns", "Rolling sleep duration.", |l| l.sleep_p99_ns, "0.99"),
        (
            "dws_wake_to_first_task_ns",
            "Rolling wake-to-first-task latency.",
            |l| l.wake_p50_ns,
            "0.5",
        ),
        (
            "dws_wake_to_first_task_ns",
            "Rolling wake-to-first-task latency.",
            |l| l.wake_p99_ns,
            "0.99",
        ),
        (
            "dws_steal_batch_tasks",
            "Rolling steal batch size (tasks per successful steal, log2 bucket bound).",
            |l| l.batch_p50_tasks,
            "0.5",
        ),
        (
            "dws_steal_batch_tasks",
            "Rolling steal batch size (tasks per successful steal, log2 bucket bound).",
            |l| l.batch_p99_tasks,
            "0.99",
        ),
        (
            "dws_task_sojourn_ns",
            "Rolling task sojourn (spawn to exec-begin).",
            |l| l.sojourn_p50_ns,
            "0.5",
        ),
        (
            "dws_task_sojourn_ns",
            "Rolling task sojourn (spawn to exec-begin).",
            |l| l.sojourn_p99_ns,
            "0.99",
        ),
        (
            "dws_task_sojourn_ns",
            "Rolling task sojourn (spawn to exec-begin).",
            |l| l.sojourn_p999_ns,
            "0.999",
        ),
        (
            "dws_request_sojourn_ns",
            "Rolling end-to-end request sojourn (client submit to exec-begin).",
            |l| l.request_p50_ns,
            "0.5",
        ),
        (
            "dws_request_sojourn_ns",
            "Rolling end-to-end request sojourn (client submit to exec-begin).",
            |l| l.request_p99_ns,
            "0.99",
        ),
        (
            "dws_request_sojourn_ns",
            "Rolling end-to-end request sojourn (client submit to exec-begin).",
            |l| l.request_p999_ns,
            "0.999",
        ),
        (
            "dws_alloc_latency_ns",
            "Rolling demand-satisfaction latency (Eq. 1 demand rise to core grant).",
            |l| l.alloc_p50_ns,
            "0.5",
        ),
        (
            "dws_alloc_latency_ns",
            "Rolling demand-satisfaction latency (Eq. 1 demand rise to core grant).",
            |l| l.alloc_p99_ns,
            "0.99",
        ),
        (
            "dws_release_latency_ns",
            "Rolling demand-release latency (demand fall to core released).",
            |l| l.release_p50_ns,
            "0.5",
        ),
        (
            "dws_release_latency_ns",
            "Rolling demand-release latency (demand fall to core released).",
            |l| l.release_p99_ns,
            "0.99",
        ),
    ];
    let mut last_header = "";
    for (name, help, get, quantile) in lats {
        if name != last_header {
            w.header(name, help, "gauge");
            last_header = name;
        }
        for (label, f) in frames {
            w.line(name, &[("prog", label), ("quantile", quantile)], get(&f.latency));
        }
    }

    w.out
}

/// Serializes frames as JSON Lines, one frame per line (the
/// `--telemetry-out` sink format). Lines parse back as
/// [`TelemetryFrame`]s.
pub fn frames_to_jsonl(frames: &[TelemetryFrame]) -> String {
    let mut out = String::new();
    for f in frames {
        out.push_str(&serde_json::to_string(f).expect("frame serialization"));
        out.push('\n');
    }
    out
}

/// A running exposition endpoint; dropping it stops the server thread.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// The actually-bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

/// Serves the Prometheus text exposition for `handles` from a plain
/// `TcpListener` bound to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
/// port). Every HTTP request, whatever the path, receives the current
/// metrics — each program's latest sampled frame (or an on-demand sample
/// when the sampler is off).
pub fn serve(
    handles: Vec<TelemetryHandle>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("dws-telemetry-http".into())
        .spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                        // Drain (part of) the request; the response does not
                        // depend on it.
                        let mut buf = [0u8; 1024];
                        let _ = stream.read(&mut buf);
                        let body = render_prometheus(
                            &handles
                                .iter()
                                .map(|h| (h.label().to_string(), h.latest_or_sample()))
                                .collect::<Vec<_>>(),
                        );
                        let resp = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: {PROMETHEUS_CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                            body.len()
                        );
                        let _ = stream.write_all(resp.as_bytes());
                        let _ = stream.flush();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })
        .expect("failed to spawn telemetry server thread");
    Ok(TelemetryServer { addr, stop, thread: Some(thread) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_frame(prog: usize, seq: u64) -> TelemetryFrame {
        TelemetryFrame {
            t_us: 1000 + seq,
            prog,
            seq,
            cores: vec![
                CoreSample { core: 0, home: 0, owner: 0 },
                CoreSample { core: 1, home: 1, owner: -1 },
            ],
            workers: vec![
                WorkerSample { worker: 0, asleep: false, queue: 3 },
                WorkerSample { worker: 1, asleep: true, queue: 0 },
            ],
            coord: CoordSample { n_b: 3, n_a: 1, n_f: 1, n_r: 0, n_w: 3, ..Default::default() },
            counters: CounterSample { steals_ok: 5 + seq, ..Default::default() },
            latency: LatencySample { steal_p50_ns: 1024, ..Default::default() },
        }
    }

    #[test]
    fn frame_helpers() {
        let f = tiny_frame(0, 0);
        assert_eq!(f.cores_owned(), 1);
        assert_eq!(f.workers_asleep(), 1);
        assert_eq!(f.queued_jobs(), 3);
    }

    #[test]
    fn frame_jsonl_round_trips() {
        let frames = vec![tiny_frame(0, 0), tiny_frame(1, 1)];
        let text = frames_to_jsonl(&frames);
        assert_eq!(text.lines().count(), 2);
        for (line, original) in text.lines().zip(&frames) {
            let back: TelemetryFrame = serde_json::from_str(line).unwrap();
            assert_eq!(back, *original);
        }
    }

    #[test]
    fn label_escaping_covers_the_three_escapes() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn prometheus_rendering_is_well_formed_and_escaped() {
        let label = "we\"ird\\prog\nname".to_string();
        let text = render_prometheus(&[(label, tiny_frame(0, 7))]);
        // HELP/TYPE precede the first sample of each metric.
        let lines: Vec<&str> = text.lines().collect();
        let idx = lines.iter().position(|l| l.starts_with("dws_steals_ok_total{")).unwrap();
        assert!(lines[..idx].iter().any(|l| l.starts_with("# HELP dws_steals_ok_total ")));
        assert!(lines[..idx].contains(&"# TYPE dws_steals_ok_total counter"));
        // Label value is escaped — no raw newline may survive in a label.
        assert!(text.contains(r#"prog="we\"ird\\prog\nname""#));
        // Every non-comment line is `name{labels} value`.
        for l in lines.iter().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (series, value) = l.rsplit_once(' ').unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {l:?}");
            assert!(series.starts_with("dws_"), "bad series name in {l:?}");
        }
        // Per-core and per-worker series carry their index labels.
        assert!(text.contains(r#"core="1""#));
        assert!(text.contains(r#"worker="1""#));
        assert!(text.contains(r#"quantile="0.99""#));
    }

    /// Every exported sample line has a `# HELP` and `# TYPE` for its
    /// metric name earlier in the exposition — no orphaned series (the
    /// property that once silently failed for new metrics).
    #[test]
    fn prometheus_every_series_has_help_and_type() {
        let text = render_prometheus(&[("p0".into(), tiny_frame(0, 3))]);
        let mut helped: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut typed: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for l in text.lines() {
            if let Some(rest) = l.strip_prefix("# HELP ") {
                helped.insert(rest.split(' ').next().unwrap());
            } else if let Some(rest) = l.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap());
            } else if !l.is_empty() {
                let name = l.split(['{', ' ']).next().unwrap();
                assert!(helped.contains(name), "series {name} has no preceding # HELP");
                assert!(typed.contains(name), "series {name} has no preceding # TYPE");
            }
        }
        // The contended-steal counter and the sojourn percentiles are
        // part of the exposition.
        assert!(text.contains("# TYPE dws_steals_contended_total counter"));
        assert!(text.contains("# TYPE dws_steal_batch_tasks gauge"));
        assert!(text.contains("# TYPE dws_task_sojourn_ns gauge"));
        assert!(text.contains(r#"dws_task_sojourn_ns{prog="p0",quantile="0.999"}"#));
    }

    #[test]
    fn prometheus_counters_are_monotone_across_frames() {
        let f1 = tiny_frame(0, 0);
        let f2 = tiny_frame(0, 1); // steals_ok bumped by seq
        let parse = |text: &str| -> Vec<(String, f64)> {
            text.lines()
                .filter(|l| !l.starts_with('#') && l.contains("_total"))
                .map(|l| {
                    let (series, value) = l.rsplit_once(' ').unwrap();
                    (series.to_string(), value.parse::<f64>().unwrap())
                })
                .collect()
        };
        let a = parse(&render_prometheus(&[("p0".into(), f1)]));
        let b = parse(&render_prometheus(&[("p0".into(), f2)]));
        assert_eq!(a.len(), b.len());
        for ((s1, v1), (s2, v2)) in a.iter().zip(&b) {
            assert_eq!(s1, s2, "series sets must match across snapshots");
            assert!(v2 >= v1, "counter {s1} regressed: {v1} -> {v2}");
        }
    }

    #[test]
    fn decision_cell_round_trips() {
        let cell = DecisionCell::default();
        assert_eq!(cell.load(), CoordSample::default());
        cell.publish(CoordSample { n_b: 9, n_a: 3, n_f: 1, n_r: 2, n_w: 3, ..Default::default() });
        let d = cell.load();
        assert_eq!((d.n_b, d.n_a, d.n_f, d.n_r, d.n_w), (9, 3, 1, 2, 3));
        assert_eq!(d.decisions, 1);
        cell.publish(CoordSample { n_b: 1, ..Default::default() });
        assert_eq!(cell.load().decisions, 2);
    }

    #[test]
    fn telemetry_state_ring_evicts_oldest() {
        let st = TelemetryState::new(2);
        for i in 0..4 {
            st.push(tiny_frame(0, i));
        }
        let frames = st.all();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].seq, 2);
        assert_eq!(frames[1].seq, 3);
        assert_eq!(st.evicted(), 2);
        assert_eq!(st.latest().unwrap().seq, 3);
    }
}
