//! Structured event tracing for the real runtime.
//!
//! Mirrors the simulator's `SchedEvent` vocabulary on real threads: every
//! scheduling-relevant transition (sleep/wake, core acquire/reclaim/
//! release, steal outcomes, coordinator decisions, task boundaries) is
//! recorded as a timestamped [`RtEvent`] into a lock-free bounded
//! [`EventRing`], one per worker plus one shared lane for the coordinator.
//!
//! Design constraints, in order:
//!
//! 1. **Never block the hot path.** Recording is one `fetch_add` plus one
//!    slot write; a full ring counts the event in `dropped` and moves on.
//! 2. **Zero cost when disabled.** With `TraceConfig::enabled == false`
//!    no rings are allocated and [`RtTrace::record`] is a single branch
//!    on an immutable bool (no timestamp is taken).
//! 3. **Shared clock.** All timestamps are microseconds since a
//!    process-wide epoch ([`trace_epoch`]), so co-running runtimes in one
//!    process produce directly comparable (and Chrome-trace mergeable)
//!    timelines.
//!
//! The event stream is also *checkable*: [`ReplayChecker`] replays
//! Acquire/Reclaim/Release events against the allocation-table protocol
//! (at most one owner per core, releases only by the owner, reclaims only
//! of home cores) — the same invariants `dws-sim`'s property tests
//! enforce, now verified on a live run.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Which §3.3 case a coordinator decision fell into (mirrors the
/// simulator's `CoordCase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordCase {
    /// Nothing to do: no demand or nobody asleep.
    NoAction,
    /// `N_w ≤ N_f`: free cores alone cover the demand.
    FreeOnly,
    /// `N_f < N_w ≤ N_f + N_r`: free cores plus reclaimed home cores.
    FreePlusReclaim,
    /// `N_w > N_f + N_r`: demand exceeds supply, take everything legal.
    TakeAllAvailable,
}

/// One scheduling event on the real runtime (the `dws-sim::SchedEvent`
/// vocabulary, with real-thread additions: steal outcomes and task
/// boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RtEvent {
    /// Worker went to sleep; `evicted` when its core was reclaimed out
    /// from under it (§4.2) rather than hitting `T_SLEEP` failures.
    Sleep {
        /// Worker index.
        worker: usize,
        /// True when displaced from a reclaimed core.
        evicted: bool,
    },
    /// Worker resumed (coordinator grant or safety timeout).
    Wake {
        /// Worker index.
        worker: usize,
    },
    /// `Free → Used(prog)` transition succeeded.
    Acquire {
        /// Acquiring program.
        prog: usize,
        /// Core acquired.
        core: usize,
    },
    /// Home core taken back from another program (or from free).
    Reclaim {
        /// Reclaiming (home) program.
        prog: usize,
        /// Core reclaimed.
        core: usize,
    },
    /// `Used(prog) → Free` transition succeeded.
    Release {
        /// Releasing program.
        prog: usize,
        /// Core released.
        core: usize,
    },
    /// A steal attempt landed a job.
    StealOk {
        /// Thief worker index.
        worker: usize,
        /// Victim worker index.
        victim: usize,
    },
    /// A steal attempt found the victim empty (or lost the race).
    StealFail {
        /// Thief worker index.
        worker: usize,
    },
    /// One §3.3 coordinator evaluation (Eq. 1 inputs and outcome).
    CoordinatorDecision {
        /// Queued jobs observed (`N_b`).
        n_b: usize,
        /// Active (awake) workers observed (`N_a`).
        n_a: usize,
        /// Free cores observed (`N_f`).
        n_f: usize,
        /// Reclaimable home cores observed (`N_r`).
        n_r: usize,
        /// Eq. 1 wake target (`N_w`, clamped to sleepers).
        n_w: usize,
        /// Case label.
        case: CoordCase,
    },
    /// A task was spawned: its packed [`dws_deque::TaskId`] was minted by
    /// the spawning worker (or the external lane) — the first event of a
    /// task's lifecycle.
    Spawn {
        /// Packed task identity ([`dws_deque::TaskId::as_u64`]).
        id: u64,
    },
    /// The spawned task entered a queue (the spawner's deque, or the
    /// injector for external submissions).
    Enqueue {
        /// Packed task identity.
        id: u64,
    },
    /// An external request was admitted: the coordinator drained it from
    /// the shm submission ring and enqueued it on the injector. Extends
    /// the lifecycle one hop earlier than [`RtEvent::Spawn`]: `submit_us`
    /// is the client-side submission time, so `ExecBegin − submit_us` is
    /// the end-to-end request sojourn.
    Admit {
        /// Packed task identity minted at admission (external lane).
        id: u64,
        /// Client submit time, µs since the trace epoch.
        submit_us: u64,
    },
    /// A successful batched steal moved `moved` tasks (including the one
    /// popped by the thief) from `victim`'s deque into `worker`'s. The
    /// moved ids are not enumerated — each surfaces at its `ExecBegin`,
    /// whose lane differs from its spawn lane after a migration.
    BatchMoved {
        /// Thief worker index (the batch's new home).
        worker: usize,
        /// Victim worker index.
        victim: usize,
        /// Tasks transferred, ≥ 1.
        moved: usize,
    },
    /// A task began executing. With `id` linked back to its [`RtEvent::Spawn`]
    /// this closes the task's deque-sojourn interval.
    ExecBegin {
        /// Executing worker index.
        worker: usize,
        /// Packed task identity.
        id: u64,
    },
    /// The task finished.
    ExecEnd {
        /// Executing worker index.
        worker: usize,
        /// Packed task identity.
        id: u64,
    },
    /// A program's lease was fenced after its heartbeat went stale and
    /// `kill(pid, 0)` confirmed the process dead (failure model, DESIGN
    /// §10). Emitted by the reaping survivor, not the dead program.
    LeaseExpired {
        /// The dead program whose lease expired.
        prog: usize,
    },
    /// `Used(dead) → Free` forced by a reaper: a stranded core owned by a
    /// fenced (dead) program was returned to the free pool.
    Reap {
        /// The dead program that owned the core.
        prog: usize,
        /// Core returned to the free pool.
        core: usize,
    },
}

impl RtEvent {
    /// Short stable name (JSONL `event` tag, Chrome-trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            RtEvent::Sleep { .. } => "sleep",
            RtEvent::Wake { .. } => "wake",
            RtEvent::Acquire { .. } => "acquire",
            RtEvent::Reclaim { .. } => "reclaim",
            RtEvent::Release { .. } => "release",
            RtEvent::StealOk { .. } => "steal_ok",
            RtEvent::StealFail { .. } => "steal_fail",
            RtEvent::CoordinatorDecision { .. } => "coordinator_decision",
            RtEvent::Spawn { .. } => "spawn",
            RtEvent::Enqueue { .. } => "enqueue",
            RtEvent::Admit { .. } => "admit",
            RtEvent::BatchMoved { .. } => "batch_moved",
            RtEvent::ExecBegin { .. } => "exec_begin",
            RtEvent::ExecEnd { .. } => "exec_end",
            RtEvent::LeaseExpired { .. } => "lease_expired",
            RtEvent::Reap { .. } => "reap",
        }
    }
}

/// Lane number used for events not tied to one worker (coordinator,
/// external threads, the shared table observer).
pub const LANE_SHARED: u32 = u32::MAX;

/// A timestamped event: microseconds since [`trace_epoch`], the emitting
/// lane (worker index, or [`LANE_SHARED`]), and the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Microseconds since the process-wide trace epoch.
    pub t_us: u64,
    /// Emitting lane: worker index, or [`LANE_SHARED`].
    pub lane: u32,
    /// The event.
    pub event: RtEvent,
}

/// The process-wide trace epoch. First caller pins it; all runtimes in
/// the process share it so their timelines align.
pub fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since [`trace_epoch`].
#[inline]
pub fn now_us() -> u64 {
    trace_epoch().elapsed().as_micros() as u64
}

/// One write-once slot of an [`EventRing`].
struct Slot {
    ready: AtomicBool,
    data: UnsafeCell<MaybeUninit<TimedEvent>>,
}

// SAFETY: `data` is written exactly once (by whoever wins the slot index
// from `next`) before `ready` is set with Release; readers only touch
// `data` after observing `ready` with Acquire. `TimedEvent` is `Copy`, so
// reads never race a drop.
unsafe impl Sync for Slot {}

/// A lock-free bounded event buffer: concurrent writers claim distinct
/// slots with one `fetch_add`; once full, further events are counted in
/// [`EventRing::dropped`] and discarded (recording history must never
/// stall the scheduler).
pub struct EventRing {
    slots: Box<[Slot]>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("captured", &self.captured())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventRing {
    /// Creates a ring holding up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an event ring needs at least one slot");
        let slots = (0..capacity)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventRing { slots, next: AtomicUsize::new(0), dropped: AtomicU64::new(0) }
    }

    /// Records one event. Returns false (and counts the drop) when the
    /// ring is full. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, ev: TimedEvent) -> bool {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        if seq >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let slot = &self.slots[seq];
        // SAFETY: `seq` is unique (fetch_add), so this slot is written by
        // exactly one thread, exactly once, before `ready` is published.
        unsafe { (*slot.data.get()).write(ev) };
        slot.ready.store(true, Ordering::Release);
        true
    }

    /// Number of events stored (≤ capacity).
    pub fn captured(&self) -> usize {
        self.next.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Copies out every fully published event, in claim order. Slots
    /// claimed but not yet published by a mid-write thread are skipped —
    /// the snapshot never blocks on writers.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        let n = self.captured();
        let mut out = Vec::with_capacity(n);
        for slot in &self.slots[..n] {
            if slot.ready.load(Ordering::Acquire) {
                // SAFETY: `ready` was set with Release after the write,
                // and slots are write-once, so the data is initialized
                // and stable.
                out.push(unsafe { (*slot.data.get()).assume_init() });
            }
        }
        out
    }
}

/// Per-runtime trace state: one ring per worker plus one shared lane
/// (coordinator / external threads). All lanes share the process epoch.
#[derive(Debug)]
pub struct RtTrace {
    /// Immutable after construction: the zero-cost-when-disabled gate.
    enabled: bool,
    /// `workers + 1` rings; the last is the shared lane. Empty when
    /// disabled (no allocation at all).
    rings: Vec<EventRing>,
}

impl RtTrace {
    /// Builds the trace state for `workers` lanes. When `enabled` is
    /// false nothing is allocated and every record is a cheap no-op.
    pub(crate) fn new(workers: usize, capacity: usize, enabled: bool) -> Self {
        if !enabled {
            return RtTrace { enabled: false, rings: Vec::new() };
        }
        let rings = (0..workers + 1).map(|_| EventRing::new(capacity.max(1))).collect();
        RtTrace { enabled: true, rings }
    }

    /// Is event recording active?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `ev` on a worker lane (`lane < workers`) or the shared
    /// lane (anything else, canonically [`LANE_SHARED`]).
    #[inline]
    pub fn record(&self, lane: u32, ev: RtEvent) {
        if !self.enabled {
            return;
        }
        let idx = (lane as usize).min(self.rings.len() - 1);
        self.rings[idx].record(TimedEvent { t_us: now_us(), lane, event: ev });
    }

    /// Total events dropped across all lanes so far (ring overflow).
    /// Cheap — one relaxed load per lane, no event copying.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(EventRing::dropped).sum()
    }

    /// Merged snapshot of every lane, sorted by timestamp.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut events: Vec<TimedEvent> = self.rings.iter().flat_map(EventRing::snapshot).collect();
        events.sort_by_key(|e| e.t_us);
        let dropped = self.rings.iter().map(EventRing::dropped).sum();
        TraceSnapshot { events, dropped }
    }
}

/// A merged, time-sorted copy of a runtime's event stream.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Events sorted by `t_us`.
    pub events: Vec<TimedEvent>,
    /// Total events dropped across all lanes (ring overflow).
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Events of one kind (by [`RtEvent::name`]).
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.event.name() == name).count()
    }
}

/// Counts from a successful [`ReplayChecker`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Acquire events replayed.
    pub acquires: u64,
    /// Reclaim events replayed.
    pub reclaims: u64,
    /// Release events replayed.
    pub releases: u64,
    /// Reap events replayed (stranded cores freed from dead programs).
    pub reaps: u64,
}

impl ReplayStats {
    /// Total table events replayed.
    pub fn total(&self) -> u64 {
        self.acquires + self.reclaims + self.releases + self.reaps
    }
}

/// A table-protocol violation found while replaying an event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayViolation {
    /// Index of the offending event in the replayed stream.
    pub index: usize,
    /// The offending event.
    pub event: RtEvent,
    /// What was violated.
    pub reason: String,
}

impl std::fmt::Display for ReplayViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event #{} {:?}: {}", self.index, self.event, self.reason)
    }
}

/// Event-sourced allocation-table invariant checker: replays
/// Acquire/Reclaim/Release events against the Table-1 protocol from the
/// initial fully-owned equipartition. Non-table events are ignored, so a
/// full mixed stream can be fed directly.
///
/// Invariants enforced (the ones `dws-sim`'s property tests check on the
/// simulated table):
/// * a core has at most one owner; `Acquire` requires it free;
/// * `Release` only by the current owner (so a release is "monotone":
///   once released, a second release without a re-acquire is illegal);
/// * `Reclaim` only of the reclaimer's home core, never of a core it
///   already owns;
/// * `Reap` only of a core owned by a program previously fenced by
///   `LeaseExpired`, and no table transition by an expired program
///   afterwards (a dead program must stay dead).
#[derive(Debug, Clone)]
pub struct ReplayChecker {
    home: Vec<usize>,
    owner: Vec<Option<usize>>,
    expired: std::collections::HashSet<usize>,
    stats: ReplayStats,
    applied: usize,
}

impl ReplayChecker {
    /// Starts from the initial state: every core owned by its home
    /// program (§3.1 — all home workers awake).
    pub fn new(home: &[usize]) -> Self {
        ReplayChecker {
            home: home.to_vec(),
            owner: home.iter().map(|&p| Some(p)).collect(),
            expired: std::collections::HashSet::new(),
            stats: ReplayStats::default(),
            applied: 0,
        }
    }

    /// Applies one event. Non-table events succeed trivially.
    pub fn apply(&mut self, event: &RtEvent) -> Result<(), ReplayViolation> {
        let index = self.applied;
        self.applied += 1;
        let fail = |reason: String| Err(ReplayViolation { index, event: *event, reason });
        match *event {
            RtEvent::Acquire { prog, core } => {
                if self.expired.contains(&prog) {
                    return fail(format!("acquire of core {core} by expired prog {prog}"));
                }
                let Some(owner) = self.owner.get(core).copied() else {
                    return fail(format!("core {core} out of range"));
                };
                if let Some(cur) = owner {
                    return fail(format!(
                        "acquire of core {core} by prog {prog} while owned by prog {cur}"
                    ));
                }
                self.owner[core] = Some(prog);
                self.stats.acquires += 1;
            }
            RtEvent::Reclaim { prog, core } => {
                if self.expired.contains(&prog) {
                    return fail(format!("reclaim of core {core} by expired prog {prog}"));
                }
                let Some(owner) = self.owner.get(core).copied() else {
                    return fail(format!("core {core} out of range"));
                };
                if self.home[core] != prog {
                    return fail(format!(
                        "reclaim of core {core} by prog {prog}, whose home is prog {}",
                        self.home[core]
                    ));
                }
                if owner == Some(prog) {
                    return fail(format!(
                        "reclaim of core {core} by prog {prog} which already owns it"
                    ));
                }
                self.owner[core] = Some(prog);
                self.stats.reclaims += 1;
            }
            RtEvent::Release { prog, core } => {
                if self.expired.contains(&prog) {
                    return fail(format!("release of core {core} by expired prog {prog}"));
                }
                let Some(owner) = self.owner.get(core).copied() else {
                    return fail(format!("core {core} out of range"));
                };
                if owner != Some(prog) {
                    return fail(match owner {
                        Some(cur) => format!(
                            "release of core {core} by prog {prog} while owned by prog {cur}"
                        ),
                        None => {
                            format!("double release of core {core} by prog {prog} (already free)")
                        }
                    });
                }
                self.owner[core] = None;
                self.stats.releases += 1;
            }
            RtEvent::LeaseExpired { prog } => {
                // Idempotent: several reapers may observe (and re-record)
                // the same expiry; only the first fence CAS wins in the
                // live table, but a TracedTable over a replayed stream may
                // legally repeat the announcement.
                self.expired.insert(prog);
            }
            RtEvent::Reap { prog, core } => {
                if !self.expired.contains(&prog) {
                    return fail(format!(
                        "reap of core {core} from prog {prog} whose lease never expired"
                    ));
                }
                let Some(owner) = self.owner.get(core).copied() else {
                    return fail(format!("core {core} out of range"));
                };
                if owner != Some(prog) {
                    return fail(match owner {
                        Some(cur) => format!(
                            "reap of core {core} from prog {prog} while owned by prog {cur}"
                        ),
                        None => format!("reap of core {core} from prog {prog} but it is free"),
                    });
                }
                self.owner[core] = None;
                self.stats.reaps += 1;
            }
            _ => {}
        }
        Ok(())
    }

    /// Replays a whole stream; first violation wins.
    pub fn replay<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a RtEvent>,
    ) -> Result<ReplayStats, ReplayViolation> {
        for ev in events {
            self.apply(ev)?;
        }
        Ok(self.stats)
    }

    /// Current owner map (diagnostic).
    pub fn owners(&self) -> &[Option<usize>] {
        &self.owner
    }

    /// Stats so far.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(ev: RtEvent) -> TimedEvent {
        TimedEvent { t_us: now_us(), lane: 0, event: ev }
    }

    #[test]
    fn ring_records_in_order_and_caps() {
        let r = EventRing::new(4);
        for i in 0..6 {
            r.record(te(RtEvent::StealFail { worker: i }));
        }
        assert_eq!(r.captured(), 4);
        assert_eq!(r.dropped(), 2);
        let evs = r.snapshot();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[3].event, RtEvent::StealFail { worker: 3 });
    }

    #[test]
    fn disabled_trace_is_inert() {
        let t = RtTrace::new(4, 1024, false);
        t.record(0, RtEvent::Wake { worker: 0 });
        t.record(LANE_SHARED, RtEvent::Wake { worker: 1 });
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn enabled_trace_merges_lanes_sorted() {
        let t = RtTrace::new(2, 64, true);
        t.record(1, RtEvent::ExecBegin { worker: 1, id: 7 });
        t.record(0, RtEvent::ExecBegin { worker: 0, id: 8 });
        t.record(
            LANE_SHARED,
            RtEvent::CoordinatorDecision {
                n_b: 1,
                n_a: 1,
                n_f: 0,
                n_r: 0,
                n_w: 1,
                case: CoordCase::NoAction,
            },
        );
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert!(snap.events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert_eq!(snap.count("exec_begin"), 2);
        assert_eq!(snap.count("coordinator_decision"), 1);
    }

    #[test]
    fn replay_accepts_legal_protocol() {
        // 4 cores, 2 programs, home = [0,0,1,1].
        let home = [0, 0, 1, 1];
        let stream = [
            RtEvent::Release { prog: 0, core: 1 },
            RtEvent::Acquire { prog: 1, core: 1 },
            RtEvent::Release { prog: 1, core: 1 },
            RtEvent::Reclaim { prog: 0, core: 1 }, // reclaim from free
            RtEvent::Release { prog: 0, core: 0 },
            RtEvent::Acquire { prog: 1, core: 0 },
            RtEvent::Reclaim { prog: 0, core: 0 }, // reclaim from user
            RtEvent::ExecBegin { worker: 0, id: 1 }, // ignored
        ];
        let stats = ReplayChecker::new(&home).replay(stream.iter()).unwrap();
        assert_eq!(stats, ReplayStats { acquires: 2, reclaims: 2, releases: 3, reaps: 0 });
        assert_eq!(stats.total(), 7);
    }

    #[test]
    fn replay_accepts_reap_of_expired_program() {
        let home = [0, 0, 1, 1];
        let stream = [
            RtEvent::LeaseExpired { prog: 1 },
            RtEvent::LeaseExpired { prog: 1 }, // repeated announcement is legal
            RtEvent::Reap { prog: 1, core: 2 },
            RtEvent::Reap { prog: 1, core: 3 },
            RtEvent::Acquire { prog: 0, core: 2 }, // survivor picks it up
        ];
        let stats = ReplayChecker::new(&home).replay(stream.iter()).unwrap();
        assert_eq!(stats, ReplayStats { acquires: 1, reclaims: 0, releases: 0, reaps: 2 });
    }

    #[test]
    fn replay_rejects_reap_without_expiry() {
        let home = [0, 1];
        let err = ReplayChecker::new(&home).apply(&RtEvent::Reap { prog: 1, core: 1 }).unwrap_err();
        assert!(err.reason.contains("never expired"));
    }

    #[test]
    fn replay_rejects_reap_of_foreign_or_free_core() {
        let home = [0, 1];
        let mut c = ReplayChecker::new(&home);
        c.apply(&RtEvent::LeaseExpired { prog: 1 }).unwrap();
        let err = c.apply(&RtEvent::Reap { prog: 1, core: 0 }).unwrap_err();
        assert!(err.reason.contains("while owned by prog 0"));
        c.apply(&RtEvent::Reap { prog: 1, core: 1 }).unwrap();
        let err = c.apply(&RtEvent::Reap { prog: 1, core: 1 }).unwrap_err();
        assert!(err.reason.contains("free"));
    }

    #[test]
    fn replay_rejects_transitions_by_expired_program() {
        let home = [0, 1];
        let mut c = ReplayChecker::new(&home);
        c.apply(&RtEvent::LeaseExpired { prog: 1 }).unwrap();
        let err = c.apply(&RtEvent::Release { prog: 1, core: 1 }).unwrap_err();
        assert!(err.reason.contains("expired prog 1"));
        let err = c.apply(&RtEvent::Reclaim { prog: 1, core: 1 }).unwrap_err();
        assert!(err.reason.contains("expired prog 1"));
        c.apply(&RtEvent::Reap { prog: 1, core: 1 }).unwrap();
        let err = c.apply(&RtEvent::Acquire { prog: 1, core: 1 }).unwrap_err();
        assert!(err.reason.contains("expired prog 1"));
    }

    #[test]
    fn replay_rejects_double_owner() {
        let home = [0, 1];
        let stream = [
            RtEvent::Release { prog: 0, core: 0 },
            RtEvent::Acquire { prog: 1, core: 0 },
            RtEvent::Acquire { prog: 0, core: 0 }, // core already owned
        ];
        let err = ReplayChecker::new(&home).replay(stream.iter()).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.reason.contains("while owned"));
    }

    #[test]
    fn replay_rejects_double_release_and_foreign_reclaim() {
        let home = [0, 1];
        let mut c = ReplayChecker::new(&home);
        c.apply(&RtEvent::Release { prog: 0, core: 0 }).unwrap();
        let err = c.apply(&RtEvent::Release { prog: 0, core: 0 }).unwrap_err();
        assert!(err.reason.contains("double release"));

        let mut c = ReplayChecker::new(&home);
        let err = c.apply(&RtEvent::Reclaim { prog: 0, core: 1 }).unwrap_err();
        assert!(err.reason.contains("home"));
    }

    #[test]
    fn replay_rejects_release_by_non_owner() {
        let home = [0, 1];
        let err =
            ReplayChecker::new(&home).apply(&RtEvent::Release { prog: 1, core: 0 }).unwrap_err();
        assert!(err.reason.contains("owned by prog 0"));
    }

    #[test]
    fn concurrent_ring_writers_account_exactly() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(1_000));
        let writers = 4;
        let per = 500; // 2000 total vs 1000 capacity
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let r = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        r.record(te(RtEvent::StealFail { worker: w }));
                    }
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            if h.join().is_err() {
                panic!("ring writer thread {w} panicked");
            }
        }
        assert_eq!(ring.captured() as u64 + ring.dropped(), (writers * per) as u64);
        assert_eq!(ring.snapshot().len(), ring.captured());
    }
}
