//! Deterministic regression tests for the *production* [`dws_rt::Sleeper`]
//! under the dws-check scheduler. These promote the wall-clock races in
//! `sleep.rs`'s unit tests (wake-before-sleep, timeout-vs-wake) to
//! exhaustive / seed-replayable explorations: every interleaving of the
//! permit protocol is driven explicitly instead of waited for.
//!
//! Build with `RUSTFLAGS="--cfg dws_check" cargo test -p dws-rt --test
//! check_sleep` — without the cfg this file compiles to nothing (the real
//! parking_lot primitives cannot participate in the virtual-time
//! scheduler).
#![cfg(dws_check)]

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use dws_check::{explore_dfs, explore_random, CheckOptions, Env, FaultPlan, Outcome, PostCheck};
use dws_rt::{Doorbell, Sleeper, WakeReason, DOORBELL_DEMAND, DOORBELL_RELEASE, DOORBELL_SUBMIT};

/// Spawns the two-thread wake/sleep race from `sleep.rs` and records the
/// sleeper's outcome(s). A first-timeout path re-sleeps once: the permit
/// protocol owes it the wake.
fn sleeper_race(
    env: &Env,
    waker_delay_ns: u64,
    first_timeout_ns: u64,
    outcomes: &Arc<StdMutex<Vec<WakeReason>>>,
) {
    let s = Arc::new(Sleeper::new());
    {
        let s2 = Arc::clone(&s);
        env.spawn("waker", move || {
            if waker_delay_ns > 0 {
                dws_check::sync::sleep(Duration::from_nanos(waker_delay_ns));
            }
            s2.wake();
        });
    }
    let out = Arc::clone(outcomes);
    env.spawn("sleeper", move || {
        let r1 = s.sleep(Some(Duration::from_nanos(first_timeout_ns)));
        out.lock().unwrap().push(r1);
        if r1 == WakeReason::TimedOut {
            let r2 = s.sleep(Some(Duration::from_nanos(500_000)));
            out.lock().unwrap().push(r2);
        }
    });
}

#[test]
fn real_sleeper_wake_before_sleep_is_never_lost() {
    // Immediate waker, generous first timeout: in every schedule the
    // sleeper must see the wake on its first sleep. DFS exhausts the
    // whole space.
    let report = explore_dfs(&CheckOptions::default(), 5_000, |env, _seed| {
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let out = Arc::clone(&outcomes);
        sleeper_race(env, 0, 300_000, &outcomes);
        move |clean: bool| {
            let o = out.lock().unwrap();
            let error = if !clean || o.first() == Some(&WakeReason::Woken) {
                None
            } else {
                Some(format!("wake was lost: sleeper saw {:?}", *o))
            };
            PostCheck { events: Vec::new(), error }
        }
    });
    assert!(matches!(report.outcome, Outcome::Pass), "{:?}", report.failing());
    assert!(report.schedules < 5_000, "schedule space unexpectedly large");
}

#[test]
fn real_sleeper_timeout_vs_wake_resolves_exactly_once() {
    // Short first timeout racing a delayed waker: the sleeper either gets
    // the wake directly or times out and then receives it on the next
    // sleep — never lost, never duplicated. Both paths must be reached.
    let timed_out = Arc::new(StdAtomicUsize::new(0));
    let woken = Arc::new(StdAtomicUsize::new(0));
    let (to2, wo2) = (Arc::clone(&timed_out), Arc::clone(&woken));
    // Delay ≈ timeout so the winner is decided purely by which thread
    // the scheduler runs first — both outcomes live in the space.
    let report = explore_random(&CheckOptions::default(), 0x51EE, 400, move |env, _seed| {
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let out = Arc::clone(&outcomes);
        let (to, wo) = (Arc::clone(&to2), Arc::clone(&wo2));
        sleeper_race(env, 700, 700, &outcomes);
        move |clean: bool| {
            let o = out.lock().unwrap();
            let error = if !clean {
                None
            } else {
                match o.as_slice() {
                    [WakeReason::Woken] => {
                        wo.fetch_add(1, StdOrdering::Relaxed);
                        None
                    }
                    [WakeReason::TimedOut, WakeReason::Woken] => {
                        to.fetch_add(1, StdOrdering::Relaxed);
                        None
                    }
                    other => Some(format!("wake lost or duplicated: {other:?}")),
                }
            };
            PostCheck { events: Vec::new(), error }
        }
    });
    assert!(matches!(report.outcome, Outcome::Pass), "{:?}", report.failing());
    assert!(timed_out.load(StdOrdering::Relaxed) > 0, "timeout path never explored");
    assert!(woken.load(StdOrdering::Relaxed) > 0, "direct-wake path never explored");
}

#[test]
fn real_sleeper_survives_fault_injection() {
    // Delayed and spurious wake delivery must not break the permit
    // protocol: a spurious wake without a permit re-sleeps, a delayed
    // wake still lands (or the 500 µs re-sleep collects it).
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let report = explore_random(&opts, 0xFA57, 300, |env, _seed| {
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let out = Arc::clone(&outcomes);
        sleeper_race(env, 1_000, 2_000, &outcomes);
        move |clean: bool| {
            let o = out.lock().unwrap();
            let error = if !clean || o.last() == Some(&WakeReason::Woken) {
                None
            } else {
                Some(format!("wake lost under faults: sleeper saw {:?}", *o))
            };
            PostCheck { events: Vec::new(), error }
        }
    });
    assert!(matches!(report.outcome, Outcome::Pass), "{:?}", report.failing());
}

#[test]
fn real_doorbell_rings_are_never_lost_and_reasons_accumulate() {
    // Two ringers race one waiter over the *production* Doorbell (the
    // event-driven control plane's wake edge, DESIGN §16). Whatever the
    // interleaving — both rings before the wait, one during, one after a
    // timeout — the waiter must eventually observe BOTH reason bits:
    // the pending word survives until consumed, so the check-then-park
    // window that loses wakes in naive condvar code does not exist.
    // DFS exhausts the whole schedule space.
    let report = explore_dfs(&CheckOptions::default(), 5_000, |env: &Env, _seed| {
        let d = Arc::new(Doorbell::new());
        for (name, reason) in [("ring-release", DOORBELL_RELEASE), ("ring-submit", DOORBELL_SUBMIT)]
        {
            let d2 = Arc::clone(&d);
            env.spawn(name, move || d2.ring(reason));
        }
        let got = Arc::new(StdMutex::new(0u32));
        {
            let (d2, got2) = (Arc::clone(&d), Arc::clone(&got));
            env.spawn("waiter", move || {
                let mut acc = d2.wait(Duration::from_nanos(300_000));
                if acc != DOORBELL_RELEASE | DOORBELL_SUBMIT {
                    // One ring raced past the first wait: the second wait
                    // owes us the other bit.
                    acc |= d2.wait(Duration::from_nanos(300_000));
                }
                *got2.lock().unwrap() = acc;
            });
        }
        move |clean: bool| {
            let acc = *got.lock().unwrap();
            let error = if !clean || acc == DOORBELL_RELEASE | DOORBELL_SUBMIT {
                None
            } else {
                Some(format!("doorbell ring lost: waiter accumulated {acc:#x}"))
            };
            PostCheck { events: Vec::new(), error }
        }
    });
    assert!(matches!(report.outcome, Outcome::Pass), "{:?}", report.failing());
    assert!(report.schedules < 5_000, "schedule space unexpectedly large");
}

#[test]
fn real_doorbell_survives_fault_injection() {
    // Delayed notification delivery and spurious wake-ups must not break
    // the pending-word protocol: a spurious wake with nothing pending
    // re-waits, and a notification delayed past the first timeout still
    // lands because the word itself persists for the next wait.
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let report = explore_random(&opts, 0xBE11, 300, |env: &Env, _seed| {
        let d = Arc::new(Doorbell::new());
        {
            let d2 = Arc::clone(&d);
            env.spawn("ringer", move || {
                dws_check::sync::sleep(Duration::from_nanos(1_000));
                d2.ring(DOORBELL_DEMAND);
            });
        }
        let got = Arc::new(StdMutex::new(0u32));
        {
            let (d2, got2) = (Arc::clone(&d), Arc::clone(&got));
            env.spawn("waiter", move || {
                // Short first wait racing the ring, generous second wait
                // as the fallback heartbeat.
                let mut acc = d2.wait(Duration::from_nanos(2_000));
                if acc == 0 {
                    acc = d2.wait(Duration::from_nanos(500_000));
                }
                *got2.lock().unwrap() = acc;
            });
        }
        move |clean: bool| {
            let acc = *got.lock().unwrap();
            let error = if !clean || acc == DOORBELL_DEMAND {
                None
            } else {
                Some(format!("doorbell ring lost under faults: waiter accumulated {acc:#x}"))
            };
            PostCheck { events: Vec::new(), error }
        }
    });
    assert!(matches!(report.outcome, Outcome::Pass), "{:?}", report.failing());
}

#[test]
fn real_sleeper_double_wake_single_permit() {
    // Two wakers race one sleeper. Whatever the interleaving, the first
    // sleep must be Woken (a permit is never lost), and when both wakes
    // land before it, they collapse into one permit so the second sleep
    // times out. Exhaustive over all waker orderings; both second-sleep
    // outcomes must be reached.
    let timed_out = Arc::new(StdAtomicUsize::new(0));
    let woken = Arc::new(StdAtomicUsize::new(0));
    let (to2, wo2) = (Arc::clone(&timed_out), Arc::clone(&woken));
    let report = explore_dfs(&CheckOptions::default(), 5_000, move |env: &Env, _seed| {
        let s = Arc::new(Sleeper::new());
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        for name in ["waker-a", "waker-b"] {
            let s2 = Arc::clone(&s);
            env.spawn(name, move || s2.wake());
        }
        {
            let out = Arc::clone(&outcomes);
            env.spawn("sleeper", move || {
                let r1 = s.sleep(Some(Duration::from_nanos(400_000)));
                let r2 = s.sleep(Some(Duration::from_nanos(1_000)));
                let mut o = out.lock().unwrap();
                o.push(r1);
                o.push(r2);
            });
        }
        let out = Arc::clone(&outcomes);
        let (to, wo) = (Arc::clone(&to2), Arc::clone(&wo2));
        move |clean: bool| {
            let o = out.lock().unwrap();
            let error = if !clean {
                None
            } else {
                match o.as_slice() {
                    [WakeReason::Woken, r2] => {
                        match r2 {
                            WakeReason::TimedOut => to.fetch_add(1, StdOrdering::Relaxed),
                            WakeReason::Woken => wo.fetch_add(1, StdOrdering::Relaxed),
                        };
                        None
                    }
                    other => Some(format!("first wake was lost: {other:?}")),
                }
            };
            PostCheck { events: Vec::new(), error }
        }
    });
    assert!(matches!(report.outcome, Outcome::Pass), "{:?}", report.failing());
    // Both "wakes collapse into one permit" and "second wake arrives
    // after the first sleep" must appear somewhere in the space.
    assert!(timed_out.load(StdOrdering::Relaxed) > 0, "permit-collapse path never explored");
    assert!(woken.load(StdOrdering::Relaxed) > 0, "late-second-wake path never explored");
}
