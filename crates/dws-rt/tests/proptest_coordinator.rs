//! Property tests for the runtime coordinator's Eq. 1 / §3.3 arithmetic
//! (`eq1_wake_target`, `plan_wakes`), mirroring the simulator's
//! `coordinator_respects_constraints` suite so both implementations are
//! pinned to the same paper semantics. The cross-crate agreement test
//! lives in `tests/protocol_mirror.rs`.

use dws_rt::{eq1_wake_target, plan_wakes};
use proptest::prelude::*;

proptest! {
    /// Eq. 1 is floor division of demand by active workers: the target
    /// `n_w` is the unique integer with `n_w·N_a ≤ N_b < (n_w+1)·N_a`.
    #[test]
    fn eq1_is_floor_division(queued in 0usize..10_000, active in 1usize..64) {
        let n_w = eq1_wake_target(queued, active);
        prop_assert!(n_w * active <= queued);
        prop_assert!(queued < (n_w + 1) * active);
    }

    /// The zero-active guard: with every worker asleep, demand is the
    /// queue length itself (waking at least one worker when work exists).
    #[test]
    fn eq1_zero_active_returns_queue(queued in 0usize..10_000) {
        prop_assert_eq!(eq1_wake_target(queued, 0), queued);
    }

    /// The three §3.3 cases, exhaustively over random demand/supply:
    ///
    /// * `N_w ≤ N_f` — only free cores, exactly `N_w` of them;
    /// * `N_f < N_w ≤ N_f + N_r` — all free plus exactly the shortfall;
    /// * `N_w > N_f + N_r` — everything available and nothing more.
    ///
    /// Never plans beyond the supply (constraint 3: unreleased foreign
    /// cores are untouchable, so they are simply not part of `n_f`/`n_r`).
    #[test]
    fn plan_wakes_respects_the_three_cases(
        n_w in 0usize..64,
        n_f in 0usize..32,
        n_r in 0usize..32,
    ) {
        let (from_free, from_reclaim) = plan_wakes(n_w, n_f, n_r);
        prop_assert!(from_free <= n_f, "plans more free cores than exist");
        prop_assert!(from_reclaim <= n_r, "plans more reclaims than reclaimable");
        // The plan takes exactly min(demand, supply) — cases collapse to
        // this single identity.
        prop_assert_eq!(from_free + from_reclaim, n_w.min(n_f + n_r));
        if n_w <= n_f {
            prop_assert_eq!((from_free, from_reclaim), (n_w, 0), "case 1: free only");
        } else if n_w <= n_f + n_r {
            prop_assert_eq!(
                (from_free, from_reclaim),
                (n_f, n_w - n_f),
                "case 2: all free + shortfall"
            );
        } else {
            prop_assert_eq!(
                (from_free, from_reclaim),
                (n_f, n_r),
                "case 3: take all available"
            );
        }
        // Free cores are always preferred over reclaims.
        if from_reclaim > 0 {
            prop_assert_eq!(from_free, n_f, "reclaimed before exhausting free cores");
        }
    }
}
