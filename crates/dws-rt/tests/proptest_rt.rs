//! Property tests for the runtime: randomly shaped computations executed
//! through `join`/`scope`/`par_*` must agree exactly with a sequential
//! oracle, under every policy.

use std::sync::atomic::{AtomicU64, Ordering};

use dws_rt::{
    join, par_chunks_mut, par_for_each_mut, par_map_reduce, Policy, Runtime, RuntimeConfig,
};
use proptest::prelude::*;

/// A random expression tree: leaves are values, nodes combine children
/// with wrapping arithmetic.
#[derive(Debug, Clone)]
enum Expr {
    Leaf(u64),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = any::<u64>().prop_map(Expr::Leaf);
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_seq(e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => *v,
        Expr::Add(a, b) => eval_seq(a).wrapping_add(eval_seq(b)),
        Expr::Mul(a, b) => eval_seq(a).wrapping_mul(eval_seq(b)),
    }
}

fn eval_par(e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => *v,
        Expr::Add(a, b) => {
            let (x, y) = join(|| eval_par(a), || eval_par(b));
            x.wrapping_add(y)
        }
        Expr::Mul(a, b) => {
            let (x, y) = join(|| eval_par(a), || eval_par(b));
            x.wrapping_mul(y)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fork-join evaluation of any random DAG equals sequential
    /// evaluation, on pools of any policy and size.
    #[test]
    fn join_tree_matches_sequential(
        e in expr_strategy(),
        workers in 1usize..4,
        policy_idx in 0usize..3,
    ) {
        let policy = [Policy::Ws, Policy::Abp, Policy::Ep][policy_idx];
        let pool = Runtime::new(RuntimeConfig::new(workers, policy));
        let expected = eval_seq(&e);
        let got = pool.block_on(|| eval_par(&e));
        prop_assert_eq!(got, expected);
    }

    /// Scoped fan-out writes every slot exactly once, whatever the shape.
    #[test]
    fn scope_fanout_covers_all_slots(
        sizes in proptest::collection::vec(0usize..80, 1..8),
    ) {
        let pool = Runtime::new(RuntimeConfig::new(2, Policy::Ws));
        for &n in &sizes {
            let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.scope(|s| {
                for (i, slot) in slots.iter().enumerate() {
                    s.spawn(move || {
                        slot.fetch_add(i as u64 + 1, Ordering::Relaxed);
                    });
                }
            });
            for (i, slot) in slots.iter().enumerate() {
                prop_assert_eq!(slot.load(Ordering::Relaxed), i as u64 + 1);
            }
        }
    }

    /// par_map_reduce equals the sequential fold for any data and grain.
    #[test]
    fn map_reduce_matches_fold(
        data in proptest::collection::vec(any::<u32>(), 0..2_000),
        grain in 1usize..512,
    ) {
        let pool = Runtime::new(RuntimeConfig::new(2, Policy::Ws));
        let expected = data
            .iter()
            .fold(0u64, |acc, &x| acc.wrapping_add(x as u64).rotate_left(1));
        // rotate_left makes the fold order-sensitive — so use a plain sum
        // for the parallel comparison (reduce must be associative).
        let expected_sum: u64 = data.iter().map(|&x| x as u64).sum();
        let got = pool.block_on(|| {
            par_map_reduce(&data, grain, 0u64, |&x| x as u64, |a, b| a + b)
        });
        prop_assert_eq!(got, expected_sum);
        let _ = expected;
    }

    /// par_for_each_mut touches every element exactly once.
    #[test]
    fn for_each_mut_is_a_permutation_free_map(
        len in 0usize..3_000,
        grain in 1usize..256,
    ) {
        let pool = Runtime::new(RuntimeConfig::new(2, Policy::Ws));
        let mut v: Vec<u64> = (0..len as u64).collect();
        pool.block_on(|| par_for_each_mut(&mut v, grain, |x| *x = x.wrapping_mul(3) + 1));
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(x, (i as u64).wrapping_mul(3) + 1);
        }
    }

    /// par_chunks_mut partitions exactly: every index visited once with
    /// its correct offset.
    #[test]
    fn chunks_mut_partitions_exactly(
        len in 0usize..3_000,
        chunk in 1usize..300,
    ) {
        let pool = Runtime::new(RuntimeConfig::new(2, Policy::Ws));
        let mut v = vec![u64::MAX; len];
        pool.block_on(|| {
            par_chunks_mut(&mut v, chunk, |offset, slice| {
                for (k, x) in slice.iter_mut().enumerate() {
                    *x = (offset + k) as u64;
                }
            })
        });
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(x, i as u64);
        }
    }
}
