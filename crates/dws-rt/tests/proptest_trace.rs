//! Property and stress tests for the trace event ring: no loss below
//! capacity, exact drop accounting under concurrent writers, and
//! serialization round-trips for the event model.

use std::sync::Arc;

use dws_rt::trace::{CoordCase, EventRing, ReplayChecker, RtEvent, TimedEvent};
use proptest::prelude::*;

/// Any event, with small worker/core/program indices.
fn arb_event() -> impl Strategy<Value = RtEvent> {
    prop_oneof![
        (0usize..8, any::<bool>()).prop_map(|(worker, evicted)| RtEvent::Sleep { worker, evicted }),
        (0usize..8).prop_map(|worker| RtEvent::Wake { worker }),
        (0usize..4, 0usize..8).prop_map(|(prog, core)| RtEvent::Acquire { prog, core }),
        (0usize..4, 0usize..8).prop_map(|(prog, core)| RtEvent::Reclaim { prog, core }),
        (0usize..4, 0usize..8).prop_map(|(prog, core)| RtEvent::Release { prog, core }),
        (0usize..8, 0usize..8).prop_map(|(worker, victim)| RtEvent::StealOk { worker, victim }),
        (0usize..8).prop_map(|worker| RtEvent::StealFail { worker }),
        (0usize..64, 0usize..16, 0usize..16).prop_map(|(n_b, n_a, n_f)| {
            RtEvent::CoordinatorDecision {
                n_b,
                n_a,
                n_f,
                n_r: n_a.min(3),
                n_w: n_b.min(7),
                case: match n_b % 4 {
                    0 => CoordCase::NoAction,
                    1 => CoordCase::FreeOnly,
                    2 => CoordCase::FreePlusReclaim,
                    _ => CoordCase::TakeAllAvailable,
                },
            }
        }),
        (0usize..8, 0u64..1 << 20).prop_map(|(worker, id)| RtEvent::ExecBegin { worker, id }),
        (0usize..8, 0u64..1 << 20).prop_map(|(worker, id)| RtEvent::ExecEnd { worker, id }),
        (0u64..1 << 20).prop_map(|id| RtEvent::Spawn { id }),
        (0u64..1 << 20).prop_map(|id| RtEvent::Enqueue { id }),
    ]
}

fn timed(seq: u64, ev: RtEvent) -> TimedEvent {
    TimedEvent { t_us: seq, lane: 0, event: ev }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A ring at least as large as the stream loses nothing and keeps
    /// claim order.
    #[test]
    fn ring_loses_nothing_below_capacity(
        events in proptest::collection::vec(arb_event(), 1..200),
        headroom in 0usize..16,
    ) {
        let ring = EventRing::new(events.len() + headroom);
        for (i, ev) in events.iter().enumerate() {
            prop_assert!(ring.record(timed(i as u64, *ev)));
        }
        prop_assert_eq!(ring.captured(), events.len());
        prop_assert_eq!(ring.dropped(), 0);
        let stored = ring.snapshot();
        prop_assert_eq!(stored.len(), events.len());
        for (i, (got, want)) in stored.iter().zip(&events).enumerate() {
            prop_assert_eq!(got.event, *want, "event {} reordered", i);
            prop_assert_eq!(got.t_us, i as u64);
        }
    }

    /// Overfilling drops exactly the excess, never blocks, and keeps the
    /// first `capacity` events.
    #[test]
    fn ring_drops_exactly_the_excess(
        capacity in 1usize..64,
        excess in 1usize..64,
    ) {
        let ring = EventRing::new(capacity);
        let total = capacity + excess;
        for i in 0..total {
            let accepted = ring.record(timed(i as u64, RtEvent::StealFail { worker: i }));
            prop_assert_eq!(accepted, i < capacity);
        }
        prop_assert_eq!(ring.captured(), capacity);
        prop_assert_eq!(ring.dropped(), excess as u64);
        let stored = ring.snapshot();
        prop_assert_eq!(stored.len(), capacity);
        prop_assert_eq!(stored.last().unwrap().t_us, capacity as u64 - 1);
    }

    /// Concurrent writers: captured + dropped always equals the number of
    /// attempts, and the snapshot never exposes an unpublished slot.
    #[test]
    fn ring_accounts_exactly_under_concurrent_writers(
        writers in 1usize..5,
        per_writer in 1usize..250,
        capacity in 1usize..300,
    ) {
        let ring = Arc::new(EventRing::new(capacity));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        ring.record(timed(i as u64, RtEvent::StealOk { worker: w, victim: i % 4 }));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (writers * per_writer) as u64;
        prop_assert_eq!(ring.captured() as u64 + ring.dropped(), total);
        prop_assert_eq!(ring.captured(), capacity.min(writers * per_writer));
        prop_assert_eq!(ring.snapshot().len(), ring.captured());
    }

    /// Every event shape round-trips through the JSONL representation.
    #[test]
    fn timed_events_round_trip_through_json(
        events in proptest::collection::vec(arb_event(), 1..50),
        lane in 0u32..9,
    ) {
        for (i, ev) in events.iter().enumerate() {
            let original = TimedEvent { t_us: i as u64, lane, event: *ev };
            let text = serde_json::to_string(&original).unwrap();
            let back: TimedEvent = serde_json::from_str(&text).unwrap();
            prop_assert_eq!(back, original);
        }
    }

    /// Replaying a stream that was legal stays legal after a
    /// serialization round-trip (the exporters preserve protocol
    /// semantics, not just field values).
    #[test]
    fn replay_verdict_survives_round_trip(
        cores in 2usize..6,
        steps in proptest::collection::vec((0usize..6, 0usize..2), 0..120),
    ) {
        // Generate a legal stream by simulating the protocol directly.
        let home: Vec<usize> = (0..cores).map(|c| c * 2 / cores).collect();
        let mut owner: Vec<Option<usize>> = home.iter().map(|&p| Some(p)).collect();
        let mut stream = Vec::new();
        for &(core_pick, prog) in &steps {
            let core = core_pick % cores;
            match owner[core] {
                Some(cur) if cur == prog => {
                    owner[core] = None;
                    stream.push(RtEvent::Release { prog, core });
                }
                Some(_) if home[core] == prog => {
                    owner[core] = Some(prog);
                    stream.push(RtEvent::Reclaim { prog, core });
                }
                None => {
                    owner[core] = Some(prog);
                    stream.push(RtEvent::Acquire { prog, core });
                }
                _ => {}
            }
        }
        let mut checker = ReplayChecker::new(&home);
        let stats = checker.replay(stream.iter()).unwrap();
        prop_assert_eq!(stats.total() as usize, stream.len());

        let round_tripped: Vec<RtEvent> = stream
            .iter()
            .map(|ev| {
                let text = serde_json::to_string(ev).unwrap();
                serde_json::from_str(&text).unwrap()
            })
            .collect();
        let mut checker = ReplayChecker::new(&home);
        checker.replay(round_tripped.iter()).unwrap();
        prop_assert_eq!(checker.owners().to_vec(), owner);
    }
}
