//! Failure-injection and resilience tests for the real runtime: lost
//! wake-ups, a crippled coordinator, table contention storms, and
//! worst-case configuration values. A production runtime must make
//! progress through all of them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dws_rt::{join, CoreTable, InProcessTable, Policy, Runtime, RuntimeConfig};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// A table that refuses every acquisition: simulates a pathological
/// co-runner that never releases anything and swallows our releases.
struct HostileTable {
    inner: InProcessTable,
    denied: AtomicUsize,
}

impl HostileTable {
    fn new(cores: usize) -> Self {
        HostileTable { inner: InProcessTable::new(cores, 2), denied: AtomicUsize::new(0) }
    }
}

impl CoreTable for HostileTable {
    fn cores(&self) -> usize {
        self.inner.cores()
    }
    fn max_programs(&self) -> usize {
        self.inner.max_programs()
    }
    fn home(&self, core: usize) -> usize {
        self.inner.home(core)
    }
    fn current(&self, core: usize) -> Option<usize> {
        self.inner.current(core)
    }
    fn release(&self, core: usize, prog: usize) -> bool {
        self.inner.release(core, prog)
    }
    fn try_acquire_free(&self, _core: usize, _prog: usize) -> bool {
        self.denied.fetch_add(1, Ordering::Relaxed);
        false
    }
    fn try_reclaim(&self, _core: usize, _prog: usize) -> bool {
        self.denied.fetch_add(1, Ordering::Relaxed);
        false
    }
}

#[test]
fn progress_with_a_hostile_table() {
    // Even when no core can ever be (re)acquired, the runtime must not
    // deadlock: the worker's initial ownership plus the ensure-progress
    // wake path keep things moving.
    let table = Arc::new(HostileTable::new(2));
    let rt = Runtime::with_table(
        RuntimeConfig::new(2, Policy::Dws),
        Arc::clone(&table) as Arc<dyn CoreTable>,
        0,
    );
    for _ in 0..5 {
        assert_eq!(rt.block_on(|| fib(12)), 144);
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn progress_with_a_glacial_coordinator() {
    // Coordinator period far beyond the test duration: the sleep-timeout
    // self-recovery must carry all wake-ups.
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
    let mut cfg = RuntimeConfig::new(2, Policy::Dws);
    cfg.coordinator_period = Duration::from_secs(3600);
    cfg.sleep_timeout = Some(Duration::from_millis(10));
    let rt = Runtime::with_table(cfg, table, 0);
    std::thread::sleep(Duration::from_millis(80)); // let workers sleep
    for _ in 0..5 {
        assert_eq!(rt.block_on(|| fib(13)), 233);
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn t_sleep_zero_and_huge_both_work() {
    for t_sleep in [0u32, u32::MAX] {
        let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
        let mut cfg = RuntimeConfig::new(2, Policy::Dws);
        cfg.t_sleep = t_sleep;
        let rt = Runtime::with_table(cfg, table, 0);
        assert_eq!(rt.block_on(|| fib(12)), 144, "t_sleep = {t_sleep}");
    }
}

#[test]
fn rapid_create_destroy_cycles() {
    // Shutdown while workers are in every possible state.
    for i in 0..20 {
        let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
        let rt = Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), table, i % 2);
        if i % 3 == 0 {
            let _ = rt.block_on(|| fib(8));
        }
        if i % 3 == 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(rt);
    }
}

#[test]
fn deep_recursion_does_not_overflow_or_starve() {
    let rt = Runtime::new(RuntimeConfig::new(2, Policy::Ws));
    // A 2^14-leaf unbalanced reduction.
    fn count(depth: u32) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = join(|| count(depth - 1), || count(depth - 1));
        a + b
    }
    assert_eq!(rt.block_on(|| count(14)), 1 << 14);
}

#[test]
fn scope_under_memory_churn() {
    // Many scopes with allocating jobs: exercises HeapJob alloc/free and
    // the panic-free path under churn.
    let rt = Runtime::new(RuntimeConfig::new(2, Policy::Ws));
    let total = Arc::new(AtomicUsize::new(0));
    for round in 0..50 {
        let total = Arc::clone(&total);
        rt.scope(|s| {
            for i in 0..64 {
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let v: Vec<usize> = (0..i + round).collect();
                    total.fetch_add(v.len(), Ordering::Relaxed);
                });
            }
        });
    }
    let expected: usize = (0..50).map(|r| (0..64).map(|i| i + r).sum::<usize>()).sum();
    assert_eq!(total.load(Ordering::Relaxed), expected);
}

#[test]
fn sleep_timeout_none_still_completes_with_coordinator() {
    // Paper-pure mode: no timeout; wake-ups come only from the
    // coordinator (and the injection path).
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
    let mut cfg = RuntimeConfig::new(2, Policy::Dws);
    cfg.sleep_timeout = None;
    let rt = Runtime::with_table(cfg, table, 0);
    std::thread::sleep(Duration::from_millis(60));
    for _ in 0..3 {
        assert_eq!(rt.block_on(|| fib(12)), 144);
        std::thread::sleep(Duration::from_millis(25));
    }
    // Shutdown with indefinitely sleeping workers must not hang.
}
