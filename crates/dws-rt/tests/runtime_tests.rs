//! Behavioural tests for the DWS runtime: fork-join correctness, scopes,
//! panic propagation, policy behaviours (sleeping, yielding, coordinator
//! wakes) and co-running through the shared allocation table.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dws_rt::{join, CoreTable, InProcessTable, Policy, Runtime, RuntimeConfig};

fn rt(workers: usize, policy: Policy) -> Runtime {
    Runtime::new(RuntimeConfig::new(workers, policy))
}

/// Recursive parallel fib — the canonical fork-join smoke test.
fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn block_on_returns_result() {
    let pool = rt(2, Policy::Ws);
    assert_eq!(pool.block_on(|| 6 * 7), 42);
}

#[test]
fn join_computes_both_sides() {
    let pool = rt(2, Policy::Ws);
    let (a, b) = pool.join(|| 1 + 1, || "two");
    assert_eq!((a, b), (2, "two"));
}

#[test]
fn nested_joins_recursive_fib() {
    let pool = rt(4, Policy::Ws);
    assert_eq!(pool.block_on(|| fib(18)), 2584);
}

#[test]
fn join_borrows_caller_stack() {
    let pool = rt(2, Policy::Ws);
    let data: Vec<u64> = (0..1000).collect();
    let total = pool.block_on(|| {
        let (a, b) = join(|| data[..500].iter().sum::<u64>(), || data[500..].iter().sum::<u64>());
        a + b
    });
    assert_eq!(total, 499_500);
}

#[test]
fn scope_runs_all_spawns() {
    let pool = rt(4, Policy::Ws);
    let counter = AtomicUsize::new(0);
    pool.scope(|s| {
        for _ in 0..100 {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 100);
}

#[test]
fn scope_spawns_can_nest_joins() {
    let pool = rt(4, Policy::Ws);
    let results: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
    pool.scope(|s| {
        for (i, slot) in results.iter().enumerate() {
            s.spawn(move || {
                slot.store(fib(10 + i as u64 % 3), Ordering::Relaxed);
            });
        }
    });
    for (i, slot) in results.iter().enumerate() {
        assert_eq!(slot.load(Ordering::Relaxed), fib(10 + i as u64 % 3));
    }
}

#[test]
fn scope_result_is_returned() {
    let pool = rt(2, Policy::Ws);
    let r = pool.scope(|s| {
        s.spawn(|| {});
        "done"
    });
    assert_eq!(r, "done");
}

#[test]
fn sequential_fallback_outside_pool() {
    // join() off-pool degrades to sequential execution.
    let (a, b) = join(|| 2, || 3);
    assert_eq!(a + b, 5);
}

#[test]
fn panic_in_join_arm_propagates() {
    let pool = rt(2, Policy::Ws);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.block_on(|| {
            let ((), ()) = join(|| panic!("left"), || ());
        })
    }));
    assert!(result.is_err());
    // The pool survives a panic.
    assert_eq!(pool.block_on(|| 1), 1);
}

#[test]
fn panic_in_stolen_arm_propagates() {
    let pool = rt(4, Policy::Ws);
    for _ in 0..20 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.block_on(|| {
                let ((), ()) =
                    join(|| std::thread::sleep(Duration::from_micros(50)), || panic!("right"));
            })
        }));
        assert!(result.is_err());
    }
    assert_eq!(pool.block_on(|| 7), 7);
}

#[test]
fn panic_in_scope_spawn_propagates_after_all_jobs() {
    let pool = rt(4, Policy::Ws);
    let completed = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&completed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..50 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    if i == 13 {
                        panic!("unlucky");
                    }
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
    }));
    assert!(result.is_err());
    // Every non-panicking job still ran before the panic resumed.
    assert_eq!(completed.load(Ordering::Relaxed), 49);
}

#[test]
fn heavy_parallel_sum_is_correct() {
    let pool = rt(4, Policy::Ws);
    fn psum(xs: &[u64]) -> u64 {
        if xs.len() <= 64 {
            return xs.iter().sum();
        }
        let mid = xs.len() / 2;
        let (a, b) = join(|| psum(&xs[..mid]), || psum(&xs[mid..]));
        a + b
    }
    let data: Vec<u64> = (0..100_000).collect();
    let got = pool.block_on(|| psum(&data));
    assert_eq!(got, 100_000 * 99_999 / 2);
}

#[test]
fn many_sequential_block_ons() {
    let pool = rt(2, Policy::Ws);
    for i in 0..200 {
        assert_eq!(pool.block_on(move || i * 2), i * 2);
    }
}

#[test]
fn single_worker_pool_still_works() {
    let pool = rt(1, Policy::Ws);
    assert_eq!(pool.block_on(|| fib(12)), 144);
    pool.scope(|s| {
        for _ in 0..10 {
            s.spawn(|| {});
        }
    });
}

#[test]
fn solo_dws_falls_back_to_ws() {
    // §4.4: single-program DWS behaves as traditional work-stealing.
    let pool = rt(2, Policy::Dws);
    assert_eq!(pool.effective_policy(), Policy::Ws);
    assert_eq!(pool.block_on(|| fib(10)), 55);
    assert_eq!(pool.metrics().sleeps, 0);
}

#[test]
fn abp_policy_yields_when_idle() {
    let pool = rt(2, Policy::Abp);
    assert_eq!(pool.effective_policy(), Policy::Abp);
    pool.block_on(|| fib(10));
    std::thread::sleep(Duration::from_millis(20));
    assert!(pool.metrics().yields > 0, "idle ABP workers must yield");
}

#[test]
fn dws_with_table_sleeps_idle_workers() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(4, 2));
    let pool = Runtime::with_table(RuntimeConfig::new(4, Policy::Dws), Arc::clone(&table), 0);
    assert_eq!(pool.effective_policy(), Policy::Dws);
    // Give idle workers time to cross T_SLEEP and doze off.
    std::thread::sleep(Duration::from_millis(100));
    let m = pool.metrics();
    assert!(m.sleeps > 0, "idle DWS workers must sleep, metrics: {m:?}");
    // Its home cores were released once asleep (workers 0,1 are home).
    let free = table.free_cores();
    assert!(!free.is_empty(), "sleeping workers release their cores: {free:?}");
    // Work still completes (wake path).
    assert_eq!(pool.block_on(|| fib(12)), 144);
}

#[test]
fn dws_corun_trades_cores() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(4, 2));
    let p0 = Runtime::with_table(RuntimeConfig::new(4, Policy::Dws), Arc::clone(&table), 0);
    let p1 = Runtime::with_table(RuntimeConfig::new(4, Policy::Dws), Arc::clone(&table), 1);
    // p1 idles (sleeps, releasing cores 2,3); p0 works hard and should be
    // able to borrow them via its coordinator.
    std::thread::sleep(Duration::from_millis(120));
    let big = p0.block_on(|| fib(23));
    assert_eq!(big, 28657);
    // p1 still functions afterwards (reclaims its cores as needed).
    assert_eq!(p1.block_on(|| fib(15)), 610);
    let m0 = p0.metrics();
    let total_coord = m0.coordinator_runs + p1.metrics().coordinator_runs;
    assert!(total_coord > 0, "coordinators must have run");
}

#[test]
fn dwsnc_corun_works_without_table_exclusivity() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(4, 2));
    let p0 = Runtime::with_table(RuntimeConfig::new(4, Policy::DwsNc), Arc::clone(&table), 0);
    let p1 = Runtime::with_table(RuntimeConfig::new(4, Policy::DwsNc), Arc::clone(&table), 1);
    assert_eq!(p0.block_on(|| fib(14)), 377);
    assert_eq!(p1.block_on(|| fib(14)), 377);
    // NC never touches the table.
    assert_eq!(p0.metrics().cores_acquired, 0);
    assert_eq!(p0.metrics().cores_reclaimed, 0);
}

#[test]
fn ep_corun_completes() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(4, 2));
    let p0 = Runtime::with_table(RuntimeConfig::new(4, Policy::Ep), Arc::clone(&table), 0);
    let p1 = Runtime::with_table(RuntimeConfig::new(4, Policy::Ep), Arc::clone(&table), 1);
    let (a, b) = (p0.block_on(|| fib(14)), p1.block_on(|| fib(14)));
    assert_eq!((a, b), (377, 377));
}

#[test]
fn concurrent_block_ons_from_many_threads() {
    let pool = Arc::new(rt(4, Policy::Ws));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.block_on(move || fib(10) + i))
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), 55 + i as u64);
    }
}

#[test]
fn metrics_count_jobs() {
    let pool = rt(2, Policy::Ws);
    let before = pool.metrics().jobs_executed;
    pool.scope(|s| {
        for _ in 0..50 {
            s.spawn(|| {});
        }
    });
    let after = pool.metrics().jobs_executed;
    assert!(after - before >= 50, "before={before} after={after}");
}

#[test]
fn drop_shuts_down_cleanly_while_workers_sleep() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
    let pool = Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), Arc::clone(&table), 0);
    std::thread::sleep(Duration::from_millis(60));
    drop(pool); // must not hang on sleeping workers
}

#[test]
fn runtime_accessors() {
    let pool = rt(3, Policy::Ws);
    assert_eq!(pool.workers(), 3);
    assert_eq!(pool.program_id(), 0);
    assert_eq!(pool.table().cores(), 3);
}

#[test]
fn detached_spawns_all_run_before_drop() {
    let counter = Arc::new(AtomicUsize::new(0));
    {
        let pool = rt(2, Policy::Ws);
        for _ in 0..200 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Drop waits for all detached jobs.
    }
    assert_eq!(counter.load(Ordering::Relaxed), 200);
}

#[test]
fn spawn_from_inside_the_pool() {
    let pool = Arc::new(rt(2, Policy::Ws));
    let counter = Arc::new(AtomicUsize::new(0));
    let (p2, c2) = (Arc::clone(&pool), Arc::clone(&counter));
    pool.block_on(move || {
        for _ in 0..50 {
            let c = Arc::clone(&c2);
            p2.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    while pool.pending_spawns() > 0 {
        std::thread::yield_now();
    }
    assert_eq!(counter.load(Ordering::Relaxed), 50);
}

#[test]
fn panicking_detached_spawn_is_contained() {
    let pool = rt(2, Policy::Ws);
    pool.spawn(|| panic!("detached boom"));
    // Pool survives; later work proceeds.
    assert_eq!(pool.block_on(|| 5), 5);
    while pool.pending_spawns() > 0 {
        std::thread::yield_now();
    }
}

#[test]
fn prometheus_endpoint_serves_versioned_content_type() {
    // Prometheus's scraper negotiates the text exposition format off the
    // Content-Type header — `version=0.0.4` is what makes the payload
    // parseable, so the header is part of the contract, not cosmetics.
    use std::io::{Read as _, Write as _};

    let table: Arc<dyn CoreTable> =
        Arc::new(dws_rt::LedgerTable::new(Arc::new(InProcessTable::new(2, 1))));
    let cfg = RuntimeConfig::new(2, Policy::Dws).with_telemetry();
    let pool = Runtime::with_table(cfg, table, 0);
    pool.block_on(|| fib(12));

    let server = dws_rt::serve(vec![pool.telemetry("p0")], "127.0.0.1:0").expect("bind endpoint");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");

    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response:.60}");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(
        head.lines().any(|l| l == format!("Content-Type: {}", dws_rt::PROMETHEUS_CONTENT_TYPE)),
        "missing versioned Content-Type header in: {head}"
    );
    // The fairness series of DESIGN §14 ride the same endpoint.
    for needle in [
        "# TYPE dws_core_seconds_total counter",
        "# TYPE dws_fairness_index gauge",
        "# TYPE dws_alloc_latency_ns gauge",
        "# TYPE dws_jobs_executed_total counter",
    ] {
        assert!(body.contains(needle), "body lacks {needle}");
    }
}

#[test]
fn telemetry_ring_eviction_accounting_balances() {
    // The bounded frame ring may forget history, but never silently:
    // frames_evicted + frames_retained must equal frames_produced. A
    // fast tick and a tiny ring force dozens of evictions in a short run.
    let mut cfg = RuntimeConfig::new(2, Policy::Ws).with_telemetry_tick(Duration::from_millis(1));
    cfg.telemetry.capacity = 8;
    let pool = Runtime::new(cfg);
    let handle = pool.telemetry("p0");
    while handle.frames().last().is_none_or(|f| f.seq < 40) {
        pool.block_on(|| fib(10));
        std::thread::sleep(Duration::from_millis(2));
    }
    // Dropping the pool joins the sampler; the registry (and with it the
    // ring) stays alive through the handle, now quiescent.
    drop(pool);

    let frames = handle.frames();
    let produced = frames.last().expect("sampler left frames").seq + 1;
    let evicted = handle.sample_now().counters.frames_evicted;
    assert!(evicted > 0, "the ring never overflowed — the test lost its subject");
    assert_eq!(frames.len(), 8, "an overflowed ring retains exactly its capacity");
    assert_eq!(
        evicted + frames.len() as u64,
        produced,
        "frames_evicted + frames_retained != frames_produced"
    );
    // Eviction is strictly oldest-first: the survivors are the contiguous
    // tail of the sequence.
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(f.seq, frames[0].seq + i as u64, "retained window has a hole");
    }
}
