//! End-to-end tests of the serving request path (DESIGN §13): submission
//! ring → coordinator drain → injector → worker execution, with the
//! request lifecycle visible in metrics, telemetry and the trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dws_rt::{CoreTable, Policy, Runtime, RuntimeConfig, ShmTable, SubmitError, TaskId};

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::yield_now();
    }
    done()
}

#[test]
fn solo_serving_executes_every_request_exactly_once() {
    let n = 200u64;
    let hits = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
    let seen = Arc::clone(&hits);
    let mut cfg = RuntimeConfig::new(2, Policy::Ws).with_serving();
    cfg.coordinator_period = Duration::from_millis(1);
    let rt = Runtime::serve(cfg, move |req| {
        seen[req.req_id as usize].fetch_add(1, Ordering::Relaxed);
    });
    assert!(rt.serving());
    for i in 0..n {
        // Retry on Full: this test wants every request through.
        while rt.submit(i, 5) == Err(SubmitError::Full) {
            rt.drain_submissions();
        }
    }
    assert!(
        wait_until(Duration::from_secs(10), || hits.iter().all(|h| h.load(Ordering::Relaxed) == 1)),
        "every request must execute exactly once"
    );
    let snap = rt.metrics();
    assert_eq!(snap.requests_admitted, n, "admission counter covers all requests");
    assert_eq!(snap.requests_fenced, 0);
}

#[test]
fn submit_admission_does_not_scale_with_the_coordinator_period() {
    // The event-driven control plane's serving edge (DESIGN §16): every
    // submit rings the coordinator's doorbell, so admission latency is
    // set by the wake path, not by `coordinator_period`. The period here
    // is ten minutes — far beyond the test's own deadline — so every
    // request that executes below *proves* a doorbell admission; before
    // edge-triggered wakes this test could only pass by waiting out the
    // polling tick.
    let n = 16u64;
    let done = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&done);
    let mut cfg = RuntimeConfig::new(2, Policy::Ws).with_serving();
    cfg.coordinator_period = Duration::from_secs(600);
    cfg.sleep_timeout = Some(Duration::from_millis(2));
    let rt = Runtime::serve(cfg, move |_req| {
        d.fetch_add(1, Ordering::Relaxed);
    });
    for i in 0..n {
        rt.submit(i, 1).expect("submit on an idle ring");
        assert!(
            wait_until(Duration::from_secs(5), || done.load(Ordering::Relaxed) > i),
            "request {i} sat in the ring waiting for a polling tick — submit doorbell lost"
        );
    }
    let snap = rt.metrics();
    assert_eq!(snap.requests_admitted, n);
    assert!(
        snap.doorbell_wakes >= 1,
        "admissions inside a 600 s period must come from doorbell wakes"
    );
}

#[test]
fn non_serving_runtime_has_no_ring() {
    let rt = Runtime::new(RuntimeConfig::new(2, Policy::Ws));
    assert!(!rt.serving());
    assert!(rt.submission_ring().is_none());
}

#[test]
fn full_ring_sheds_and_counts_drops() {
    // Tiny ring, manual pumping only: fill it, watch the overflow drop.
    let mut cfg = RuntimeConfig::new(2, Policy::Ws).with_serving_geometry(4, 64);
    cfg.coordinator_period = Duration::from_secs(3600); // never drains on its own
    let rt = Runtime::serve(cfg, |_req| {});
    for i in 0..4 {
        rt.submit(i, 1).unwrap();
    }
    assert_eq!(rt.submit(99, 1), Err(SubmitError::Full));
    assert_eq!(rt.drain_submissions(), 4);
    let snap = rt.metrics();
    assert_eq!(snap.requests_admitted, 4);
    assert_eq!(snap.requests_dropped, 1, "the shed request is counted");
}

#[test]
fn traced_serving_emits_admit_events_and_request_sojourns() {
    let n = 50u64;
    let mut cfg = RuntimeConfig::new(2, Policy::Ws).with_serving().with_tracing();
    cfg.coordinator_period = Duration::from_millis(1);
    let done = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&done);
    let rt = Runtime::serve(cfg, move |_req| {
        d.fetch_add(1, Ordering::Relaxed);
    });
    for i in 0..n {
        while rt.submit(i, 5) == Err(SubmitError::Full) {
            rt.drain_submissions();
        }
    }
    assert!(
        wait_until(Duration::from_secs(10), || done.load(Ordering::Relaxed) == n),
        "all requests handled"
    );
    let snap = rt.trace_snapshot();
    let mut admits = 0u64;
    for ev in snap.events.iter() {
        if let dws_rt::RtEvent::Admit { id, submit_us } = ev.event {
            let tid = TaskId::from_u64(id);
            assert_eq!(tid.worker(), TaskId::EXTERNAL_WORKER, "admits use the external lane");
            assert!(submit_us > 0, "client submit timestamp flows into the event");
            admits += 1;
        }
    }
    assert_eq!(admits, n, "one Admit event per request");
    // The end-to-end sojourn histogram filled (tracing gates it).
    let hist = rt.histograms();
    assert_eq!(hist.request_sojourn.count(), n, "one request sojourn sample per request");
}

#[test]
fn shm_ring_serves_requests_from_another_mapping() {
    // Server process maps the table and serves; a "client" opens its own
    // mapping of the same file and submits through the shm ring — the
    // cross-process path, minus fork.
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!("dws-serving-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };
    let server_map = Arc::new(ShmTable::create_or_open(&path, 2, 2).unwrap());
    let client_map = ShmTable::create_or_open(&path, 2, 2).unwrap();

    let n = 64u64;
    let done = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&done);
    let mut cfg = RuntimeConfig::new(2, Policy::Dws).with_serving();
    cfg.coordinator_period = Duration::from_millis(1);
    cfg.sleep_timeout = Some(Duration::from_millis(2));
    let rt = Runtime::serve_with_table(cfg, server_map, 0, move |req| {
        d.fetch_add(req.demand_us, Ordering::Relaxed);
    });

    // The runtime's ring IS the shm ring (not a private heap fallback).
    let ring = client_map.submit_ring(0).expect("shm table carves rings");
    for i in 0..n {
        let req = dws_rt::Request { req_id: i, submit_us: 1 + i, demand_us: 1 };
        while ring.submit(req, ring.epoch()) == Err(SubmitError::Full) {
            std::thread::yield_now();
        }
    }
    assert!(
        wait_until(Duration::from_secs(10), || done.load(Ordering::Relaxed) == n),
        "requests submitted via the client mapping all executed"
    );
    assert_eq!(rt.metrics().requests_admitted, n);
    drop(rt);
    std::fs::remove_file(&path).unwrap();
}
