//! End-to-end observability: two traced DWS runtimes co-running over a
//! shared `TracedTable` must produce a consistent event stream, populated
//! histograms, and a protocol-clean table history.

use std::sync::Arc;

use dws_rt::export::{to_chrome_trace, to_jsonl};
use dws_rt::{
    join, CoreTable, InProcessTable, Policy, Runtime, RuntimeConfig, TimedEvent, TracedTable,
};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn traced_corun_is_observable_and_protocol_clean() {
    let cores = 4;
    let table = Arc::new(TracedTable::new(Arc::new(InProcessTable::new(cores, 2)), 1 << 16));
    let shared: Arc<dyn CoreTable> = Arc::clone(&table) as Arc<dyn CoreTable>;

    let mk = || {
        let mut cfg = RuntimeConfig::new(cores, Policy::Dws).with_tracing_capacity(1 << 15);
        cfg.coordinator_period = std::time::Duration::from_millis(2);
        cfg.sleep_timeout = Some(std::time::Duration::from_millis(10));
        cfg
    };
    let p0 = Runtime::with_table(mk(), Arc::clone(&shared), 0);
    let p1 = Runtime::with_table(mk(), shared, 1);
    assert!(p0.tracing_enabled() && p1.tracing_enabled());

    // Phase 1: both busy. Phase 2: p1 idles so its workers sleep and p0's
    // coordinator can pick up freed cores. Phase 3: p1 returns and must
    // reclaim its home cores.
    for _ in 0..3 {
        let (a, b) = (p0.block_on(|| fib(17)), p1.block_on(|| fib(17)));
        assert_eq!((a, b), (1597, 1597));
    }
    std::thread::sleep(std::time::Duration::from_millis(120));
    assert_eq!(p0.block_on(|| fib(18)), 2584);
    std::thread::sleep(std::time::Duration::from_millis(30));
    assert_eq!(p1.block_on(|| fib(18)), 2584);

    // Event streams: both runtimes produced task activity; p1 slept.
    let s0 = p0.trace_snapshot();
    let s1 = p1.trace_snapshot();
    assert!(s0.count("exec_begin") > 0, "p0 recorded no tasks");
    assert!(s1.count("exec_begin") > 0, "p1 recorded no tasks");
    assert!(s0.count("spawn") > 0, "p0 recorded no spawns");
    // Pairing is only sound on a lossless ring (same rule dws-trace uses
    // for W1): on an overloaded host the run crawls and the ring evicts.
    if s0.dropped == 0 {
        assert_eq!(s0.count("spawn"), s0.count("enqueue"), "spawn/enqueue must pair");
    }
    assert!(s1.count("sleep") > 0, "p1 never slept through the idle phase");
    assert!(s1.count("sleep") >= s1.count("wake") - 1);
    assert!(s0.events.windows(2).all(|w| w[0].t_us <= w[1].t_us), "snapshot must be time-sorted");
    // Coordinator decisions show up on the shared lane.
    assert!(s0.count("coordinator_decision") + s1.count("coordinator_decision") > 0);

    // Histograms: sleep durations are always sampled; steal latencies and
    // per-worker counters because tracing is on.
    let h1 = p1.histograms();
    assert!(h1.sleep_duration.count() > 0, "no sleep-duration samples");
    assert!(h1.steal_latency.count() > 0, "no steal-latency samples");
    assert!(h1.task_sojourn.count() > 0, "no task-sojourn samples");
    assert!(h1.task_sojourn.quantile_ns(0.999).is_some());
    assert!(h1.sleep_duration.quantile_ns(0.5).is_some());
    let shards = p0.worker_metrics();
    assert_eq!(shards.len(), cores);
    assert!(shards.iter().map(|w| w.jobs_executed).sum::<u64>() > 0);

    // Exporters accept real streams.
    let jsonl = to_jsonl(0, &s0);
    // A lossy ring appends one `events_dropped` meta line.
    let meta_lines = usize::from(s0.dropped > 0);
    assert_eq!(jsonl.lines().count(), s0.events.len() + meta_lines);
    let first: TimedEvent = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
    assert_eq!(first, s0.events[0]);
    let chrome = to_chrome_trace(&[(0, s0), (1, s1)]);
    let doc: serde_json::Value = serde_json::from_str(&chrome).unwrap();
    assert!(matches!(&doc["traceEvents"], serde_json::Value::Array(v) if !v.is_empty()));

    drop(p0);
    drop(p1);

    // Live invariant replay over the shared table's full history. Replay
    // is only sound over a complete history, so skip it (loudly) if the
    // ring evicted — that only happens when an overloaded host stretches
    // the run far past its normal duration.
    if table.dropped() == 0 {
        let stats = table.replay_check().expect("table protocol violated");
        assert!(stats.releases > 0, "co-run produced no releases");
    } else {
        eprintln!("table ring overflowed ({} dropped); replay check skipped", table.dropped());
    }
}
