//! The core-allocation table (paper Table 1).
//!
//! One slot per core recording the program currently *using* the core, or
//! `FREE`. Separately, each core has a static *home owner* — the program it
//! was assigned to by the initial equipartition — which is what the
//! coordinator's `N_r` ("my cores that other programs are using") is
//! computed against (§3.3).
//!
//! This module is the simulator's in-memory model of the table; the real
//! runtime's mmap-backed equivalent lives in `dws-rt::alloc_table` and
//! implements the same transition protocol.

/// Identifier of a co-running program (index into the simulator's program
/// vector).
pub type ProgId = usize;

/// A table slot: which program currently uses the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The core was released and may be taken by any program.
    Free,
    /// The core is in use by the given program.
    Used(ProgId),
}

/// The shared core-allocation table plus the static home-ownership map.
#[derive(Debug, Clone)]
pub struct AllocTable {
    slots: Vec<Slot>,
    home: Vec<ProgId>,
}

impl AllocTable {
    /// Builds the table for `cores` cores shared by `programs` programs,
    /// applying the paper's initial allocation: each program gets
    /// `cores / programs` *adjacent* cores (the first `cores % programs`
    /// programs absorb the remainder, one extra core each), and initially
    /// uses all of them.
    pub fn equipartition(cores: usize, programs: usize) -> Self {
        assert!(programs > 0 && cores >= programs, "need at least one core per program");
        let base = cores / programs;
        let extra = cores % programs;
        let mut home = Vec::with_capacity(cores);
        for p in 0..programs {
            let share = base + usize::from(p < extra);
            home.extend(std::iter::repeat_n(p, share));
        }
        debug_assert_eq!(home.len(), cores);
        Self::with_homes(home, programs)
    }

    /// Interleaved equipartition (ablation of the adjacency decision):
    /// core `c` is homed to program `c % programs`, so every program's
    /// slice straddles all sockets.
    pub fn equipartition_interleaved(cores: usize, programs: usize) -> Self {
        assert!(programs > 0 && cores >= programs, "need at least one core per program");
        let home = (0..cores).map(|c| c % programs).collect();
        Self::with_homes(home, programs)
    }

    /// Builds a table from an explicit home map (used for demand-aware
    /// placement on asymmetric machines). Every program in
    /// `0..programs` must own at least one core.
    pub fn with_homes(home: Vec<usize>, programs: usize) -> Self {
        assert!(programs > 0);
        for p in 0..programs {
            assert!(home.contains(&p), "program {p} owns no core in the home map");
        }
        assert!(home.iter().all(|&h| h < programs), "home map names unknown program");
        let slots = home.iter().map(|&p| Slot::Used(p)).collect();
        AllocTable { slots, home }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.slots.len()
    }

    /// Current user of `core`.
    pub fn slot(&self, core: usize) -> Slot {
        self.slots[core]
    }

    /// Static home owner of `core` (initial equipartition).
    pub fn home(&self, core: usize) -> ProgId {
        self.home[core]
    }

    /// The cores initially allocated to `prog`, in order.
    pub fn home_cores(&self, prog: ProgId) -> Vec<usize> {
        (0..self.cores()).filter(|&c| self.home[c] == prog).collect()
    }

    /// Marks `core` free. Called when a worker of the using program goes to
    /// sleep (Algorithm 1: "the correspondence item ... is set as 0").
    /// Releasing a core the program does not use is a protocol error.
    pub fn release(&mut self, core: usize, prog: ProgId) {
        debug_assert_eq!(
            self.slots[core],
            Slot::Used(prog),
            "program {prog} released core {core} it does not use"
        );
        self.slots[core] = Slot::Free;
    }

    /// Acquires a free core for `prog`. Returns false if the core was not
    /// free (lost a race / stale view).
    pub fn acquire_free(&mut self, core: usize, prog: ProgId) -> bool {
        if self.slots[core] == Slot::Free {
            self.slots[core] = Slot::Used(prog);
            true
        } else {
            false
        }
    }

    /// Reclaims one of `prog`'s *home* cores currently used by another
    /// program (§3.3 constraint 2). Returns false if `core` is not
    /// reclaimable by `prog` (not its home, or not used by someone else).
    pub fn reclaim(&mut self, core: usize, prog: ProgId) -> bool {
        if self.home[core] != prog {
            return false;
        }
        match self.slots[core] {
            Slot::Used(user) if user != prog => {
                self.slots[core] = Slot::Used(prog);
                true
            }
            Slot::Free => {
                self.slots[core] = Slot::Used(prog);
                true
            }
            _ => false,
        }
    }

    /// All currently free cores.
    pub fn free_cores(&self) -> Vec<usize> {
        (0..self.cores()).filter(|&c| self.slots[c] == Slot::Free).collect()
    }

    /// `N_f`: number of free cores in the whole system.
    pub fn n_free(&self) -> usize {
        self.slots.iter().filter(|s| **s == Slot::Free).count()
    }

    /// `N_r` for `prog`: its home cores currently used by *other* programs.
    pub fn n_reclaimable(&self, prog: ProgId) -> usize {
        self.reclaimable_cores(prog).len()
    }

    /// The home cores of `prog` currently used by other programs.
    pub fn reclaimable_cores(&self, prog: ProgId) -> Vec<usize> {
        (0..self.cores())
            .filter(|&c| {
                self.home[c] == prog && matches!(self.slots[c], Slot::Used(u) if u != prog)
            })
            .collect()
    }

    /// Cores currently used by `prog`.
    pub fn used_by(&self, prog: ProgId) -> Vec<usize> {
        (0..self.cores()).filter(|&c| self.slots[c] == Slot::Used(prog)).collect()
    }

    /// Invariant check used by tests and debug assertions: every slot is
    /// either free or names a valid program; home is a permutation-stable
    /// partition.
    pub fn check_invariants(&self, programs: usize) {
        assert_eq!(self.home.len(), self.slots.len());
        for (c, s) in self.slots.iter().enumerate() {
            if let Slot::Used(p) = s {
                assert!(*p < programs, "core {c} used by out-of-range program {p}");
            }
            assert!(self.home[c] < programs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equipartition_is_adjacent_and_even() {
        let t = AllocTable::equipartition(16, 2);
        assert_eq!(t.home_cores(0), (0..8).collect::<Vec<_>>());
        assert_eq!(t.home_cores(1), (8..16).collect::<Vec<_>>());
        for c in 0..8 {
            assert_eq!(t.slot(c), Slot::Used(0));
        }
        for c in 8..16 {
            assert_eq!(t.slot(c), Slot::Used(1));
        }
    }

    #[test]
    fn equipartition_distributes_remainder() {
        let t = AllocTable::equipartition(16, 3);
        // 16 = 6 + 5 + 5.
        assert_eq!(t.home_cores(0).len(), 6);
        assert_eq!(t.home_cores(1).len(), 5);
        assert_eq!(t.home_cores(2).len(), 5);
        t.check_invariants(3);
    }

    #[test]
    fn release_then_acquire_moves_core_between_programs() {
        let mut t = AllocTable::equipartition(4, 2);
        t.release(0, 0);
        assert_eq!(t.slot(0), Slot::Free);
        assert_eq!(t.n_free(), 1);
        assert!(t.acquire_free(0, 1));
        assert_eq!(t.slot(0), Slot::Used(1));
        assert_eq!(t.n_free(), 0);
    }

    #[test]
    fn acquire_non_free_core_fails() {
        let mut t = AllocTable::equipartition(4, 2);
        assert!(!t.acquire_free(0, 1));
        assert_eq!(t.slot(0), Slot::Used(0));
    }

    #[test]
    fn n_reclaimable_counts_only_foreign_used_home_cores() {
        let mut t = AllocTable::equipartition(4, 2);
        // Program 0 releases core 0; program 1 takes it.
        t.release(0, 0);
        t.acquire_free(0, 1);
        assert_eq!(t.n_reclaimable(0), 1);
        assert_eq!(t.reclaimable_cores(0), vec![0]);
        // Program 1's own cores are untouched.
        assert_eq!(t.n_reclaimable(1), 0);
    }

    #[test]
    fn reclaim_takes_back_home_core() {
        let mut t = AllocTable::equipartition(4, 2);
        t.release(1, 0);
        t.acquire_free(1, 1);
        assert!(t.reclaim(1, 0));
        assert_eq!(t.slot(1), Slot::Used(0));
        assert_eq!(t.n_reclaimable(0), 0);
    }

    #[test]
    fn reclaim_rejects_foreign_home() {
        let mut t = AllocTable::equipartition(4, 2);
        // Core 2 is home to program 1; program 0 cannot reclaim it even
        // though program 1 uses it.
        assert!(!t.reclaim(2, 0));
        assert_eq!(t.slot(2), Slot::Used(1));
    }

    #[test]
    fn used_by_reflects_current_state() {
        let mut t = AllocTable::equipartition(4, 2);
        assert_eq!(t.used_by(0), vec![0, 1]);
        t.release(0, 0);
        assert_eq!(t.used_by(0), vec![1]);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn more_programs_than_cores_rejected() {
        AllocTable::equipartition(2, 3);
    }
}
