//! Open-loop traffic models for the serving evaluation (DESIGN §13).
//!
//! A serving DWS program is driven by an *open-loop* generator: requests
//! arrive on their own schedule regardless of how far the server has
//! fallen behind, which is what makes tail latency honest (a closed loop
//! self-throttles and hides queueing collapse). This module provides the
//! three standard ingredients, each a pure function of its seed:
//!
//! * [`ArrivalProcess::Poisson`] — exponential inter-arrival gaps at a
//!   fixed rate; the memoryless baseline.
//! * [`ArrivalProcess::Mmpp`] — a 2-state Markov-modulated Poisson
//!   process: the generator alternates between a *calm* and a *burst*
//!   rate with exponentially distributed dwell times. Burstiness is what
//!   stresses the coordinator's Eq. 1 wake decision — a calm period puts
//!   workers to sleep, then a burst arrives and every sleeping worker is
//!   latency on the critical path.
//! * [`BoundedPareto`] — heavy-tailed service demands truncated to
//!   `[min, max]`, the canonical model for request sizes (most requests
//!   tiny, a bounded fraction huge).
//!
//! The samplers are shared by the harness's real-time generator
//! (`dws-harness serve`) and any simulated serving experiments, so both
//! draw identical request sequences from identical seeds.

use crate::rng::XorShift64Star;

/// An open-loop arrival process over a microsecond clock.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: independent exponential gaps at `rate_per_sec`.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_sec: f64,
    },
    /// 2-state Markov-modulated Poisson process (calm/burst).
    Mmpp {
        /// Arrival rate while calm, requests per second.
        calm_rate_per_sec: f64,
        /// Arrival rate while bursting, requests per second.
        burst_rate_per_sec: f64,
        /// Mean dwell time in the calm state, µs.
        calm_dwell_us: f64,
        /// Mean dwell time in the burst state, µs.
        burst_dwell_us: f64,
    },
}

impl ArrivalProcess {
    /// A bursty preset: `rate` on average, delivered as quiet stretches
    /// punctuated by bursts at `burstiness ×` the calm rate (mean dwell
    /// 50 ms calm / 10 ms burst).
    pub fn bursty(rate_per_sec: f64, burstiness: f64) -> ArrivalProcess {
        assert!(rate_per_sec > 0.0 && burstiness >= 1.0);
        ArrivalProcess::Mmpp {
            calm_rate_per_sec: rate_per_sec / burstiness,
            burst_rate_per_sec: rate_per_sec * burstiness,
            calm_dwell_us: 50_000.0,
            burst_dwell_us: 10_000.0,
        }
    }

    /// The long-run mean arrival rate in requests per second (for MMPP,
    /// the dwell-time-weighted average of the two state rates).
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Mmpp {
                calm_rate_per_sec,
                burst_rate_per_sec,
                calm_dwell_us,
                burst_dwell_us,
            } => {
                let total = calm_dwell_us + burst_dwell_us;
                (calm_rate_per_sec * calm_dwell_us + burst_rate_per_sec * burst_dwell_us) / total
            }
        }
    }
}

/// Draws one exponential variate with the given mean (inverse-CDF on a
/// `[0, 1)` uniform; the `1 - u` flip avoids `ln(0)`).
fn exp_us(rng: &mut XorShift64Star, mean_us: f64) -> f64 {
    debug_assert!(mean_us > 0.0);
    -mean_us * (1.0 - rng.next_f64()).ln()
}

/// Stateful arrival-time sampler: feeds out the absolute arrival times
/// (µs) of an [`ArrivalProcess`], deterministically from its seed.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    rng: XorShift64Star,
    /// Absolute time of the previous arrival (µs).
    now_us: f64,
    /// MMPP only: are we currently in the burst state?
    bursting: bool,
    /// MMPP only: absolute time the current state ends (µs).
    state_end_us: f64,
}

impl ArrivalSampler {
    /// Starts the process at time 0 with the given seed. MMPP begins in
    /// the calm state.
    pub fn new(process: ArrivalProcess, seed: u64) -> ArrivalSampler {
        let mut rng = XorShift64Star::new(seed);
        let state_end_us = match process {
            ArrivalProcess::Mmpp { calm_dwell_us, .. } => exp_us(&mut rng, calm_dwell_us),
            ArrivalProcess::Poisson { .. } => f64::INFINITY,
        };
        ArrivalSampler { process, rng, now_us: 0.0, bursting: false, state_end_us }
    }

    /// The process this sampler draws from.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// Absolute arrival time (µs) of the next request. Monotone
    /// non-decreasing across calls.
    pub fn next_arrival_us(&mut self) -> u64 {
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                self.now_us += exp_us(&mut self.rng, 1e6 / rate_per_sec);
            }
            ArrivalProcess::Mmpp {
                calm_rate_per_sec,
                burst_rate_per_sec,
                calm_dwell_us,
                burst_dwell_us,
            } => {
                // Advance through state switches until a gap drawn at the
                // current state's rate lands inside the state. Redrawing
                // after a switch is the standard memorylessness argument:
                // an exponential gap conditioned on exceeding the state
                // boundary restarts fresh at the boundary.
                loop {
                    let rate = if self.bursting { burst_rate_per_sec } else { calm_rate_per_sec };
                    let gap = exp_us(&mut self.rng, 1e6 / rate);
                    if self.now_us + gap <= self.state_end_us {
                        self.now_us += gap;
                        break;
                    }
                    self.now_us = self.state_end_us;
                    self.bursting = !self.bursting;
                    let dwell = if self.bursting { burst_dwell_us } else { calm_dwell_us };
                    self.state_end_us = self.now_us + exp_us(&mut self.rng, dwell);
                }
            }
        }
        self.now_us as u64
    }
}

/// Bounded-Pareto service-demand distribution on `[min_us, max_us]` with
/// tail index `alpha` (smaller ⇒ heavier tail; the classic web-workload
/// value is 1.1–1.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Minimum demand, µs.
    pub min_us: f64,
    /// Maximum demand, µs (truncation point).
    pub max_us: f64,
    /// Tail index.
    pub alpha: f64,
}

impl BoundedPareto {
    /// Validated constructor.
    pub fn new(min_us: f64, max_us: f64, alpha: f64) -> BoundedPareto {
        assert!(min_us > 0.0 && max_us > min_us, "need 0 < min < max");
        assert!(alpha > 0.0, "tail index must be positive");
        BoundedPareto { min_us, max_us, alpha }
    }

    /// One demand sample in µs (inverse-CDF of the truncated Pareto).
    pub fn sample_us(&self, rng: &mut XorShift64Star) -> u64 {
        let u = rng.next_f64();
        let (l, h, a) = (self.min_us, self.max_us, self.alpha);
        let ratio = (l / h).powf(a);
        // Inverse CDF: x = L / (1 - U(1 - (L/H)^α))^(1/α), in [L, H].
        let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / a);
        x.min(h).max(l) as u64
    }

    /// The distribution mean in µs (closed form; the `alpha == 1`
    /// singularity uses the log form).
    pub fn mean_us(&self) -> f64 {
        let (l, h, a) = (self.min_us, self.max_us, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            let ratio = l / h;
            l * (h / l).ln() / (1.0 - ratio)
        } else {
            // E[X] = (αL/(α−1)) · (1 − (L/H)^{α−1}) / (1 − (L/H)^α).
            (a * l / (a - 1.0)) * (1.0 - (l / h).powf(a - 1.0)) / (1.0 - (l / h).powf(a))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut s = ArrivalSampler::new(ArrivalProcess::Poisson { rate_per_sec: 10_000.0 }, 42);
        let n = 20_000;
        let mut last = 0u64;
        for _ in 0..n {
            let t = s.next_arrival_us();
            assert!(t >= last, "arrival times must be monotone");
            last = t;
        }
        // 10k req/s ⇒ mean gap 100 µs ⇒ 20k arrivals span ~2 s.
        let mean_gap = last as f64 / n as f64;
        assert!((90.0..110.0).contains(&mean_gap), "mean gap {mean_gap} µs, expected ~100");
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let p = ArrivalProcess::bursty(5_000.0, 4.0);
        let mut a = ArrivalSampler::new(p.clone(), 7);
        let mut b = ArrivalSampler::new(p, 7);
        for _ in 0..1_000 {
            assert_eq!(a.next_arrival_us(), b.next_arrival_us());
        }
    }

    #[test]
    fn mmpp_long_run_rate_matches_mean() {
        let p = ArrivalProcess::bursty(8_000.0, 4.0);
        let expected = p.mean_rate_per_sec();
        let mut s = ArrivalSampler::new(p, 3);
        let n = 200_000;
        let mut last = 0;
        for _ in 0..n {
            last = s.next_arrival_us();
        }
        let observed = n as f64 / (last as f64 / 1e6);
        let err = (observed - expected).abs() / expected;
        assert!(err < 0.1, "observed {observed:.0}/s vs expected {expected:.0}/s");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Squared coefficient of variation of the gaps: 1 for Poisson,
        // substantially above 1 for a rate-modulated process.
        let cv2 = |mut s: ArrivalSampler| {
            let (mut last, mut gaps) = (0u64, Vec::new());
            for _ in 0..100_000 {
                let t = s.next_arrival_us();
                gaps.push((t - last) as f64);
                last = t;
            }
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson =
            cv2(ArrivalSampler::new(ArrivalProcess::Poisson { rate_per_sec: 10_000.0 }, 1));
        let mmpp = cv2(ArrivalSampler::new(ArrivalProcess::bursty(10_000.0, 8.0), 1));
        assert!((0.9..1.1).contains(&poisson), "poisson CV² {poisson}");
        assert!(mmpp > 1.5, "MMPP CV² {mmpp} should exceed Poisson's 1");
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_tail() {
        let d = BoundedPareto::new(50.0, 50_000.0, 1.3);
        let mut rng = XorShift64Star::new(9);
        let n = 100_000;
        let mut max_seen = 0u64;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = d.sample_us(&mut rng);
            assert!((50..=50_000).contains(&x), "sample {x} out of bounds");
            max_seen = max_seen.max(x);
            sum += x;
        }
        // Heavy tail: the max dwarfs the mean, and the empirical mean
        // tracks the closed form.
        let mean = sum as f64 / n as f64;
        assert!(max_seen > 10_000, "tail never materialized (max {max_seen})");
        let expected = d.mean_us();
        let err = (mean - expected).abs() / expected;
        assert!(err < 0.1, "empirical mean {mean:.0} vs closed-form {expected:.0}");
    }

    #[test]
    fn bounded_pareto_alpha_one_mean_is_finite() {
        let d = BoundedPareto::new(100.0, 10_000.0, 1.0);
        let m = d.mean_us();
        assert!(m > 100.0 && m < 10_000.0, "alpha=1 mean {m}");
    }
}
