//! Cache-interference model.
//!
//! The paper's §2.1 identifies cache contention as the second drawback of
//! time-sharing: workers of different programs scheduled on the same core
//! evict each other's working sets, and co-runners pressure the shared
//! last-level cache. §4.1 additionally credits DWS's space-sharing with a
//! *locality bonus* (p-7 beating its solo baseline) because a compacted
//! program stops spanning sockets.
//!
//! The model charges a multiplicative slowdown to task execution:
//!
//! ```text
//! slowdown = 1 + cold + llc_other + llc_self + spread
//!   cold      = cold_penalty · mem                (inside the cold window)
//!   llc_other = llc_coeff · mem · P_other         (foreign socket pressure)
//!   llc_self  = llc_coeff · self_frac · mem · P_self
//!   spread    = spread_penalty · mem              (program spans >1 socket)
//! ```
//!
//! where `P_other`/`P_self` are the mean memory intensities that other
//! programs / the same program are currently driving into the socket from
//! *other* cores.

use crate::config::{CacheConfig, MachineConfig, SimTime};

/// Per-tick snapshot of who is driving memory traffic where.
#[derive(Debug, Clone)]
pub struct PressureSnapshot {
    /// Sum of running-task memory intensity per socket.
    socket_mem: Vec<f64>,
    /// Same, broken down per program: `[prog][socket]`.
    prog_socket_mem: Vec<Vec<f64>>,
    /// Number of sockets on which each program has an awake worker with a
    /// task in flight.
    prog_spread: Vec<u32>,
    /// Machine-wide bandwidth demand (sum of running-task intensities,
    /// inflated for socket-spread programs). Filled in by
    /// [`PressureSnapshot::finalize`].
    global_demand: f64,
    spread_bw_factor: f64,
}

impl PressureSnapshot {
    /// Creates an empty snapshot for `programs` programs.
    pub fn new(programs: usize, sockets: usize) -> Self {
        Self::with_spread_bw(programs, sockets, CacheConfig::default().spread_bw_factor)
    }

    /// As [`PressureSnapshot::new`] with an explicit coherence-inflation
    /// factor for spread programs.
    pub fn with_spread_bw(programs: usize, sockets: usize, spread_bw_factor: f64) -> Self {
        PressureSnapshot {
            socket_mem: vec![0.0; sockets],
            prog_socket_mem: vec![vec![0.0; sockets]; programs],
            prog_spread: vec![0; programs],
            global_demand: 0.0,
            spread_bw_factor,
        }
    }

    /// Records that `prog` is running a task of intensity `mem` on a core
    /// of `socket` this tick.
    pub fn add_running(&mut self, prog: usize, socket: usize, mem: f64) {
        self.socket_mem[socket] += mem;
        self.prog_socket_mem[prog][socket] += mem;
    }

    /// Finalizes spread counts and the global bandwidth demand (call once
    /// after all `add_running`s).
    pub fn finalize(&mut self) {
        self.global_demand = 0.0;
        for (p, per_socket) in self.prog_socket_mem.iter().enumerate() {
            let spread = per_socket.iter().filter(|&&m| m > 0.0).count() as u32;
            self.prog_spread[p] = spread;
            let total: f64 = per_socket.iter().sum();
            let inflation = if spread > 1 { 1.0 + self.spread_bw_factor } else { 1.0 };
            self.global_demand += total * inflation;
        }
    }

    /// Machine-wide bandwidth demand after inflation.
    pub fn global_demand(&self) -> f64 {
        self.global_demand
    }

    /// Memory pressure other programs place on `socket`, excluding `prog`.
    pub fn other_pressure(&self, prog: usize, socket: usize) -> f64 {
        self.socket_mem[socket] - self.prog_socket_mem[prog][socket]
    }

    /// Memory pressure `prog` itself places on `socket`.
    pub fn self_pressure(&self, prog: usize, socket: usize) -> f64 {
        self.prog_socket_mem[prog][socket]
    }

    /// Sockets `prog` is actively using.
    pub fn spread(&self, prog: usize) -> u32 {
        self.prog_spread[prog]
    }

    /// The socket carrying most of `prog`'s running memory traffic (its
    /// data's likely home). Ties resolve to the lower socket id.
    pub fn primary_socket(&self, prog: usize) -> usize {
        let per_socket = &self.prog_socket_mem[prog];
        let mut best = 0;
        for (s, &m) in per_socket.iter().enumerate() {
            if m > per_socket[best] {
                best = s;
            }
        }
        best
    }
}

/// The slowdown formula with its configuration.
#[derive(Debug, Clone)]
pub struct CacheModel {
    cfg: CacheConfig,
    cores_per_socket: f64,
}

impl CacheModel {
    /// Builds the model for a machine.
    pub fn new(cfg: CacheConfig, machine: &MachineConfig) -> Self {
        CacheModel { cfg, cores_per_socket: machine.cores_per_socket() as f64 }
    }

    /// Cold-window length (used by the OS on cross-program switches).
    pub fn cold_period_us(&self) -> SimTime {
        self.cfg.cold_period_us
    }

    /// Computes the slowdown for `prog` executing work of intensity `mem`
    /// on a core of `socket` at time `now`, where the core's cold window
    /// ends at `cold_until`.
    pub fn slowdown(
        &self,
        snapshot: &PressureSnapshot,
        prog: usize,
        socket: usize,
        mem: f64,
        now: SimTime,
        cold_until: SimTime,
    ) -> f64 {
        if mem <= 0.0 {
            return 1.0;
        }
        let mut s = 1.0;
        if now < cold_until {
            s += self.cfg.cold_penalty * mem;
        }
        // Normalize pressure by socket size so the coefficient is
        // machine-shape independent; subtract this task's own contribution
        // from self pressure (a task does not contend with itself).
        let other = snapshot.other_pressure(prog, socket) / self.cores_per_socket;
        let own = (snapshot.self_pressure(prog, socket) - mem).max(0.0) / self.cores_per_socket;
        s += self.cfg.llc_coeff * mem * other;
        s += self.cfg.llc_coeff * self.cfg.self_llc_fraction * mem * own;
        // Positional spread penalty: when the program spans sockets, work
        // running *off* its primary socket pays the coherence/locality tax
        // (its data lives with the majority of its traffic).
        if snapshot.spread(prog) > 1 && socket != snapshot.primary_socket(prog) {
            s += self.cfg.spread_penalty * mem;
        }
        // Global DRAM bandwidth saturation: beyond capacity, memory-bound
        // work slows in proportion to the overshoot.
        let overshoot = (snapshot.global_demand() / self.cfg.bw_capacity - 1.0).max(0.0);
        s += overshoot * mem;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CacheModel {
        CacheModel::new(CacheConfig::default(), &MachineConfig::default())
    }

    #[test]
    fn compute_bound_work_is_never_slowed() {
        let m = model();
        let mut snap = PressureSnapshot::new(2, 2);
        snap.add_running(1, 0, 1.0);
        snap.finalize();
        assert_eq!(m.slowdown(&snap, 0, 0, 0.0, 0, 1_000), 1.0);
    }

    #[test]
    fn cold_window_applies_only_before_expiry() {
        let m = model();
        let mut snap = PressureSnapshot::new(2, 2);
        snap.finalize();
        let cold = m.slowdown(&snap, 0, 0, 1.0, 100, 200);
        let warm = m.slowdown(&snap, 0, 0, 1.0, 300, 200);
        assert!(cold > warm);
        assert!((cold - warm - CacheConfig::default().cold_penalty).abs() < 1e-9);
    }

    #[test]
    fn foreign_pressure_slows_more_than_own() {
        let m = model();
        // Scenario A: other program drives 4 units into our socket.
        let mut foreign = PressureSnapshot::new(2, 2);
        for _ in 0..4 {
            foreign.add_running(1, 0, 1.0);
        }
        foreign.add_running(0, 0, 0.8);
        foreign.finalize();
        // Scenario B: our own program drives the same 4 units.
        let mut own = PressureSnapshot::new(2, 2);
        for _ in 0..4 {
            own.add_running(0, 0, 1.0);
        }
        own.add_running(0, 0, 0.8);
        own.finalize();
        let s_foreign = m.slowdown(&foreign, 0, 0, 0.8, 1_000, 0);
        let s_own = m.slowdown(&own, 0, 0, 0.8, 1_000, 0);
        assert!(s_foreign > s_own, "foreign {s_foreign} vs own {s_own}");
        assert!(s_own > 1.0);
    }

    #[test]
    fn spread_penalty_charged_off_primary_socket() {
        let m = model();
        // Program 0 runs mostly on socket 0 but has one task on socket 1.
        let mut spread = PressureSnapshot::new(1, 2);
        spread.add_running(0, 0, 0.9);
        spread.add_running(0, 0, 0.9);
        spread.add_running(0, 1, 0.9);
        spread.finalize();
        assert_eq!(spread.primary_socket(0), 0);
        let on_primary = m.slowdown(&spread, 0, 0, 0.9, 0, 0);
        let off_primary = m.slowdown(&spread, 0, 1, 0.9, 0, 0);
        // Off-primary pays the spread tax (partly offset by lower
        // same-socket self-LLC pressure there).
        assert!(
            off_primary > on_primary + 0.9 * CacheConfig::default().spread_penalty * 0.6,
            "off {off_primary} vs on {on_primary}"
        );
        // A fully compact program pays no spread anywhere.
        let mut compact = PressureSnapshot::new(1, 2);
        compact.add_running(0, 0, 0.9);
        compact.add_running(0, 0, 0.9);
        compact.finalize();
        let s_compact = m.slowdown(&compact, 0, 0, 0.9, 0, 0);
        assert!(on_primary <= s_compact + 1e-9);
    }

    #[test]
    fn own_contribution_excluded_from_self_pressure() {
        let m = model();
        let mut snap = PressureSnapshot::new(1, 1);
        snap.add_running(0, 0, 1.0); // only this task on the socket
        snap.finalize();
        // Alone on the socket and warm: no slowdown at all.
        let s = m.slowdown(&snap, 0, 0, 1.0, 1_000, 0);
        assert!((s - 1.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn pressure_is_per_socket() {
        let m = model();
        let mut snap = PressureSnapshot::new(2, 2);
        // Foreign load entirely on socket 1.
        for _ in 0..6 {
            snap.add_running(1, 1, 1.0);
        }
        snap.finalize();
        let on_socket0 = m.slowdown(&snap, 0, 0, 1.0, 1_000, 0);
        let on_socket1 = m.slowdown(&snap, 0, 1, 1.0, 1_000, 0);
        assert!((on_socket0 - 1.0).abs() < 1e-12);
        assert!(on_socket1 > 1.2);
    }
}
