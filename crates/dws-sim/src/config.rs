//! Simulation configuration: the machine, the OS scheduler, the cache
//! model, and the scheduling-policy parameters of the paper.
//!
//! Defaults model the paper's testbed: two quad-core Intel Xeon E5620
//! packages with Hyper-Threading — 16 logical cores over 2 sockets — under
//! Linux 2.6.32 (§4 of the paper).

use serde::{Deserialize, Serialize};

use crate::policy::Policy;

/// Time is measured in simulated microseconds throughout the simulator.
pub type SimTime = u64;

/// Description of the simulated hardware.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of logical cores (paper: 16).
    pub cores: usize,
    /// Number of sockets; cores are split contiguously across sockets
    /// (paper: 2, so cores 0..8 are socket 0 and 8..16 socket 1).
    pub sockets: usize,
    /// Simulation tick in microseconds. Each scheduled thread advances by
    /// at most one tick of CPU time before the OS re-evaluates the core.
    pub tick_us: SimTime,
    /// OS preemption quantum in microseconds (Linux CFS-era timeslice
    /// magnitude; threads on a shared core are preempted at this rate).
    pub quantum_us: SimTime,
    /// Cost charged to a thread when the core context-switches to it.
    pub ctx_switch_us: SimTime,
    /// Per-core relative clock speeds in `(0, 1]` (1.0 = nominal). Empty
    /// means a symmetric machine. Models the asymmetric multi-core
    /// architectures of the paper's §4.4 extension discussion.
    #[serde(default)]
    pub core_speeds: Vec<f64>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 16,
            sockets: 2,
            tick_us: 10,
            quantum_us: 4_000,
            ctx_switch_us: 5,
            core_speeds: Vec::new(),
        }
    }
}

impl MachineConfig {
    /// Socket housing `core`.
    pub fn socket_of(&self, core: usize) -> usize {
        debug_assert!(core < self.cores);
        core * self.sockets / self.cores
    }

    /// Number of cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores / self.sockets
    }

    /// Relative clock speed of `core` (1.0 on symmetric machines).
    pub fn speed_of(&self, core: usize) -> f64 {
        self.core_speeds.get(core).copied().unwrap_or(1.0)
    }

    /// An asymmetric machine: the first half of the cores run at nominal
    /// speed, the second half at `slow_speed` (big.LITTLE-style).
    pub fn asymmetric(cores: usize, sockets: usize, slow_speed: f64) -> MachineConfig {
        assert!(slow_speed > 0.0 && slow_speed <= 1.0);
        let fast = cores / 2;
        let core_speeds = (0..cores).map(|c| if c < fast { 1.0 } else { slow_speed }).collect();
        MachineConfig { cores, sockets, core_speeds, ..Default::default() }
    }
}

/// Parameters of the cache-interference model (§2.1 drawback 2, §4.1's
/// locality discussion). The model charges multiplicative slowdowns to
/// memory-intensive work:
///
/// * **cold-cache penalty** — after a core switches between threads of
///   *different programs*, the incoming thread's memory accesses are slowed
///   for `cold_period_us` (its working set was evicted);
/// * **LLC contention** — work is slowed in proportion to the memory
///   pressure other programs place on the same socket's shared cache;
/// * **socket-spread penalty** — a program actively running on more than
///   one socket pays a coherence/locality tax on memory-intensive work
///   (this is what lets p-7/SOR beat its own 16-core solo baseline when
///   DWS compacts it onto one socket, §4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Duration of the cold-cache window after a cross-program switch.
    pub cold_period_us: SimTime,
    /// Peak slowdown multiplier applied during the cold window, scaled by
    /// the task's memory intensity: `1 + cold_penalty * mem`.
    pub cold_penalty: f64,
    /// LLC contention coefficient: slowdown `llc_coeff * mem * pressure`
    /// where pressure is the mean memory intensity other programs are
    /// driving into this socket.
    pub llc_coeff: f64,
    /// Same-program LLC contention is real but weaker (shared working
    /// set); scaled by this fraction of `llc_coeff`.
    pub self_llc_fraction: f64,
    /// Penalty for a program spanning multiple sockets: `spread_penalty *
    /// mem` while > 1 socket hosts active workers of the program.
    pub spread_penalty: f64,
    /// Machine-wide memory-bandwidth capacity in units of summed task
    /// memory intensity; when the running tasks' total demand exceeds it,
    /// memory-bound work slows proportionally (§2.2's "contention for
    /// the caches and DRAM").
    pub bw_capacity: f64,
    /// A program spanning multiple sockets adds coherence traffic: its
    /// contribution to global bandwidth demand is inflated by this factor.
    pub spread_bw_factor: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            // Refilling a multi-MB working set after eviction takes on
            // the order of a millisecond on the paper's Xeon.
            cold_period_us: 1_000,
            cold_penalty: 1.0,
            llc_coeff: 0.55,
            self_llc_fraction: 0.35,
            spread_penalty: 0.3,
            bw_capacity: 10.0,
            spread_bw_factor: 0.15,
        }
    }
}

/// Parameters of the work-stealing scheduler under simulation, including
/// the paper's knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Which multiprogramming policy this program uses.
    pub policy: Policy,
    /// Consecutive failed steals before a DWS worker sleeps
    /// (paper §3.2/§4.3; default k = 16 on the 16-core platform).
    pub t_sleep: u32,
    /// Coordinator period in microseconds (paper §3.4: T = 10 ms).
    pub coord_period_us: SimTime,
    /// CPU cost of a successful steal (victim deque CAS + cache transfer).
    pub steal_cost_us: f64,
    /// CPU cost of a failed steal attempt (victim probe).
    pub steal_fail_cost_us: f64,
    /// CPU cost of popping the local deque.
    pub pop_cost_us: f64,
    /// CPU cost of spawning one child task.
    pub spawn_cost_us: f64,
    /// Latency between a wake decision and the worker becoming runnable
    /// (futex wake + OS enqueue).
    pub wake_latency_us: SimTime,
    /// Max tasks one steal may transfer (the ceil-half rule still binds;
    /// `1` disables batching). Mirrors `dws-rt`'s `steal_batch_limit`.
    #[serde(default = "default_steal_batch_limit")]
    pub steal_batch_limit: usize,
}

/// Serde default for configs serialized before batching existed.
fn default_steal_batch_limit() -> usize {
    8
}

impl SchedConfig {
    /// Scheduler configuration for a given policy with paper defaults for
    /// a `cores`-core machine (`T = 10 ms`; `T_SLEEP = 2k` — the paper's
    /// §4.3 finds k and 2k equally good, and 2k is the robust choice
    /// here: a worker's patience must cover a transient drought *plus*
    /// one full victim sweep, which is k−1 probes by itself).
    pub fn for_policy(policy: Policy, cores: usize) -> Self {
        SchedConfig {
            policy,
            t_sleep: 2 * cores as u32,
            coord_period_us: 10_000,
            // A successful steal pays a CAS plus a cold task transfer; a
            // failed attempt pays a remote deque probe (cache miss) plus
            // the random-victim bookkeeping. These magnitudes set the
            // T_SLEEP "patience window": with the paper's T_SLEEP = k = 16
            // a worker tolerates ~45 µs of drought before sleeping —
            // longer than wave-boundary stragglers, far shorter than a
            // serial phase.
            steal_cost_us: 1.8,
            steal_fail_cost_us: 4.0,
            pop_cost_us: 0.2,
            spawn_cost_us: 0.3,
            wake_latency_us: 30,
            steal_batch_limit: default_steal_batch_limit(),
        }
    }
}

/// How the initial equipartition assigns core slices to programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Placement {
    /// The paper's scheme: adjacent `k/m`-core slices in program order.
    #[default]
    Adjacent,
    /// Ablation: core `c` homed to program `c mod m` (slices straddle
    /// sockets; isolates the locality benefit of adjacency).
    Interleaved,
    /// §4.4 extension: adjacent slices, but slice order chosen by demand
    /// class — memory-intensive programs take the slower cores,
    /// compute-intensive programs the faster ones (meaningful on
    /// asymmetric machines; equals `Adjacent` otherwise).
    DemandAware,
}

/// Everything a simulation run needs besides the workloads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimConfig {
    /// Hardware description.
    pub machine: MachineConfig,
    /// Cache-interference model parameters.
    pub cache: CacheConfig,
    /// Master seed; all stochastic streams derive from it.
    pub seed: u64,
    /// Initial home-slice placement.
    #[serde(default)]
    pub placement: Placement,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_matches_paper_testbed() {
        let m = MachineConfig::default();
        assert_eq!(m.cores, 16);
        assert_eq!(m.sockets, 2);
        assert_eq!(m.cores_per_socket(), 8);
    }

    #[test]
    fn socket_mapping_is_contiguous() {
        let m = MachineConfig::default();
        for c in 0..8 {
            assert_eq!(m.socket_of(c), 0);
        }
        for c in 8..16 {
            assert_eq!(m.socket_of(c), 1);
        }
    }

    #[test]
    fn socket_mapping_handles_other_shapes() {
        let m = MachineConfig { cores: 12, sockets: 3, ..Default::default() };
        assert_eq!(m.cores_per_socket(), 4);
        assert_eq!(m.socket_of(0), 0);
        assert_eq!(m.socket_of(3), 0);
        assert_eq!(m.socket_of(4), 1);
        assert_eq!(m.socket_of(11), 2);
    }

    #[test]
    fn paper_default_t_sleep_is_2k() {
        // §4.3: "we suggest choosing T_SLEEP = k or 2k on a k-core
        // system"; we default to 2k (see for_policy docs).
        let s = SchedConfig::for_policy(Policy::Dws, 16);
        assert_eq!(s.t_sleep, 32);
        assert_eq!(s.coord_period_us, 10_000);
    }
}
