//! The DWS coordinator (paper §3.3).
//!
//! Each program's coordinator wakes every `T` ms, reads `N_b` (queued
//! tasks) and `N_a` (active workers), computes the wake target
//! `N_w = N_b / N_a` (Eq. 1), and then applies the three constraint cases
//! against the core-allocation table:
//!
//! 1. `N_w ≤ N_f` — wake workers on `N_w` randomly chosen free cores;
//! 2. `N_f < N_w ≤ N_f + N_r` — take all free cores, then reclaim
//!    `N_w − N_f` of the program's own cores from their current users;
//! 3. `N_w > N_f + N_r` — take everything available (`N_f + N_r`) but no
//!    more: a program never touches cores that other programs own and have
//!    not released (third constraint).
//!
//! The decision is computed as a pure function of the observed state so it
//! can be tested exhaustively; applying it (acquiring table slots, waking
//! workers) is the caller's job.

use crate::alloc_table::AllocTable;
use crate::rng::XorShift64Star;

/// Inputs the coordinator observes at one invocation.
#[derive(Debug, Clone, Copy)]
pub struct CoordObservation {
    /// `N_b`: queued tasks across the program's deques.
    pub queued_tasks: usize,
    /// `N_a`: awake workers.
    pub active_workers: usize,
    /// Workers currently asleep (upper bound on wakes).
    pub sleeping_workers: usize,
}

/// Which of the paper's three cases applied (for metrics/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordCase {
    /// `N_w = 0` (or nobody sleeping): nothing to do.
    NoAction,
    /// Case 1: enough free cores.
    FreeOnly,
    /// Case 2: free cores plus some reclaimed home cores.
    FreePlusReclaim,
    /// Case 3: demand exceeds supply; take all free + all reclaimable.
    TakeAllAvailable,
}

/// The coordinator's plan: which cores to take and how.
#[derive(Debug, Clone)]
pub struct CoordDecision {
    /// Eq. 1 target after the deadlock guard and sleeping-worker cap.
    pub n_w: usize,
    /// Free cores to acquire (wake our worker on each).
    pub take_free: Vec<usize>,
    /// Own home cores to reclaim from current users (wake our worker).
    pub reclaim: Vec<usize>,
    /// Which case applied.
    pub case: CoordCase,
}

impl CoordDecision {
    /// Total workers this decision wakes.
    pub fn total_wakes(&self) -> usize {
        self.take_free.len() + self.reclaim.len()
    }
}

/// Computes the raw Eq. 1 wake target `N_w = N_b / N_a` with the
/// divide-by-zero guard: a program whose workers are all asleep but that
/// has queued tasks must wake at least one worker or it deadlocks (the
/// paper implicitly assumes `N_a ≥ 1`; with `T_SLEEP` sleeping the main
/// worker after its run completes, `N_a = 0` is reachable).
#[allow(clippy::manual_checked_ops)]
pub fn eq1_wake_target(queued_tasks: usize, active_workers: usize) -> usize {
    // Not a checked division: the zero-active case deliberately returns
    // the queue length (deadlock guard; see module docs).
    if active_workers == 0 {
        // All asleep: demand is the queue itself.
        queued_tasks
    } else {
        queued_tasks / active_workers
    }
}

/// Full DWS decision against the allocation table (cases 1-3).
///
/// `prog` is the deciding program; `rng` drives the random free-core
/// selection the paper specifies in case 1.
pub fn decide_dws(
    prog: usize,
    obs: CoordObservation,
    table: &AllocTable,
    rng: &mut XorShift64Star,
) -> CoordDecision {
    let n_w = eq1_wake_target(obs.queued_tasks, obs.active_workers).min(obs.sleeping_workers);
    if n_w == 0 {
        return CoordDecision {
            n_w,
            take_free: vec![],
            reclaim: vec![],
            case: CoordCase::NoAction,
        };
    }

    let mut free = table.free_cores();
    let reclaimable = table.reclaimable_cores(prog);
    let n_f = free.len();
    let n_r = reclaimable.len();

    if n_w <= n_f {
        // Case 1: randomly select N_w free cores (Fisher-Yates prefix).
        for i in 0..n_w {
            let j = i + rng.next_below(free.len() - i);
            free.swap(i, j);
        }
        free.truncate(n_w);
        CoordDecision { n_w, take_free: free, reclaim: vec![], case: CoordCase::FreeOnly }
    } else if n_w <= n_f + n_r {
        // Case 2: all free cores + (N_w - N_f) reclaimed home cores.
        let mut reclaim = reclaimable;
        reclaim.truncate(n_w - n_f);
        CoordDecision { n_w, take_free: free, reclaim, case: CoordCase::FreePlusReclaim }
    } else {
        // Case 3: all free + all reclaimable, nothing more.
        CoordDecision {
            n_w,
            take_free: free,
            reclaim: reclaimable,
            case: CoordCase::TakeAllAvailable,
        }
    }
}

/// DWS-NC decision (§4.2 ablation): same Eq. 1 target, but wake arbitrary
/// sleeping workers with no regard for core occupancy. Returns how many
/// workers to wake; the caller picks which.
pub fn decide_nc(obs: CoordObservation) -> usize {
    eq1_wake_target(obs.queued_tasks, obs.active_workers).min(obs.sleeping_workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(b: usize, a: usize, s: usize) -> CoordObservation {
        CoordObservation { queued_tasks: b, active_workers: a, sleeping_workers: s }
    }

    #[test]
    fn eq1_is_floor_division() {
        assert_eq!(eq1_wake_target(16, 8), 2);
        assert_eq!(eq1_wake_target(7, 8), 0);
        assert_eq!(eq1_wake_target(8, 8), 1);
        assert_eq!(eq1_wake_target(100, 4), 25);
    }

    #[test]
    fn eq1_guards_all_asleep() {
        assert_eq!(eq1_wake_target(5, 0), 5);
        assert_eq!(eq1_wake_target(0, 0), 0);
    }

    #[test]
    fn no_action_when_few_tasks() {
        let table = AllocTable::equipartition(8, 2);
        let mut rng = XorShift64Star::new(1);
        let d = decide_dws(0, obs(3, 4, 4), &table, &mut rng);
        assert_eq!(d.case, CoordCase::NoAction);
        assert_eq!(d.total_wakes(), 0);
    }

    #[test]
    fn case1_takes_only_free_cores() {
        let mut table = AllocTable::equipartition(8, 2);
        // Program 1 releases two of its cores.
        table.release(4, 1);
        table.release(5, 1);
        let mut rng = XorShift64Star::new(2);
        // Program 0 wants 2 workers: exactly the free supply.
        let d = decide_dws(0, obs(8, 4, 4), &table, &mut rng);
        assert_eq!(d.case, CoordCase::FreeOnly);
        assert_eq!(d.take_free.len(), 2);
        assert!(d.reclaim.is_empty());
        for c in &d.take_free {
            assert!([4, 5].contains(c));
        }
    }

    #[test]
    fn case1_random_selection_is_a_subset_of_free() {
        let mut table = AllocTable::equipartition(16, 2);
        for c in 8..16 {
            table.release(c, 1);
        }
        let mut rng = XorShift64Star::new(3);
        let d = decide_dws(0, obs(24, 8, 8), &table, &mut rng);
        // N_w = 3 of 8 free cores.
        assert_eq!(d.case, CoordCase::FreeOnly);
        assert_eq!(d.take_free.len(), 3);
        let mut uniq = d.take_free.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "no duplicate core selected");
        assert!(uniq.iter().all(|c| (8..16).contains(c)));
    }

    #[test]
    fn case2_reclaims_exactly_the_shortfall() {
        let mut table = AllocTable::equipartition(8, 2);
        // Program 0 released cores 0,1 earlier; program 1 took them.
        table.release(0, 0);
        table.release(1, 0);
        table.acquire_free(0, 1);
        table.acquire_free(1, 1);
        // One free core exists: program 1 released core 7.
        table.release(7, 1);
        let mut rng = XorShift64Star::new(4);
        // Program 0: N_w = 3 > N_f = 1, but N_f + N_r = 3.
        let d = decide_dws(0, obs(6, 2, 6), &table, &mut rng);
        assert_eq!(d.case, CoordCase::FreePlusReclaim);
        assert_eq!(d.take_free, vec![7]);
        assert_eq!(d.reclaim.len(), 2);
        assert!(d.reclaim.iter().all(|c| [0, 1].contains(c)));
        assert_eq!(d.total_wakes(), 3);
    }

    #[test]
    fn case3_caps_at_available_supply() {
        let mut table = AllocTable::equipartition(8, 2);
        table.release(0, 0);
        table.acquire_free(0, 1); // N_r = 1 for program 0
        table.release(7, 1); // N_f = 1
        let mut rng = XorShift64Star::new(5);
        // Program 0 wants 6 but only 2 are available.
        let d = decide_dws(0, obs(18, 3, 5), &table, &mut rng);
        assert_eq!(d.case, CoordCase::TakeAllAvailable);
        assert_eq!(d.total_wakes(), 2);
        assert_eq!(d.take_free, vec![7]);
        assert_eq!(d.reclaim, vec![0]);
    }

    #[test]
    fn never_wakes_more_than_sleeping_workers() {
        let mut table = AllocTable::equipartition(8, 2);
        for c in 4..8 {
            table.release(c, 1);
        }
        let mut rng = XorShift64Star::new(6);
        // N_w would be 10, but only 1 worker sleeps.
        let d = decide_dws(0, obs(40, 4, 1), &table, &mut rng);
        assert_eq!(d.total_wakes(), 1);
    }

    #[test]
    fn third_constraint_never_touches_foreign_unreleased_cores() {
        // No free cores, nothing reclaimable: demand must go unmet.
        let table = AllocTable::equipartition(8, 2);
        let mut rng = XorShift64Star::new(7);
        let d = decide_dws(0, obs(100, 4, 4), &table, &mut rng);
        assert_eq!(d.case, CoordCase::TakeAllAvailable);
        assert_eq!(d.total_wakes(), 0);
    }

    #[test]
    fn nc_ignores_the_table_entirely() {
        assert_eq!(decide_nc(obs(16, 4, 12)), 4);
        assert_eq!(decide_nc(obs(16, 4, 2)), 2);
        assert_eq!(decide_nc(obs(2, 4, 12)), 0);
        assert_eq!(decide_nc(obs(9, 0, 12)), 9);
    }

    #[test]
    fn exactly_one_case_applies() {
        // Sweep a grid of observations and table states; the decision must
        // always be internally consistent.
        let mut rng = XorShift64Star::new(8);
        for released0 in 0..4 {
            for released1 in 0..4 {
                for taken in 0..=released0 {
                    let mut table = AllocTable::equipartition(8, 2);
                    for c in 0..released0 {
                        table.release(c, 0);
                    }
                    for c in 4..4 + released1 {
                        table.release(c, 1);
                    }
                    for c in 0..taken {
                        table.acquire_free(c, 1);
                    }
                    for nb in [0usize, 4, 12, 40] {
                        for na in [0usize, 1, 4] {
                            let sleeping = 8 - na.min(8);
                            let d = decide_dws(0, obs(nb, na, sleeping), &table, &mut rng);
                            let n_f = table.n_free();
                            let n_r = table.n_reclaimable(0);
                            assert!(d.total_wakes() <= n_f + n_r);
                            assert!(d.total_wakes() <= sleeping.max(d.n_w));
                            assert!(d.take_free.len() <= n_f);
                            assert!(d.reclaim.len() <= n_r);
                            match d.case {
                                CoordCase::NoAction => assert_eq!(d.total_wakes(), 0),
                                CoordCase::FreeOnly => {
                                    assert!(d.reclaim.is_empty());
                                    assert_eq!(d.take_free.len(), d.n_w);
                                }
                                CoordCase::FreePlusReclaim => {
                                    assert_eq!(d.total_wakes(), d.n_w);
                                    assert_eq!(d.take_free.len(), n_f);
                                }
                                CoordCase::TakeAllAvailable => {
                                    assert_eq!(d.total_wakes(), n_f + n_r);
                                    assert!(d.n_w > n_f + n_r);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
