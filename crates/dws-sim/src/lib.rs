//! # dws-sim — deterministic multicore simulator for the DWS reproduction
//!
//! The paper *"DWS: Demand-aware Work-Stealing in Multi-programmed
//! Multi-core Architectures"* (Chen, Zheng, Guo — PMAM'14 / PPoPP 2014)
//! evaluates its scheduler on a 16-core, 2-socket Xeon testbed. This crate
//! is a discrete-event model of that setup, faithful to the mechanisms the
//! paper's arguments rest on:
//!
//! * per-core OS run queues with quantum preemption, `sched_yield`
//!   semantics and sleep/wake ([`os`]);
//! * a cache-interference model charging cold-cache, shared-LLC and
//!   socket-spread penalties to memory-intensive work ([`cache`]);
//! * work-stealing programs with per-worker deques executing fork-join
//!   workloads whose parallelism varies over time ([`program`],
//!   [`workload`]);
//! * the paper's Algorithm 1 worker loop, the shared core-allocation
//!   table (Table 1) and the §3.3 coordinator with Eq. 1 and its three
//!   constraint cases ([`alloc_table`], [`coordinator`]);
//! * the five compared schedulers — WS, ABP, EP, DWS, DWS-NC
//!   ([`policy`]).
//!
//! Simulations are pure functions of their configuration and seed, so
//! every figure of the paper can be regenerated deterministically
//! (see the `dws-harness` crate).
//!
//! ```
//! use dws_sim::{
//!     run_pair, Policy, ProgramSpec, RunOptions, SchedConfig, SimConfig,
//!     PhaseSpec, WorkloadSpec,
//! };
//!
//! let wl = |name: &str| WorkloadSpec {
//!     name: name.into(),
//!     phases: vec![PhaseSpec::Recursive {
//!         depth: 6, branch: 2, leaf_work_us: 50.0, node_work_us: 1.0,
//!         merge_work_us: 4.0, merge_grows: true, mem: 0.4, jitter: 0.1,
//!     }],
//! };
//! let cfg = SimConfig::default(); // 16 cores, 2 sockets
//! let report = run_pair(
//!     cfg,
//!     ProgramSpec { workload: wl("a"), sched: SchedConfig::for_policy(Policy::Dws, 16) },
//!     ProgramSpec { workload: wl("b"), sched: SchedConfig::for_policy(Policy::Dws, 16) },
//!     RunOptions::default(),
//! );
//! assert!(report.programs[0].mean_run_time_us.unwrap() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod alloc_table;
pub mod arrival;
pub mod cache;
pub mod config;
pub mod coordinator;
pub mod machine;
pub mod metrics;
pub mod os;
pub mod policy;
pub mod program;
pub mod rng;
pub mod telemetry;
pub mod trace;
pub mod workload;

pub use alloc_table::{AllocTable, ProgId, Slot};
pub use arrival::{ArrivalProcess, ArrivalSampler, BoundedPareto};
pub use config::{CacheConfig, MachineConfig, Placement, SchedConfig, SimConfig, SimTime};
pub use coordinator::{
    decide_dws, decide_nc, eq1_wake_target, CoordCase, CoordDecision, CoordObservation,
};
pub use machine::{
    quantile_nearest, run_pair, run_solo, ProgramReport, ProgramSpec, RunOptions, SimLedger,
    SimReport, Simulator,
};
pub use metrics::ProgramMetrics;
pub use policy::Policy;
pub use rng::XorShift64Star;
pub use telemetry::{
    frames_to_jsonl, CoordSample, CoreSample, CounterSample, LatencySample, TelemetryFrame,
    WorkerSample,
};
pub use trace::{SchedEvent, Trace, TraceEvent};
pub use workload::{PhaseSpec, WorkloadSpec};
