//! The top-level simulator: wires the OS model, cache model, allocation
//! table, coordinators and programs together and advances simulated time.
//!
//! One [`Simulator`] models the paper's experimental setup: a k-core
//! machine executing m co-running work-stealing programs, each restarting
//! its workload continuously (the overlapped-repetition methodology of
//! Fig. 3), until every program has completed a requested number of runs.

use crate::alloc_table::{AllocTable, Slot};
use crate::cache::{CacheModel, PressureSnapshot};
use crate::config::{SchedConfig, SimConfig, SimTime};
use crate::coordinator::{decide_dws, decide_nc, CoordObservation};
use crate::metrics::ProgramMetrics;
use crate::os::{Os, SliceResult, ThreadId};
use crate::policy::Policy;
use crate::program::{SimProgram, StepOutcome, WorkerState};
use crate::rng::XorShift64Star;
use crate::telemetry::{
    CoordSample, CoreSample, CounterSample, LatencySample, SimTelemetry, TelemetryFrame,
    WorkerSample,
};
use crate::trace::{SchedEvent, Trace};
use crate::workload::WorkloadSpec;

/// CPU cost charged to a random core each time a coordinator fires
/// (the "negligible overhead" of §3.4 / §4.4, made explicit).
const COORDINATOR_COST_US: f64 = 5.0;

/// Exact virtual-time core-allocation ledger plus demand-satisfaction
/// clocks — the sim mirror of `dws_rt::AllocLedger` (DESIGN §14).
///
/// Every table transition settles the slot's open interval against its
/// previous owner first, so at any instant
/// `Σ_p prog_us[p] + free_us + open-intervals == cores × now` — exact in
/// virtual time, with no clock noise. Always on: settling is O(1) per
/// transition and transitions happen at sleep/wake cadence.
#[derive(Debug)]
pub struct SimLedger {
    /// Per-core time of the last ownership change.
    last_us: Vec<SimTime>,
    /// Per-program settled core-µs.
    prog_us: Vec<u64>,
    /// Settled core-µs spent free.
    free_us: u64,
    /// Pending Eq. 1 demand-rise stamp per program.
    demand_rise: Vec<Option<SimTime>>,
    /// Pending demand-fall stamp per program.
    demand_fall: Vec<Option<SimTime>>,
    /// Demand-satisfaction latency samples per program (ns).
    alloc_ns: Vec<Vec<u64>>,
    /// Demand-release latency samples per program (ns).
    release_ns: Vec<Vec<u64>>,
}

impl SimLedger {
    fn new(cores: usize, programs: usize) -> Self {
        SimLedger {
            last_us: vec![0; cores],
            prog_us: vec![0; programs],
            free_us: 0,
            demand_rise: vec![None; programs],
            demand_fall: vec![None; programs],
            alloc_ns: vec![Vec::new(); programs],
            release_ns: vec![Vec::new(); programs],
        }
    }

    /// Settles `core`'s open interval against its current owner. Must run
    /// *before* any table mutation of that slot (harmless if the mutation
    /// then fails — nothing moved).
    fn settle(&mut self, table: &AllocTable, core: usize, now: SimTime) {
        let dt = now.saturating_sub(self.last_us[core]);
        match table.slot(core) {
            Slot::Used(p) => self.prog_us[p] += dt,
            Slot::Free => self.free_us += dt,
        }
        self.last_us[core] = now;
    }

    /// Settled per-program core-µs and free core-µs with every open
    /// interval virtually closed at `now`; conservation holds exactly:
    /// the grand total equals `cores × now`.
    pub fn settled(&self, table: &AllocTable, now: SimTime) -> (Vec<u64>, u64) {
        let mut prog_us = self.prog_us.clone();
        let mut free_us = self.free_us;
        for core in 0..self.last_us.len() {
            let dt = now.saturating_sub(self.last_us[core]);
            match table.slot(core) {
                Slot::Used(p) => prog_us[p] += dt,
                Slot::Free => free_us += dt,
            }
        }
        (prog_us, free_us)
    }

    fn note_rise(&mut self, prog: usize, now: SimTime) {
        self.demand_rise[prog].get_or_insert(now);
    }

    fn note_met(&mut self, prog: usize, satisfied_at: SimTime) {
        if let Some(rise) = self.demand_rise[prog].take() {
            self.alloc_ns[prog].push(satisfied_at.saturating_sub(rise).saturating_mul(1_000));
        }
    }

    fn note_fall(&mut self, prog: usize, now: SimTime) {
        self.demand_rise[prog] = None; // unmet demand evaporated, no sample
        self.demand_fall[prog].get_or_insert(now);
    }

    fn note_released(&mut self, prog: usize, now: SimTime) {
        if let Some(fall) = self.demand_fall[prog].take() {
            self.release_ns[prog].push(now.saturating_sub(fall).saturating_mul(1_000));
        }
    }

    /// All demand-satisfaction latency samples for `prog` so far (ns, in
    /// arrival order).
    pub fn alloc_latency_ns(&self, prog: usize) -> &[u64] {
        &self.alloc_ns[prog]
    }

    /// All demand-release latency samples for `prog` so far (ns).
    pub fn release_latency_ns(&self, prog: usize) -> &[u64] {
        &self.release_ns[prog]
    }

    #[cfg(debug_assertions)]
    fn check_conservation(&self, table: &AllocTable, now: SimTime) {
        let (prog_us, free_us) = self.settled(table, now);
        let total: u64 = prog_us.iter().sum::<u64>() + free_us;
        assert_eq!(
            total,
            self.last_us.len() as u64 * now,
            "ledger conservation: Σ prog + free must tile cores × elapsed"
        );
    }
}

/// Nearest-rank quantile over an unsorted sample set (`q` in [0, 1]);
/// 0 when empty. Used for the sim's exact-µs latency percentiles (the rt
/// side quantizes to log2 bucket bounds instead).
pub fn quantile_nearest(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One co-running program: its workload and scheduler configuration.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// The benchmark to run.
    pub workload: WorkloadSpec,
    /// Policy and parameters.
    pub sched: SchedConfig,
}

/// Options for a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Stop once every program completed this many runs...
    pub min_runs: usize,
    /// ...or when simulated time reaches this horizon, whichever first.
    pub max_time_us: SimTime,
    /// Runs to drop from each program's mean (cold start).
    pub warmup_runs: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { min_runs: 4, max_time_us: 60_000_000, warmup_runs: 1 }
    }
}

/// Results for one program after a simulation.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Benchmark name.
    pub name: String,
    /// Policy it ran under.
    pub policy: Policy,
    /// Mean run time (Eq. 2) in µs, warm-up excluded; `None` if the
    /// program never completed enough runs inside the horizon.
    pub mean_run_time_us: Option<f64>,
    /// Full metrics.
    pub metrics: ProgramMetrics,
}

/// Results of a simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-program results, in program order.
    pub programs: Vec<ProgramReport>,
    /// Simulated time at which the run stopped, µs.
    pub elapsed_us: SimTime,
    /// True if the horizon was hit before all programs finished.
    pub hit_horizon: bool,
}

/// The simulator itself.
pub struct Simulator {
    cfg: SimConfig,
    programs: Vec<SimProgram>,
    os: Os,
    cache: CacheModel,
    table: AllocTable,
    table_live: bool,
    now: SimTime,
    rng: XorShift64Star,
    next_coord: Vec<SimTime>,
    pending_wakes: Vec<(SimTime, ThreadId)>,
    trace: Trace,
    traced_runs: Vec<usize>,
    telemetry: Option<SimTelemetry>,
    /// Scheduled program deaths: (due time, program) — the sim analogue
    /// of SIGKILL mid-run.
    pending_kills: Vec<(SimTime, usize)>,
    /// Programs killed so far. A dead program's workers vanish without
    /// releasing their cores; survivors reap them via the lease protocol.
    dead: Vec<bool>,
    /// Dead programs whose lease a survivor has already fenced.
    fenced: Vec<bool>,
    /// Last simulated time each program's coordinator ran (its lease
    /// heartbeat, mirroring the rt coordinator's per-tick heartbeat).
    lease_hb: Vec<SimTime>,
    /// Heartbeat staleness before a dead program's lease expires.
    lease_timeout_us: SimTime,
    /// Per-program core-allocation ledger and demand clocks (DESIGN §14).
    ledger: SimLedger,
}

impl Simulator {
    /// Builds a simulator for `specs` co-running programs on the machine
    /// described by `cfg`. Worker placement and initial sleep states
    /// follow each program's policy (§3.1).
    pub fn new(cfg: SimConfig, specs: Vec<ProgramSpec>) -> Self {
        let k = cfg.machine.cores;
        let m = specs.len();
        assert!(m > 0, "need at least one program");
        assert!(k >= m, "need at least one core per program");

        let table = match cfg.placement {
            crate::config::Placement::Adjacent => AllocTable::equipartition(k, m),
            crate::config::Placement::Interleaved => AllocTable::equipartition_interleaved(k, m),
            crate::config::Placement::DemandAware => {
                // §4.4: adjacent slices, ordered so the most memory-bound
                // program lands on the slowest slice. Slice p of the plain
                // equipartition covers a contiguous core range whose mean
                // speed we compare.
                let plain = AllocTable::equipartition(k, m);
                let slice_speed = |p: usize| -> f64 {
                    let cores = plain.home_cores(p);
                    cores.iter().map(|&c| cfg.machine.speed_of(c)).sum::<f64>() / cores.len() as f64
                };
                // Programs sorted most-memory-bound first; slices sorted
                // slowest first; pair them up.
                let mut prog_order: Vec<usize> = (0..m).collect();
                prog_order.sort_by(|&a, &b| {
                    specs[b].workload.mean_mem().partial_cmp(&specs[a].workload.mean_mem()).unwrap()
                });
                let mut slice_order: Vec<usize> = (0..m).collect();
                slice_order.sort_by(|&a, &b| slice_speed(a).partial_cmp(&slice_speed(b)).unwrap());
                let mut homes = vec![0usize; k];
                for (rank, &slice) in slice_order.iter().enumerate() {
                    let prog = prog_order[rank];
                    for c in plain.home_cores(slice) {
                        homes[c] = prog;
                    }
                }
                AllocTable::with_homes(homes, m)
            }
        };
        let table_live = specs.iter().any(|s| s.sched.policy == Policy::Dws);
        let mut rng = XorShift64Star::new(cfg.seed ^ 0xA076_1D64_78BD_642F);
        let os = Os::new(cfg.machine.clone());
        let cache = CacheModel::new(cfg.cache.clone(), &cfg.machine);

        let mut programs = Vec::with_capacity(m);
        for (p, spec) in specs.into_iter().enumerate() {
            let home: Vec<usize> = table.home_cores(p);
            let share = home.len();
            let (cores, active): (Vec<usize>, Vec<bool>) = match spec.sched.policy {
                Policy::Ws => ((0..k).collect(), vec![true; k]),
                Policy::Abp | Policy::Bws => {
                    // OS spreads all m·k workers; stagger so each program's
                    // main worker lands on a different core.
                    let cores = (0..k).map(|i| (i + p * share) % k).collect();
                    (cores, vec![true; k])
                }
                Policy::Ep => {
                    // k workers confined to the program's static slice.
                    let cores = (0..k).map(|i| home[i % share]).collect();
                    (cores, vec![true; k])
                }
                Policy::Dws | Policy::DwsNc => {
                    // Worker i affined to core i; only home workers awake.
                    let active = (0..k).map(|c| table.home(c) == p).collect();
                    ((0..k).collect(), active)
                }
            };
            programs.push(SimProgram::new(
                p,
                spec.workload,
                spec.sched,
                &cores,
                &active,
                rng.next_u64(),
                true, // continuous restarts: overlapped-repetition method
            ));
        }

        let mut sim = Simulator {
            next_coord: programs.iter().map(|pr| pr.sched.coord_period_us.max(1)).collect(),
            cfg,
            programs,
            os,
            cache,
            table,
            table_live,
            now: 0,
            rng,
            pending_wakes: Vec::new(),
            trace: Trace::default(),
            traced_runs: vec![0; m],
            telemetry: None,
            pending_kills: Vec::new(),
            dead: vec![false; m],
            fenced: vec![false; m],
            lease_hb: vec![0; m],
            // 3× the paper's 10 ms coordinator period, matching
            // `RuntimeConfig::effective_lease_timeout`'s default.
            lease_timeout_us: 30_000,
            ledger: SimLedger::new(k, m),
        };
        sim.seed_run_queues();
        sim
    }

    fn seed_run_queues(&mut self) {
        // Enqueue awake workers on their cores, interleaving programs so
        // no program systematically goes first on shared cores.
        let k = self.cfg.machine.cores;
        for slot in 0..k {
            for (p, prog) in self.programs.iter().enumerate() {
                for (w, worker) in prog.workers.iter().enumerate() {
                    if worker.awake && worker.core == slot {
                        let _ = (p, w);
                    }
                }
            }
        }
        // Two passes to satisfy the borrow checker: collect, then enqueue.
        let mut to_enqueue: Vec<(usize, ThreadId)> = Vec::new();
        for (p, prog) in self.programs.iter().enumerate() {
            for (w, worker) in prog.workers.iter().enumerate() {
                if worker.awake {
                    to_enqueue.push((worker.core, (p, w)));
                }
            }
        }
        // Sort by core, then rotate program order per core for fairness.
        to_enqueue.sort_by_key(|&(core, (p, _))| (core, p));
        for (core, thread) in to_enqueue {
            self.os.enqueue(core, thread);
        }
    }

    /// Current simulated time, µs.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the allocation table (meaningful when a DWS program
    /// participates).
    pub fn alloc_table(&self) -> &AllocTable {
        &self.table
    }

    /// Read access to program state (tests / diagnostics).
    pub fn program(&self, p: usize) -> &SimProgram {
        &self.programs[p]
    }

    /// The core-allocation ledger: exact per-program core-time integrals
    /// plus demand-satisfaction latency samples (always on).
    pub fn ledger(&self) -> &SimLedger {
        &self.ledger
    }

    /// Per-program settled core-µs and free core-µs as of the current
    /// simulated time; the grand total is exactly `cores × now`.
    pub fn settled_core_us(&self) -> (Vec<u64>, u64) {
        self.ledger.settled(&self.table, self.now)
    }

    /// Turns on scheduling-event recording (at most `capacity` events).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Trace::enabled(capacity);
    }

    /// The recorded scheduling events (empty unless tracing is enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Turns on telemetry-frame sampling: every `period_us` of simulated
    /// time the simulator snapshots one [`TelemetryFrame`] per program
    /// into a ring of at most `capacity` frames (oldest evicted first) —
    /// the sim mirror of `dws_rt`'s sampler thread.
    pub fn enable_telemetry(&mut self, period_us: SimTime, capacity: usize) {
        self.telemetry =
            Some(SimTelemetry::new(self.programs.len(), period_us, capacity, self.now));
    }

    /// The sampled frames for `prog`, oldest first (empty unless
    /// [`Simulator::enable_telemetry`] was called).
    pub fn telemetry_frames(&self, prog: usize) -> Vec<TelemetryFrame> {
        self.telemetry.as_ref().map_or_else(Vec::new, |tel| tel.frames(prog))
    }

    /// The most recent sampled frame for `prog`, if any.
    pub fn latest_frame(&self, prog: usize) -> Option<TelemetryFrame> {
        self.telemetry.as_ref().and_then(|tel| tel.latest(prog))
    }

    /// Events discarded after the trace capacity was reached (0 when
    /// tracing is off). A nonzero value means analyses over
    /// [`Simulator::trace`] see a truncated history — raise the
    /// [`Simulator::enable_tracing`] capacity for this horizon.
    pub fn events_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Schedules `prog` to be killed (SIGKILL semantics) once simulated
    /// time reaches `t_us`: its workers vanish mid-task without releasing
    /// their cores, its coordinator stops heartbeating, and surviving DWS
    /// coordinators reap the stranded cores once the lease expires.
    pub fn kill_program_at(&mut self, prog: usize, t_us: SimTime) {
        assert!(prog < self.programs.len(), "no such program");
        self.pending_kills.push((t_us, prog));
    }

    /// Overrides the lease-expiry threshold (default 30 000 µs = 3× the
    /// paper's 10 ms coordinator period).
    pub fn set_lease_timeout_us(&mut self, timeout_us: SimTime) {
        assert!(timeout_us > 0, "lease timeout must be nonzero");
        self.lease_timeout_us = timeout_us;
    }

    /// Has `prog` been killed?
    pub fn program_dead(&self, prog: usize) -> bool {
        self.dead[prog]
    }

    /// Pending wake deliveries (diagnostics): (due time, (program, worker)).
    pub fn pending_wakes(&self) -> &[(SimTime, ThreadId)] {
        &self.pending_wakes
    }

    /// Thread currently scheduled on `core`, if any (diagnostics).
    pub fn core_current(&self, core: usize) -> Option<ThreadId> {
        self.os.cores[core].current.map(|c| c.thread)
    }

    /// Length of `core`'s run queue (diagnostics).
    pub fn core_queue_len(&self, core: usize) -> usize {
        self.os.cores[core].run_queue.len()
    }

    /// Advances the simulation by one tick.
    pub fn tick(&mut self) {
        let tick_us = self.cfg.machine.tick_us;
        self.now += tick_us;
        let now = self.now;

        self.deliver_kills(now);
        self.deliver_wakes(now);
        self.run_coordinators(now);

        // Snapshot memory pressure from what is scheduled right now.
        let snapshot = self.pressure_snapshot();

        let k = self.cfg.machine.cores;
        for core in 0..k {
            self.tick_core(core, now, tick_us, &snapshot);
        }

        if self.trace.is_enabled() {
            for p in 0..self.programs.len() {
                while self.traced_runs[p] < self.programs[p].runs_completed {
                    let run = self.traced_runs[p];
                    let duration_us = self.programs[p].metrics.run_times_us[run];
                    self.trace.record(now, SchedEvent::RunComplete { prog: p, run, duration_us });
                    self.traced_runs[p] += 1;
                }
            }
        }

        self.sample_telemetry(now);

        #[cfg(debug_assertions)]
        self.table.check_invariants(self.programs.len());
        #[cfg(debug_assertions)]
        self.ledger.check_conservation(&self.table, now);
    }

    /// Emits one telemetry frame per program when the sampling period has
    /// elapsed (no-op with telemetry off). Runs at the end of the tick so
    /// frames see the tick's completed work.
    fn sample_telemetry(&mut self, now: SimTime) {
        // Take the sampler out of `self` so capturing can read program and
        // table state while the rings are borrowed mutably.
        let Some(mut tel) = self.telemetry.take() else { return };
        if now >= tel.next_sample_us {
            while tel.next_sample_us <= now {
                tel.next_sample_us += tel.period_us;
            }
            self.capture_frames(&mut tel, now);
        }
        self.telemetry = Some(tel);
    }

    fn capture_frames(&self, tel: &mut SimTelemetry, now: SimTime) {
        // One shared trace ⇒ one global drop count, repeated per frame.
        let dropped = self.trace.dropped();
        let cores: Vec<CoreSample> = (0..self.table.cores())
            .map(|c| CoreSample {
                core: c,
                home: self.table.home(c),
                owner: match self.table.slot(c) {
                    Slot::Free => -1,
                    Slot::Used(p) => p as i64,
                },
            })
            .collect();
        let (ledger_us, _free_us) = self.ledger.settled(&self.table, now);
        for (p, prog) in self.programs.iter().enumerate() {
            let workers: Vec<WorkerSample> = prog
                .workers
                .iter()
                .enumerate()
                .map(|(w, wk)| WorkerSample {
                    worker: w,
                    asleep: !wk.awake,
                    queue: prog.deques[w].len(),
                })
                .collect();
            let pt = &mut tel.progs[p];
            let coord = CoordSample { decisions: pt.decisions, ..pt.last_coord };
            // Demand-latency percentiles over this frame's window only,
            // mirroring the rt sampler's rolling histogram diff — but
            // exact-µs nearest-rank here rather than log2 bucket bounds.
            let alloc = &self.ledger.alloc_latency_ns(p)[pt.alloc_seen..];
            let release = &self.ledger.release_latency_ns(p)[pt.release_seen..];
            pt.alloc_seen += alloc.len();
            pt.release_seen += release.len();
            let latency = LatencySample {
                alloc_p50_ns: quantile_nearest(alloc, 0.5),
                alloc_p99_ns: quantile_nearest(alloc, 0.99),
                release_p50_ns: quantile_nearest(release, 0.5),
                release_p99_ns: quantile_nearest(release, 0.99),
                // The µs-resolution event model has no ns task/steal
                // histograms; those stay zero in simulation.
                ..LatencySample::default()
            };
            let m = &prog.metrics;
            let counters = CounterSample {
                steals_ok: m.steals_ok,
                steals_failed: m.steals_failed,
                jobs_executed: m.tasks_executed,
                sleeps: m.sleeps,
                wakes: m.wakes,
                yields: m.yields,
                coordinator_runs: m.coordinator_runs,
                cores_acquired: m.cores_acquired,
                cores_reclaimed: m.cores_reclaimed,
                cores_released: m.cores_released,
                events_dropped: dropped,
                frames_evicted: pt.evicted(),
                cores_reaped: m.cores_reaped,
                leases_expired: m.leases_expired,
                degraded: 0, // the simulated table has no file to lose
                tasks_stolen: m.tasks_stolen,
                steals_contended: 0, // serialized steals never lose a CAS race
                // The sim has no cross-process submission ring; its
                // arrival model drives the harness generator instead.
                requests_admitted: 0,
                requests_dropped: 0,
                requests_fenced: 0,
                requests_abandoned: 0,
                // Zombie/rearm transitions live in the dws-check model in
                // virtual time, not in this machine.
                zombies_fenced: 0,
                leases_rearmed: 0,
                // The sim coordinator ticks in virtual time; no futex
                // doorbells exist to ring.
                doorbell_wakes: 0,
                core_us_total: ledger_us[p],
            };
            tel.push(
                p,
                TelemetryFrame {
                    t_us: now,
                    prog: p,
                    seq: 0, // assigned by the ring
                    cores: cores.clone(),
                    workers,
                    coord,
                    counters,
                    latency,
                },
            );
        }
    }

    /// Applies due program kills. SIGKILL semantics: the victim's threads
    /// are torn out of every run queue and core *without* releasing their
    /// table slots — exactly the stranded-cores state the reaper exists
    /// to clean up.
    fn deliver_kills(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.pending_kills.len() {
            if self.pending_kills[i].0 > now {
                i += 1;
                continue;
            }
            let (_, p) = self.pending_kills.swap_remove(i);
            if self.dead[p] {
                continue;
            }
            self.dead[p] = true;
            self.pending_wakes.retain(|&(_, (q, _))| q != p);
            for core in self.os.cores.iter_mut() {
                core.run_queue.retain(|&(q, _)| q != p);
                if core.current.is_some_and(|c| c.thread.0 == p) {
                    core.current = None;
                }
            }
            for worker in &mut self.programs[p].workers {
                worker.awake = false;
            }
        }
    }

    /// A surviving DWS coordinator's reaper pass: fence any dead
    /// co-runner whose heartbeat has gone stale, then return its
    /// owned-but-stranded cores to the free pool. Idempotent — later
    /// passes find nothing left to do.
    fn reap_expired(&mut self, reaper: usize, now: SimTime) {
        for q in 0..self.programs.len() {
            if q == reaper || !self.dead[q] {
                continue;
            }
            if !self.fenced[q] {
                if now.saturating_sub(self.lease_hb[q]) <= self.lease_timeout_us {
                    continue;
                }
                self.fenced[q] = true;
                self.programs[reaper].metrics.leases_expired += 1;
                self.trace.record(now, SchedEvent::LeaseExpired { prog: q });
            }
            for core in 0..self.table.cores() {
                if self.table.slot(core) == Slot::Used(q) {
                    self.ledger.settle(&self.table, core, now);
                    self.table.release(core, q);
                    self.programs[reaper].metrics.cores_reaped += 1;
                    self.trace.record(now, SchedEvent::Reap { prog: q, core });
                }
            }
        }
    }

    fn deliver_wakes(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.pending_wakes.len() {
            if self.pending_wakes[i].0 <= now {
                let (_, (p, w)) = self.pending_wakes.swap_remove(i);
                let worker = &mut self.programs[p].workers[w];
                if !worker.awake {
                    worker.awake = true;
                    worker.failed_steals = 0;
                    self.programs[p].metrics.wakes += 1;
                    self.trace.record(now, SchedEvent::Wake { prog: p, worker: w });
                    let core = self.programs[p].workers[w].core;
                    self.os.enqueue(core, (p, w));
                }
            } else {
                i += 1;
            }
        }
    }

    fn schedule_wake(&mut self, p: usize, w: usize, now: SimTime) {
        if self.programs[p].workers[w].awake {
            return;
        }
        if self.pending_wakes.iter().any(|&(_, t)| t == (p, w)) {
            return;
        }
        let latency = self.programs[p].sched.wake_latency_us;
        self.pending_wakes.push((now + latency, (p, w)));
    }

    fn run_coordinators(&mut self, now: SimTime) {
        let m = self.programs.len();
        // Rotate evaluation order so no program wins free-core races by id.
        let start = (now / 10_000) as usize % m;
        for off in 0..m {
            let p = (start + off) % m;
            if self.dead[p] || !self.programs[p].sched.policy.has_coordinator() {
                continue;
            }
            if now < self.next_coord[p] {
                continue;
            }
            self.next_coord[p] += self.programs[p].sched.coord_period_us;
            self.programs[p].metrics.coordinator_runs += 1;
            // Failure-model duties (mirroring the rt coordinator tick):
            // renew this program's lease heartbeat, then reap expired
            // co-runners' stranded cores before planning wakes.
            self.lease_hb[p] = now;
            if self.programs[p].sched.policy == Policy::Dws {
                self.reap_expired(p, now);
            }
            // The coordinator thread consumes a sliver of CPU somewhere.
            let victim_core = self.rng.next_below(self.cfg.machine.cores);
            self.os.cores[victim_core].pending_overhead_us += COORDINATOR_COST_US;

            let obs = CoordObservation {
                queued_tasks: self.programs[p].queued_tasks(),
                active_workers: self.programs[p].active_workers(),
                sleeping_workers: self.programs[p].sleeping_workers().len(),
            };
            match self.programs[p].sched.policy {
                Policy::Dws => {
                    // Table supply, captured before the decision consumes
                    // it — the decision type keeps `N_f`/`N_r` internal.
                    let telemetry_on = self.telemetry.is_some();
                    let (n_f, n_r) = if telemetry_on {
                        (self.table.n_free(), self.table.n_reclaimable(p))
                    } else {
                        (0, 0)
                    };
                    let decision = decide_dws(p, obs, &self.table, &mut self.rng);
                    self.trace.record(
                        now,
                        SchedEvent::CoordTick {
                            prog: p,
                            n_b: obs.queued_tasks,
                            n_a: obs.active_workers,
                            n_w: decision.n_w,
                        },
                    );
                    let mut woken = 0u64;
                    for &core in &decision.take_free {
                        self.ledger.settle(&self.table, core, now);
                        if self.table.acquire_free(core, p) {
                            self.programs[p].metrics.cores_acquired += 1;
                            self.trace.record(now, SchedEvent::Acquire { prog: p, core });
                            self.schedule_wake(p, core, now);
                            woken += 1;
                        }
                    }
                    for &core in &decision.reclaim {
                        self.ledger.settle(&self.table, core, now);
                        if self.table.reclaim(core, p) {
                            self.programs[p].metrics.cores_reclaimed += 1;
                            self.trace.record(now, SchedEvent::Reclaim { prog: p, core });
                            self.schedule_wake(p, core, now);
                            woken += 1;
                        }
                    }
                    // Demand clocks (mirror of the rt coordinator's): a
                    // rise stamp survives starved ticks; a grant closes it
                    // when the woken worker actually lands (wake latency),
                    // so same-tick satisfaction still costs the wake path.
                    if decision.n_w > 0 {
                        self.ledger.note_rise(p, now);
                        if woken > 0 {
                            let landed = now + self.programs[p].sched.wake_latency_us;
                            self.ledger.note_met(p, landed);
                        }
                    } else if obs.active_workers > 0 {
                        self.ledger.note_fall(p, now);
                    }
                    if let Some(tel) = self.telemetry.as_mut() {
                        let pt = &mut tel.progs[p];
                        pt.decisions += 1;
                        pt.last_coord = CoordSample {
                            n_b: obs.queued_tasks as u64,
                            n_a: obs.active_workers as u64,
                            n_f: n_f as u64,
                            n_r: n_r as u64,
                            n_w: decision.n_w as u64,
                            planned_free: decision.take_free.len() as u64,
                            planned_reclaim: decision.reclaim.len() as u64,
                            woken,
                            decisions: 0, // running count kept separately
                            // No adaptive controller in simulation: the
                            // knob gauges report the configured constants.
                            knob_t_sleep: u64::from(self.programs[p].sched.t_sleep),
                            knob_period_us: self.programs[p].sched.coord_period_us,
                            knob_steal_batch: self.programs[p].sched.steal_batch_limit as u64,
                        };
                    }
                }
                Policy::DwsNc => {
                    let n = decide_nc(obs);
                    self.trace.record(
                        now,
                        SchedEvent::CoordTick {
                            prog: p,
                            n_b: obs.queued_tasks,
                            n_a: obs.active_workers,
                            n_w: n,
                        },
                    );
                    let mut woken = 0u64;
                    if n > 0 {
                        let mut sleeping = self.programs[p].sleeping_workers();
                        // Random subset.
                        for i in 0..n.min(sleeping.len()) {
                            let j = i + self.rng.next_below(sleeping.len() - i);
                            sleeping.swap(i, j);
                        }
                        sleeping.truncate(n);
                        woken = sleeping.len() as u64;
                        for w in sleeping {
                            self.schedule_wake(p, w, now);
                        }
                    }
                    if let Some(tel) = self.telemetry.as_mut() {
                        let pt = &mut tel.progs[p];
                        pt.decisions += 1;
                        pt.last_coord = CoordSample {
                            n_b: obs.queued_tasks as u64,
                            n_a: obs.active_workers as u64,
                            n_f: 0, // no table in the ablation
                            n_r: 0,
                            n_w: n as u64,
                            planned_free: 0,
                            planned_reclaim: 0,
                            woken,
                            decisions: 0,
                            knob_t_sleep: u64::from(self.programs[p].sched.t_sleep),
                            knob_period_us: self.programs[p].sched.coord_period_us,
                            knob_steal_batch: self.programs[p].sched.steal_batch_limit as u64,
                        };
                    }
                }
                _ => unreachable!("coordinator on non-coordinated policy"),
            }
        }
    }

    fn pressure_snapshot(&self) -> PressureSnapshot {
        let mut snap = PressureSnapshot::with_spread_bw(
            self.programs.len(),
            self.cfg.machine.sockets,
            self.cfg.cache.spread_bw_factor,
        );
        for (core_id, core) in self.os.cores.iter().enumerate() {
            if let Some(cur) = core.current {
                let (p, w) = cur.thread;
                if let WorkerState::Running { ref task, .. } = self.programs[p].workers[w].state {
                    let socket = self.cfg.machine.socket_of(core_id);
                    snap.add_running(p, socket, task.mem);
                }
            }
        }
        snap.finalize();
        snap
    }

    fn tick_core(
        &mut self,
        core: usize,
        now: SimTime,
        tick_us: SimTime,
        snapshot: &PressureSnapshot,
    ) {
        let overhead = std::mem::take(&mut self.os.cores[core].pending_overhead_us);
        let mut budget = tick_us as f64 - overhead;

        if self.os.cores[core].current.is_none() {
            match self.os.dispatch(core, now, self.cache.cold_period_us()) {
                Some((_, switch_cost)) => budget -= switch_cost,
                None => return, // idle core
            }
        }
        if budget <= 0.0 {
            return;
        }

        let (p, w) = self.os.cores[core].current.expect("dispatched above").thread;

        // A killed program's threads never run again (its queues were
        // purged at kill time; this guards the same-tick window).
        if self.dead[p] {
            self.os.cores[core].current = None;
            return;
        }

        // Core eviction (§4.2: DWS ensures a core executes a single active
        // worker): a worker whose core the table no longer grants its
        // program must sleep at the next task boundary; its queued tasks
        // stay stealable by its siblings.
        let evict = self.table_live
            && self.programs[p].sched.policy == Policy::Dws
            && self.table.slot(core) != Slot::Used(p);

        let slowdown = match self.programs[p].workers[w].state {
            WorkerState::Running { ref task, .. } => self.cache.slowdown(
                snapshot,
                p,
                self.cfg.machine.socket_of(core),
                task.mem,
                now,
                self.os.cores[core].cold_until,
            ),
            WorkerState::Idle => 1.0,
        };

        // Asymmetric cores: a slower clock shrinks the useful work done
        // in a wall-time tick (the OS-side quantum accounting below stays
        // in wall time).
        let speed = self.cfg.machine.speed_of(core);
        let outcome =
            self.programs[p].step_worker_evictable(w, budget * speed, slowdown, now, evict);
        let result = match outcome {
            StepOutcome::Worked => SliceResult::KeepRunning,
            StepOutcome::Yielded => SliceResult::Yielded {
                prefer_prog: self.programs[p].sched.policy.yields_to_own_program().then_some(p),
            },
            StepOutcome::Slept => SliceResult::Slept,
        };
        if outcome == StepOutcome::Slept {
            self.programs[p].workers[w].awake = false;
            self.trace.record(now, SchedEvent::Sleep { prog: p, worker: w, evicted: evict });
            // Release the core in the table (Algorithm 1), unless another
            // program has already reclaimed it out from under us.
            if self.table_live
                && self.programs[p].sched.policy == Policy::Dws
                && self.table.slot(core) == Slot::Used(p)
            {
                self.ledger.settle(&self.table, core, now);
                self.table.release(core, p);
                self.ledger.note_released(p, now);
                self.programs[p].metrics.cores_released += 1;
                self.trace.record(now, SchedEvent::Release { prog: p, core });
            }
        }
        let descheduled = self.os.after_slice(core, budget, result);
        if result == SliceResult::KeepRunning && descheduled.is_some() {
            self.programs[p].metrics.preemptions += 1;
        }
        // BWS's directed yield donates the thief's slice to a *preempted
        // busy* worker of its own program. Model the donation as a
        // priority boost on the recipient's own core (promote to the
        // front of its queue); migrating it to the donor's core instead
        // makes the recipient chase yields around the machine and never
        // run. The promotion is idempotent, so spinning thieves cannot
        // compound it.
        if let SliceResult::Yielded { prefer_prog: Some(pp) } = result {
            self.promote_preempted_worker(core, pp, (p, w));
        }
    }

    /// Finds a queued (preempted) worker of `prog` that is mid-task and
    /// moves it to the front of its own core's run queue (BWS donation).
    fn promote_preempted_worker(&mut self, from_core: usize, prog: usize, yielder: ThreadId) {
        let k = self.cfg.machine.cores;
        for offset in 0..k {
            let c = (from_core + offset) % k;
            let found = self.os.cores[c].run_queue.iter().position(|&(pr, w2)| {
                pr == prog
                    && (pr, w2) != yielder
                    && matches!(self.programs[pr].workers[w2].state, WorkerState::Running { .. })
            });
            if let Some(pos) = found {
                if pos != 0 {
                    if let Some(th) = self.os.cores[c].run_queue.remove(pos) {
                        self.os.cores[c].run_queue.push_front(th);
                    }
                }
                return;
            }
        }
    }

    /// Runs the simulation until every program has completed
    /// `opts.min_runs` runs or the horizon is reached, and reports.
    pub fn run(&mut self, opts: RunOptions) -> SimReport {
        loop {
            // A killed program will never finish; it does not hold up the
            // survivors' stopping condition.
            let all_done = self
                .programs
                .iter()
                .enumerate()
                .all(|(i, p)| self.dead[i] || p.runs_completed >= opts.min_runs);
            if all_done || self.now >= opts.max_time_us {
                break;
            }
            self.tick();
        }
        let hit_horizon = self.now >= opts.max_time_us;
        SimReport {
            programs: self
                .programs
                .iter()
                .map(|p| ProgramReport {
                    name: p.spec.name.clone(),
                    policy: p.sched.policy,
                    mean_run_time_us: p.metrics.mean_run_time_us(opts.warmup_runs),
                    metrics: p.metrics.clone(),
                })
                .collect(),
            elapsed_us: self.now,
            hit_horizon,
        }
    }
}

/// Convenience: runs `workload` alone on the machine under `policy` and
/// returns its report (the paper's solo baseline uses [`Policy::Ws`]).
pub fn run_solo(
    cfg: SimConfig,
    workload: WorkloadSpec,
    sched: SchedConfig,
    opts: RunOptions,
) -> ProgramReport {
    let mut sim = Simulator::new(cfg, vec![ProgramSpec { workload, sched }]);
    let mut report = sim.run(opts);
    report.programs.remove(0)
}

/// Convenience: co-runs two programs under the same policy (the paper's
/// benchmark-mix methodology) and returns the report.
pub fn run_pair(cfg: SimConfig, a: ProgramSpec, b: ProgramSpec, opts: RunOptions) -> SimReport {
    let mut sim = Simulator::new(cfg, vec![a, b]);
    sim.run(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::workload::PhaseSpec;

    fn small_machine() -> SimConfig {
        SimConfig {
            machine: MachineConfig { cores: 4, sockets: 2, ..Default::default() },
            ..Default::default()
        }
    }

    fn rec_workload(name: &str, depth: u32, leaf_us: f64, mem: f64) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            phases: vec![PhaseSpec::Recursive {
                depth,
                branch: 2,
                leaf_work_us: leaf_us,
                node_work_us: 1.0,
                merge_work_us: 5.0,
                merge_grows: true,
                mem,
                jitter: 0.1,
            }],
        }
    }

    fn wave_workload(
        name: &str,
        iters: u32,
        width: u32,
        task_us: f64,
        serial_us: f64,
    ) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            phases: vec![PhaseSpec::Waves {
                iters,
                width,
                width_end: 0,
                task_work_us: task_us,
                serial_us,
                mem: 0.4,
                jitter: 0.1,
            }],
        }
    }

    fn spec(w: WorkloadSpec, policy: Policy, cores: usize) -> ProgramSpec {
        ProgramSpec { workload: w, sched: SchedConfig::for_policy(policy, cores) }
    }

    #[test]
    fn solo_ws_completes_runs() {
        let cfg = small_machine();
        let rep = run_solo(
            cfg,
            rec_workload("r", 5, 100.0, 0.3),
            SchedConfig::for_policy(Policy::Ws, 4),
            RunOptions { min_runs: 3, max_time_us: 50_000_000, warmup_runs: 1 },
        );
        assert!(rep.mean_run_time_us.is_some());
        assert!(rep.metrics.run_times_us.len() >= 3);
    }

    #[test]
    fn more_cores_speed_up_a_parallel_workload() {
        let w = rec_workload("r", 7, 200.0, 0.0);
        let sched = SchedConfig::for_policy(Policy::Ws, 1);
        let opts = RunOptions { min_runs: 3, max_time_us: 200_000_000, warmup_runs: 1 };
        let one = run_solo(
            SimConfig {
                machine: MachineConfig { cores: 1, sockets: 1, ..Default::default() },
                ..Default::default()
            },
            w.clone(),
            sched.clone(),
            opts,
        )
        .mean_run_time_us
        .unwrap();
        let four = run_solo(
            SimConfig {
                machine: MachineConfig { cores: 4, sockets: 1, ..Default::default() },
                ..Default::default()
            },
            w,
            SchedConfig::for_policy(Policy::Ws, 4),
            opts,
        )
        .mean_run_time_us
        .unwrap();
        let speedup = one / four;
        assert!(speedup > 2.0, "expected >2x speedup on 4 cores, got {speedup:.2}");
    }

    #[test]
    fn telemetry_frames_track_a_dws_corun() {
        let cfg = small_machine();
        let mut sim = Simulator::new(
            cfg,
            vec![
                spec(rec_workload("a", 5, 80.0, 0.4), Policy::Dws, 4),
                spec(wave_workload("b", 10, 4, 60.0, 100.0), Policy::Dws, 4),
            ],
        );
        sim.enable_telemetry(10_000, 1024);
        while sim.now() < 500_000 {
            sim.tick();
        }
        for p in 0..2 {
            let frames = sim.telemetry_frames(p);
            assert!(frames.len() >= 40, "expected ~50 frames, got {}", frames.len());
            for pair in frames.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                assert_eq!(b.seq, a.seq + 1, "monotone seq");
                assert!(b.t_us > a.t_us, "monotone timestamps");
                assert!(b.counters.jobs_executed >= a.counters.jobs_executed);
                assert!(b.counters.coordinator_runs >= a.counters.coordinator_runs);
                assert!(b.coord.decisions >= a.coord.decisions);
            }
            let last = sim.latest_frame(p).unwrap();
            assert_eq!(last.prog, p);
            assert_eq!(last.cores.len(), 4);
            for c in &last.cores {
                assert_eq!(c.home, sim.alloc_table().home(c.core));
                assert!(c.owner == -1 || (c.owner >= 0 && c.owner < 2));
            }
            assert_eq!(last.workers.len(), 4);
            assert!(last.coord.decisions > 0, "coordinator decisions captured");
            // The coordinator plan never exceeds the observed supply.
            assert!(last.coord.planned_free <= last.coord.n_f);
            assert!(last.coord.planned_reclaim <= last.coord.n_r);
            // Steal/task histograms stay zero in the µs event model, but
            // the demand-latency quantiles are live: p99 bounds p50.
            assert_eq!(last.latency.steal_p50_ns, 0);
            assert!(last.latency.alloc_p99_ns >= last.latency.alloc_p50_ns);
            assert!(last.latency.release_p99_ns >= last.latency.release_p50_ns);
            // The ledger feeds frames: by 500 ms each program has been
            // charged some core time, and no program exceeds the machine.
            assert!(last.counters.core_us_total > 0, "ledger core time flows into frames");
            assert!(last.counters.core_us_total <= 4 * last.t_us);
            assert_eq!(last.counters.frames_evicted, 0);
        }
        // Conservation across the whole co-run: settled per-program time
        // plus free time tiles cores × elapsed exactly.
        let (prog_us, free_us) = sim.settled_core_us();
        assert_eq!(prog_us.iter().sum::<u64>() + free_us, 4 * sim.now());
        // Demand-satisfaction samples were collected and each costs at
        // least the wake latency.
        assert!(
            (0..2).any(|p| !sim.ledger().alloc_latency_ns(p).is_empty()),
            "expected demand-satisfaction samples in a DWS co-run"
        );
        for p in 0..2 {
            for &ns in sim.ledger().alloc_latency_ns(p) {
                assert!(ns >= 1_000, "a grant costs at least the wake path: {ns}ns");
            }
        }
    }

    #[test]
    fn telemetry_ring_eviction_is_surfaced() {
        let cfg = small_machine();
        let mut sim = Simulator::new(
            cfg,
            vec![
                spec(rec_workload("a", 5, 80.0, 0.4), Policy::Dws, 4),
                spec(rec_workload("b", 5, 80.0, 0.4), Policy::Dws, 4),
            ],
        );
        sim.enable_telemetry(10_000, 4);
        while sim.now() < 200_000 {
            sim.tick();
        }
        let frames = sim.telemetry_frames(0);
        assert_eq!(frames.len(), 4, "ring holds at most its capacity");
        assert!(
            sim.latest_frame(0).unwrap().counters.frames_evicted > 0,
            "evictions show up in the frame counters"
        );
    }

    #[test]
    fn corun_completes_under_every_policy() {
        for policy in [Policy::Abp, Policy::Ep, Policy::Dws, Policy::DwsNc] {
            let cfg = small_machine();
            let a = spec(rec_workload("a", 5, 80.0, 0.4), policy, 4);
            let b = spec(wave_workload("b", 10, 4, 60.0, 100.0), policy, 4);
            let rep = run_pair(
                cfg,
                a,
                b,
                RunOptions { min_runs: 2, max_time_us: 100_000_000, warmup_runs: 0 },
            );
            assert!(
                !rep.hit_horizon,
                "{policy}: horizon hit; a_runs={} b_runs={}",
                rep.programs[0].metrics.run_times_us.len(),
                rep.programs[1].metrics.run_times_us.len()
            );
            for pr in &rep.programs {
                assert!(pr.mean_run_time_us.unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn dws_workers_sleep_and_wake() {
        let cfg = small_machine();
        let a = spec(rec_workload("a", 6, 100.0, 0.4), Policy::Dws, 4);
        let b = spec(wave_workload("b", 20, 4, 80.0, 400.0), Policy::Dws, 4);
        let rep = run_pair(
            cfg,
            a,
            b,
            RunOptions { min_runs: 3, max_time_us: 200_000_000, warmup_runs: 0 },
        );
        let total_sleeps: u64 = rep.programs.iter().map(|p| p.metrics.sleeps).sum();
        let total_wakes: u64 = rep.programs.iter().map(|p| p.metrics.wakes).sum();
        assert!(total_sleeps > 0, "DWS workers must sleep on steal failure");
        assert!(total_wakes > 0, "coordinators must wake workers");
    }

    #[test]
    fn dws_moves_cores_between_programs() {
        let cfg = small_machine();
        // a: bursty high fan-out; b: mostly serial.
        let a = spec(rec_workload("a", 8, 150.0, 0.3), Policy::Dws, 4);
        let b = spec(wave_workload("b", 30, 1, 50.0, 2_000.0), Policy::Dws, 4);
        let rep = run_pair(
            cfg,
            a,
            b,
            RunOptions { min_runs: 3, max_time_us: 400_000_000, warmup_runs: 0 },
        );
        let acquired: u64 = rep.programs.iter().map(|p| p.metrics.cores_acquired).sum();
        assert!(acquired > 0, "the high-demand program should borrow released cores");
    }

    #[test]
    fn killed_program_is_reaped_and_survivor_recovers_the_cores() {
        let cfg = small_machine();
        let mut sim = Simulator::new(
            cfg,
            vec![
                spec(rec_workload("a", 8, 150.0, 0.3), Policy::Dws, 4),
                spec(rec_workload("b", 8, 150.0, 0.3), Policy::Dws, 4),
            ],
        );
        sim.enable_tracing(1 << 20);
        sim.enable_telemetry(10_000, 4096);
        sim.kill_program_at(1, 100_000);
        while sim.now() < 1_000_000 {
            sim.tick();
        }
        assert!(sim.program_dead(1));

        // Every core the victim held was reaped back; none stay stranded.
        let table = sim.alloc_table();
        for c in 0..table.cores() {
            assert_ne!(table.slot(c), Slot::Used(1), "core {c} stranded by the dead program");
        }
        let m = &sim.program(0).metrics;
        assert_eq!(m.leases_expired, 1, "exactly one lease to fence");
        assert!(m.cores_reaped >= 1, "the victim died holding at least one core");

        // Event-sourcing check: replaying the trace (including Reap
        // frees) reproduces the live table.
        let homes: Vec<usize> = (0..table.cores()).map(|c| table.home(c)).collect();
        let final_slots = sim.trace().replay_table(table.cores(), 2, &homes);
        for (c, replayed) in final_slots.iter().enumerate() {
            let live = match table.slot(c) {
                Slot::Free => None,
                Slot::Used(p) => Some(p),
            };
            assert_eq!(*replayed, live, "core {c}");
        }

        // The reap counters reach telemetry; the sim never degrades.
        let last = sim.latest_frame(0).unwrap();
        assert_eq!(last.counters.leases_expired, 1);
        assert!(last.counters.cores_reaped >= 1);
        assert_eq!(last.counters.degraded, 0);
    }

    #[test]
    fn abp_workers_yield() {
        let cfg = small_machine();
        let a = spec(rec_workload("a", 5, 80.0, 0.4), Policy::Abp, 4);
        let b = spec(wave_workload("b", 10, 2, 60.0, 500.0), Policy::Abp, 4);
        let rep = run_pair(
            cfg,
            a,
            b,
            RunOptions { min_runs: 2, max_time_us: 100_000_000, warmup_runs: 0 },
        );
        let yields: u64 = rep.programs.iter().map(|p| p.metrics.yields).sum();
        assert!(yields > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let cfg = small_machine();
            let a = spec(rec_workload("a", 5, 80.0, 0.4), Policy::Dws, 4);
            let b = spec(wave_workload("b", 10, 4, 60.0, 100.0), Policy::Dws, 4);
            run_pair(
                cfg,
                a,
                b,
                RunOptions { min_runs: 3, max_time_us: 100_000_000, warmup_runs: 0 },
            )
        };
        let r1 = mk();
        let r2 = mk();
        for (p1, p2) in r1.programs.iter().zip(&r2.programs) {
            assert_eq!(p1.metrics.run_times_us, p2.metrics.run_times_us);
            assert_eq!(p1.metrics.steals_ok, p2.metrics.steals_ok);
        }
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let mk = |seed| {
            let mut cfg = small_machine();
            cfg.seed = seed;
            let a = spec(rec_workload("a", 6, 80.0, 0.4), Policy::Dws, 4);
            let b = spec(wave_workload("b", 10, 4, 60.0, 100.0), Policy::Dws, 4);
            run_pair(
                cfg,
                a,
                b,
                RunOptions { min_runs: 3, max_time_us: 100_000_000, warmup_runs: 0 },
            )
        };
        let r1 = mk(1);
        let r2 = mk(99);
        let fingerprint = |r: &SimReport| -> (Vec<Vec<u64>>, u64) {
            (
                r.programs.iter().map(|p| p.metrics.run_times_us.clone()).collect(),
                r.programs.iter().map(|p| p.metrics.steals_ok + p.metrics.steals_failed).sum(),
            )
        };
        assert_ne!(fingerprint(&r1), fingerprint(&r2));
    }

    #[test]
    fn work_conservation_across_runs() {
        // Each completed run must execute at least the spec's total work.
        let cfg = small_machine();
        let w = rec_workload("r", 5, 100.0, 0.2);
        let expected_per_run = w.total_work_us();
        let rep = run_solo(
            cfg,
            w,
            SchedConfig::for_policy(Policy::Ws, 4),
            RunOptions { min_runs: 3, max_time_us: 100_000_000, warmup_runs: 0 },
        );
        let runs = rep.metrics.run_times_us.len() as f64;
        assert!(
            rep.metrics.nominal_work_done_us >= expected_per_run * runs * 0.999,
            "nominal {} < {} x {}",
            rep.metrics.nominal_work_done_us,
            expected_per_run,
            runs
        );
    }

    #[test]
    fn asymmetric_cores_slow_the_work_down() {
        let wl = rec_workload("r", 7, 200.0, 0.0);
        let opts = RunOptions { min_runs: 3, max_time_us: 200_000_000, warmup_runs: 1 };
        let fast = run_solo(
            SimConfig {
                machine: MachineConfig { cores: 4, sockets: 1, ..Default::default() },
                ..Default::default()
            },
            wl.clone(),
            SchedConfig::for_policy(Policy::Ws, 4),
            opts,
        )
        .mean_run_time_us
        .unwrap();
        let half_slow = run_solo(
            SimConfig { machine: MachineConfig::asymmetric(4, 1, 0.5), ..Default::default() },
            wl,
            SchedConfig::for_policy(Policy::Ws, 4),
            opts,
        )
        .mean_run_time_us
        .unwrap();
        // 2 nominal + 2 half-speed cores ≈ 3 effective: expect a clear
        // slowdown bounded by the 2x worst case.
        assert!(half_slow > fast * 1.1, "fast {fast:.0} vs asym {half_slow:.0}");
        assert!(half_slow < fast * 2.2);
    }

    #[test]
    fn demand_aware_placement_puts_memory_program_on_slow_cores() {
        let cfg = SimConfig {
            machine: MachineConfig::asymmetric(4, 2, 0.5),
            placement: crate::config::Placement::DemandAware,
            ..Default::default()
        };
        // Program 0 is compute-bound, program 1 memory-bound.
        let a = spec(rec_workload("compute", 4, 50.0, 0.05), Policy::Dws, 4);
        let b = spec(rec_workload("memory", 4, 50.0, 0.9), Policy::Dws, 4);
        let sim = Simulator::new(cfg, vec![a, b]);
        let t = sim.alloc_table();
        // Slow cores are 2,3 (second half): they must be homed to the
        // memory-bound program 1.
        assert_eq!(t.home_cores(1), vec![2, 3]);
        assert_eq!(t.home_cores(0), vec![0, 1]);
    }

    #[test]
    fn interleaved_placement_stripes_homes() {
        let cfg = SimConfig {
            machine: MachineConfig { cores: 4, sockets: 2, ..Default::default() },
            placement: crate::config::Placement::Interleaved,
            ..Default::default()
        };
        let a = spec(rec_workload("a", 4, 50.0, 0.4), Policy::Dws, 4);
        let b = spec(rec_workload("b", 4, 50.0, 0.4), Policy::Dws, 4);
        let sim = Simulator::new(cfg, vec![a, b]);
        assert_eq!(sim.alloc_table().home_cores(0), vec![0, 2]);
        assert_eq!(sim.alloc_table().home_cores(1), vec![1, 3]);
    }

    #[test]
    fn tracing_records_and_replays_table_events() {
        let cfg = small_machine();
        let a = spec(rec_workload("a", 6, 100.0, 0.4), Policy::Dws, 4);
        let b = spec(wave_workload("b", 20, 4, 80.0, 400.0), Policy::Dws, 4);
        let mut sim = Simulator::new(cfg, vec![a, b]);
        sim.enable_tracing(500_000);
        let homes: Vec<usize> = (0..4).map(|c| sim.alloc_table().home(c)).collect();
        sim.run(RunOptions { min_runs: 2, max_time_us: 100_000_000, warmup_runs: 0 });

        let trace = sim.trace();
        assert!(trace.dropped() == 0, "trace capacity too small for this test");
        assert!(trace.count(|e| matches!(e, crate::trace::SchedEvent::Sleep { .. })) > 0);
        assert!(trace.count(|e| matches!(e, crate::trace::SchedEvent::CoordTick { .. })) > 0);
        assert!(
            trace.count(|e| matches!(e, crate::trace::SchedEvent::RunComplete { .. })) >= 4,
            "both programs completed >= 2 runs"
        );
        // Event sourcing: replaying the table events reproduces the final
        // allocation state exactly.
        let replayed = trace.replay_table(4, 2, &homes);
        for (c, &rep) in replayed.iter().enumerate() {
            let actual = match sim.alloc_table().slot(c) {
                Slot::Free => None,
                Slot::Used(p) => Some(p),
            };
            assert_eq!(rep, actual, "core {c} diverged");
        }
        // Timestamps are monotone.
        let times: Vec<_> = trace.events().iter().map(|e| e.time_us).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bws_corun_completes_and_tracks_abp() {
        let cfg = small_machine();
        let run_policy = |policy| {
            let a = spec(rec_workload("a", 6, 80.0, 0.4), policy, 4);
            let b = spec(wave_workload("b", 10, 64, 30.0, 20.0), policy, 4);
            let rep = run_pair(
                cfg.clone(),
                a,
                b,
                RunOptions { min_runs: 2, max_time_us: 120_000_000, warmup_runs: 0 },
            );
            assert!(!rep.hit_horizon, "{policy}: starved");
            rep.programs.iter().map(|p| p.mean_run_time_us.unwrap()).sum::<f64>()
        };
        let abp = run_policy(Policy::Abp);
        let bws = run_policy(Policy::Bws);
        // In the fair round-robin OS model BWS tracks ABP closely.
        assert!(bws < abp * 1.3, "bws {bws} vs abp {abp}");
        assert!(bws > abp * 0.5);
    }

    #[test]
    fn four_programs_co_run_under_dws() {
        let cfg = SimConfig {
            machine: MachineConfig { cores: 8, sockets: 2, ..Default::default() },
            ..Default::default()
        };
        let sched = SchedConfig::for_policy(Policy::Dws, 8);
        let specs: Vec<ProgramSpec> = (0..4)
            .map(|i| ProgramSpec {
                workload: rec_workload(&format!("p{i}"), 5, 80.0, 0.3),
                sched: sched.clone(),
            })
            .collect();
        let mut sim = Simulator::new(cfg, specs);
        // Each program starts with a 2-core adjacent home slice.
        for p in 0..4 {
            assert_eq!(sim.alloc_table().home_cores(p).len(), 2);
        }
        let rep = sim.run(RunOptions { min_runs: 2, max_time_us: 200_000_000, warmup_runs: 0 });
        assert!(!rep.hit_horizon);
        for p in &rep.programs {
            assert!(p.mean_run_time_us.unwrap() > 0.0);
        }
    }

    #[test]
    fn tracing_disabled_by_default() {
        let cfg = small_machine();
        let a = spec(rec_workload("a", 4, 100.0, 0.4), Policy::Dws, 4);
        let b = spec(rec_workload("b", 4, 100.0, 0.4), Policy::Dws, 4);
        let mut sim = Simulator::new(cfg, vec![a, b]);
        sim.run(RunOptions { min_runs: 1, max_time_us: 50_000_000, warmup_runs: 0 });
        assert!(sim.trace().events().is_empty());
    }

    #[test]
    fn horizon_stops_runaway_simulations() {
        let cfg = small_machine();
        let w = wave_workload("slow", 1000, 4, 10_000.0, 10_000.0);
        let rep = run_solo(
            cfg,
            w,
            SchedConfig::for_policy(Policy::Ws, 4),
            RunOptions { min_runs: 100, max_time_us: 1_000_000, warmup_runs: 0 },
        );
        let _ = rep;
    }
}
