//! Per-program runtime statistics collected during simulation.

use serde::{Deserialize, Serialize};

/// Counters and timings for one simulated program.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgramMetrics {
    /// Completion time of each finished run, µs (one run = one traversal
    /// of the workload's phases).
    pub run_times_us: Vec<u64>,
    /// Successful steals.
    pub steals_ok: u64,
    /// Failed steal attempts.
    pub steals_failed: u64,
    /// Times a worker went to sleep (DWS/DWS-NC).
    pub sleeps: u64,
    /// Times a worker was woken by the coordinator.
    pub wakes: u64,
    /// ABP yields performed.
    pub yields: u64,
    /// Quantum preemptions suffered.
    pub preemptions: u64,
    /// Coordinator invocations.
    pub coordinator_runs: u64,
    /// Cores acquired from the free pool.
    pub cores_acquired: u64,
    /// Own cores reclaimed from other programs.
    pub cores_reclaimed: u64,
    /// Cores released to the table when a worker went to sleep.
    pub cores_released: u64,
    /// Stranded cores reaped back from dead co-runners.
    pub cores_reaped: u64,
    /// Dead-program leases fenced by this program's reaper pass.
    pub leases_expired: u64,
    /// CPU time spent executing task work, µs (at effective speed).
    pub busy_us: f64,
    /// CPU time burnt on steal attempts (failed + successful), µs.
    pub steal_overhead_us: f64,
    /// Nominal task work completed, µs (progress at uncontended speed).
    pub nominal_work_done_us: f64,
    /// Tasks executed to completion.
    pub tasks_executed: u64,
    /// Tasks moved by successful steals: one batched steal bumps
    /// `steals_ok` once but can move up to `steal_batch_limit` tasks.
    #[serde(default)]
    pub tasks_stolen: u64,
}

impl ProgramMetrics {
    /// Mean run time, µs (Eq. 2 of the paper), optionally excluding the
    /// first `skip` warm-up runs. Returns `None` if no run completed after
    /// the skip.
    pub fn mean_run_time_us(&self, skip: usize) -> Option<f64> {
        let runs = self.run_times_us.get(skip..)?;
        if runs.is_empty() {
            return None;
        }
        Some(runs.iter().map(|&t| t as f64).sum::<f64>() / runs.len() as f64)
    }

    /// Steal success ratio in [0, 1]; `None` if no steal was attempted.
    pub fn steal_success_ratio(&self) -> Option<f64> {
        let total = self.steals_ok + self.steals_failed;
        if total == 0 {
            None
        } else {
            Some(self.steals_ok as f64 / total as f64)
        }
    }

    /// Fraction of CPU consumed by steal overhead vs. useful work.
    pub fn steal_overhead_fraction(&self) -> f64 {
        let denom = self.busy_us + self.steal_overhead_us;
        if denom == 0.0 {
            0.0
        } else {
            self.steal_overhead_us / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_run_time_skips_warmup() {
        let m = ProgramMetrics { run_times_us: vec![100, 10, 20, 30], ..Default::default() };
        assert_eq!(m.mean_run_time_us(1), Some(20.0));
        assert_eq!(m.mean_run_time_us(0), Some(40.0));
    }

    #[test]
    fn mean_run_time_none_when_insufficient_runs() {
        let m = ProgramMetrics { run_times_us: vec![100], ..Default::default() };
        assert_eq!(m.mean_run_time_us(1), None);
        assert_eq!(ProgramMetrics::default().mean_run_time_us(0), None);
    }

    #[test]
    fn steal_ratio_handles_zero_attempts() {
        assert_eq!(ProgramMetrics::default().steal_success_ratio(), None);
        let m = ProgramMetrics { steals_ok: 3, steals_failed: 1, ..Default::default() };
        assert_eq!(m.steal_success_ratio(), Some(0.75));
    }

    #[test]
    fn overhead_fraction_zero_when_idle() {
        assert_eq!(ProgramMetrics::default().steal_overhead_fraction(), 0.0);
    }
}
