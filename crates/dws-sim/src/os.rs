//! The simulated operating system: per-core run queues with quantum-based
//! time-sharing, voluntary yields, sleep/wake, and the per-core state the
//! cache model needs (which program last touched the core).
//!
//! This models the Linux-2.6 CFS-era behaviour the paper's §2.1 reasons
//! about: threads on the same core round-robin at quantum granularity, a
//! `sched_yield` moves the caller to the back of its core's queue (a no-op
//! when it is alone), and a sleeping thread leaves the queue entirely.

use std::collections::VecDeque;

use crate::config::{MachineConfig, SimTime};

/// A thread is identified by (program index, worker index).
pub type ThreadId = (usize, usize);

/// The thread currently holding a core.
#[derive(Debug, Clone, Copy)]
pub struct Current {
    /// Which thread runs.
    pub thread: ThreadId,
    /// Microseconds left in its quantum (may go negative transiently).
    pub quantum_left: i64,
}

/// Scheduling and cache-tracking state of one core.
#[derive(Debug)]
pub struct CoreState {
    /// Runnable threads waiting for the core, FIFO.
    pub run_queue: VecDeque<ThreadId>,
    /// Thread currently scheduled, if any.
    pub current: Option<Current>,
    /// Program of the last thread that ran here (cache residency).
    pub last_prog: Option<usize>,
    /// Until when memory accesses of the current program run cold
    /// (set on cross-program switches).
    pub cold_until: SimTime,
    /// One-shot CPU deduction for the next tick (models coordinator or
    /// other housekeeping stealing cycles from this core).
    pub pending_overhead_us: f64,
}

impl CoreState {
    fn new() -> Self {
        CoreState {
            run_queue: VecDeque::new(),
            current: None,
            last_prog: None,
            cold_until: 0,
            pending_overhead_us: 0.0,
        }
    }

    /// Total threads on this core (running + queued).
    pub fn load(&self) -> usize {
        self.run_queue.len() + usize::from(self.current.is_some())
    }
}

/// The OS scheduler over all cores.
#[derive(Debug)]
pub struct Os {
    /// Per-core state, index = core id.
    pub cores: Vec<CoreState>,
    machine: MachineConfig,
}

/// What the OS should do with the current thread after it ran a slice.
/// Mirrors [`crate::program::StepOutcome`] plus quantum bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceResult {
    /// Keep running (budget used, quantum not exhausted).
    KeepRunning,
    /// Thread voluntarily yielded; with `prefer_prog`, the yield is
    /// *directed*: a queued thread of that program (BWS's own-program
    /// preference) is scheduled next if one is waiting.
    Yielded {
        /// Program whose queued threads should get the core first.
        prefer_prog: Option<usize>,
    },
    /// Thread went to sleep.
    Slept,
}

impl Os {
    /// Creates the scheduler for the given machine.
    pub fn new(machine: MachineConfig) -> Self {
        Os { cores: (0..machine.cores).map(|_| CoreState::new()).collect(), machine }
    }

    /// Machine description this OS schedules.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Makes `thread` runnable on `core` (enqueue at the back).
    pub fn enqueue(&mut self, core: usize, thread: ThreadId) {
        debug_assert!(
            !self.cores[core].run_queue.contains(&thread),
            "thread {thread:?} double-enqueued on core {core}"
        );
        self.cores[core].run_queue.push_back(thread);
    }

    /// If the core is free, dispatches the next queued thread and returns
    /// it along with the context-switch cost to charge this tick. Updates
    /// cache-residency state on cross-program switches.
    pub fn dispatch(
        &mut self,
        core: usize,
        now: SimTime,
        cold_period_us: SimTime,
    ) -> Option<(ThreadId, f64)> {
        let c = &mut self.cores[core];
        if c.current.is_some() {
            return None;
        }
        let thread = c.run_queue.pop_front()?;
        let mut cost = self.machine.ctx_switch_us as f64;
        if c.last_prog != Some(thread.0) {
            // A different program takes the core: its working set is cold.
            c.cold_until = now + cold_period_us;
            c.last_prog = Some(thread.0);
            // Cross-program switches are costlier (TLB/cache effects are
            // in the cold window; this is just the direct switch cost).
            cost += self.machine.ctx_switch_us as f64;
        }
        c.current = Some(Current { thread, quantum_left: self.machine.quantum_us as i64 });
        Some((thread, cost))
    }

    /// Applies the outcome of a slice to the core's scheduling state.
    /// Returns the thread that was descheduled, if any.
    pub fn after_slice(
        &mut self,
        core: usize,
        used_us: f64,
        result: SliceResult,
    ) -> Option<ThreadId> {
        let c = &mut self.cores[core];
        let cur = c.current.as_mut().expect("after_slice on idle core");
        cur.quantum_left -= used_us.ceil() as i64;
        match result {
            SliceResult::KeepRunning => {
                if cur.quantum_left <= 0 {
                    if c.run_queue.is_empty() {
                        // Alone on the core: quantum renews invisibly.
                        cur.quantum_left = self.machine.quantum_us as i64;
                        None
                    } else {
                        // Preempt: back of the queue.
                        let t = cur.thread;
                        c.current = None;
                        c.run_queue.push_back(t);
                        Some(t)
                    }
                } else {
                    None
                }
            }
            SliceResult::Yielded { prefer_prog } => {
                if c.run_queue.is_empty() {
                    // sched_yield with no competitor: keep the core but the
                    // remaining quantum is forfeited per CFS semantics.
                    cur.quantum_left = self.machine.quantum_us as i64;
                    None
                } else {
                    let t = cur.thread;
                    c.current = None;
                    c.run_queue.push_back(t);
                    // Directed yield (BWS): bring the first waiting thread
                    // of the preferred program (other than the yielder)
                    // to the front of the queue.
                    if let Some(pp) = prefer_prog {
                        if let Some(pos) = c.run_queue.iter().position(|&th| th.0 == pp && th != t)
                        {
                            if pos != 0 {
                                if let Some(th) = c.run_queue.remove(pos) {
                                    c.run_queue.push_front(th);
                                }
                            }
                        }
                    }
                    Some(t)
                }
            }
            SliceResult::Slept => {
                let t = cur.thread;
                c.current = None;
                Some(t)
            }
        }
    }

    /// True if the core has neither a current thread nor queued ones.
    pub fn core_idle(&self, core: usize) -> bool {
        self.cores[core].current.is_none() && self.cores[core].run_queue.is_empty()
    }

    /// Number of preemption-eligible threads across all cores (diagnostic).
    pub fn total_load(&self) -> usize {
        self.cores.iter().map(|c| c.load()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os4() -> Os {
        Os::new(MachineConfig {
            cores: 4,
            sockets: 1,
            tick_us: 10,
            quantum_us: 100,
            ctx_switch_us: 2,
            core_speeds: Vec::new(),
        })
    }

    #[test]
    fn dispatch_pops_fifo() {
        let mut os = os4();
        os.enqueue(0, (0, 0));
        os.enqueue(0, (1, 0));
        let (t, _) = os.dispatch(0, 0, 50).unwrap();
        assert_eq!(t, (0, 0));
        // Core busy: no second dispatch.
        assert!(os.dispatch(0, 0, 50).is_none());
    }

    #[test]
    fn cross_program_switch_sets_cold_window_and_extra_cost() {
        let mut os = os4();
        os.enqueue(0, (0, 0));
        let (_, cost_first) = os.dispatch(0, 0, 50).unwrap();
        // First dispatch is a cross-program switch from "nothing".
        assert_eq!(cost_first, 4.0);
        assert_eq!(os.cores[0].cold_until, 50);
        os.after_slice(0, 10.0, SliceResult::Slept);
        // Same program again: cheap switch, cold window not extended.
        os.enqueue(0, (0, 1));
        let (_, cost_same) = os.dispatch(0, 100, 50).unwrap();
        assert_eq!(cost_same, 2.0);
        assert_eq!(os.cores[0].cold_until, 50);
        os.after_slice(0, 10.0, SliceResult::Slept);
        // Different program: expensive switch, window set from now.
        os.enqueue(0, (1, 0));
        let (_, cost_cross) = os.dispatch(0, 200, 50).unwrap();
        assert_eq!(cost_cross, 4.0);
        assert_eq!(os.cores[0].cold_until, 250);
    }

    #[test]
    fn quantum_expiry_preempts_only_under_contention() {
        let mut os = os4();
        os.enqueue(0, (0, 0));
        os.dispatch(0, 0, 0);
        // Alone: quantum renews, no preemption.
        assert_eq!(os.after_slice(0, 150.0, SliceResult::KeepRunning), None);
        assert!(os.cores[0].current.is_some());
        // With a competitor queued: preempted to the back.
        os.enqueue(0, (1, 0));
        let out = os.after_slice(0, 150.0, SliceResult::KeepRunning);
        assert_eq!(out, Some((0, 0)));
        assert!(os.cores[0].current.is_none());
        assert_eq!(os.cores[0].run_queue, [(1, 0), (0, 0)]);
    }

    #[test]
    fn yield_is_noop_when_alone() {
        let mut os = os4();
        os.enqueue(0, (0, 0));
        os.dispatch(0, 0, 0);
        assert_eq!(os.after_slice(0, 5.0, SliceResult::Yielded { prefer_prog: None }), None);
        assert!(os.cores[0].current.is_some());
    }

    #[test]
    fn yield_rotates_queue_under_contention() {
        let mut os = os4();
        os.enqueue(0, (0, 0));
        os.enqueue(0, (1, 0));
        os.dispatch(0, 0, 0);
        let out = os.after_slice(0, 5.0, SliceResult::Yielded { prefer_prog: None });
        assert_eq!(out, Some((0, 0)));
        // The yielder goes behind the waiter: ABP's unfairness mechanism.
        assert_eq!(os.cores[0].run_queue, [(1, 0), (0, 0)]);
    }

    #[test]
    fn directed_yield_prefers_same_program() {
        let mut os = os4();
        // Yielder (0,0); queue holds (1,0) then (0,1).
        os.enqueue(0, (0, 0));
        os.enqueue(0, (1, 0));
        os.enqueue(0, (0, 1));
        os.dispatch(0, 0, 0);
        let out = os.after_slice(0, 5.0, SliceResult::Yielded { prefer_prog: Some(0) });
        assert_eq!(out, Some((0, 0)));
        // (0,1) was rotated in front of (1,0).
        assert_eq!(os.cores[0].run_queue, [(0, 1), (1, 0), (0, 0)]);
    }

    #[test]
    fn directed_yield_without_own_candidate_is_plain_yield() {
        let mut os = os4();
        os.enqueue(0, (0, 0));
        os.enqueue(0, (1, 0));
        os.dispatch(0, 0, 0);
        os.after_slice(0, 5.0, SliceResult::Yielded { prefer_prog: Some(0) });
        // Only own candidate was the yielder itself: normal order stands.
        assert_eq!(os.cores[0].run_queue, [(1, 0), (0, 0)]);
    }

    #[test]
    fn sleep_removes_thread_from_core() {
        let mut os = os4();
        os.enqueue(0, (0, 0));
        os.dispatch(0, 0, 0);
        assert_eq!(os.after_slice(0, 5.0, SliceResult::Slept), Some((0, 0)));
        assert!(os.core_idle(0));
    }

    #[test]
    fn quantum_partial_use_keeps_running() {
        let mut os = os4();
        os.enqueue(0, (0, 0));
        os.enqueue(0, (1, 0));
        os.dispatch(0, 0, 0);
        assert_eq!(os.after_slice(0, 10.0, SliceResult::KeepRunning), None);
        let cur = os.cores[0].current.unwrap();
        assert_eq!(cur.quantum_left, 90);
    }

    #[test]
    fn load_counts_current_and_queued() {
        let mut os = os4();
        assert_eq!(os.total_load(), 0);
        os.enqueue(1, (0, 1));
        os.enqueue(1, (1, 1));
        os.dispatch(1, 0, 0);
        assert_eq!(os.cores[1].load(), 2);
        assert_eq!(os.total_load(), 2);
    }
}
