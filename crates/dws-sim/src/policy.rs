//! The multiprogramming policies compared in the paper's evaluation (§4).

use serde::{Deserialize, Serialize};

/// How a simulated work-stealing program behaves when co-running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Plain random work-stealing: workers spin on steal attempts, never
    /// yield, never sleep. The paper's solo-execution reference and the
    /// fallback DWS itself uses when it detects it is running alone (§4.4).
    Ws,
    /// Time-sharing + ABP yielding (stock MIT Cilk): a worker yields its
    /// core after every failed steal; the OS time-shares all programs'
    /// workers across all cores. Baseline "ABP" in §4.
    Abp,
    /// Space-sharing + equipartition: each of the `m` programs is pinned
    /// to a static `k/m`-core slice; within the slice workers behave like
    /// ABP. Baseline "EP" in §4.
    Ep,
    /// Demand-aware Work-Stealing (the paper's contribution): initial
    /// equipartition, workers sleep after `T_SLEEP` consecutive failed
    /// steals releasing their core in the shared allocation table, and a
    /// per-program coordinator wakes workers per Eq. 1 and the three
    /// constraint cases (§3).
    Dws,
    /// DWS without the coordinator's core-exclusivity: workers sleep and
    /// are woken the same way, but cores are not balanced among programs
    /// (a core may host several active workers of different programs).
    /// Ablation "DWS-NC" of §4.2.
    DwsNc,
    /// BWS-like balanced work-stealing (Ding et al., EuroSys'12 — the
    /// closest related system, §5): time-sharing like ABP, but a worker
    /// that fails a steal yields the core *to a preempted worker of its
    /// own program* when one is waiting, instead of to whoever is next.
    /// Simplified model of BWS's directed yield; no sleeping.
    Bws,
}

impl Policy {
    /// Does this policy pin worker *i* to core *i* (one worker per core)?
    pub fn affine_one_per_core(self) -> bool {
        matches!(self, Policy::Dws | Policy::DwsNc | Policy::Ws)
    }

    /// Does this policy use the core-allocation table?
    pub fn uses_alloc_table(self) -> bool {
        matches!(self, Policy::Dws)
    }

    /// Does this policy run a coordinator thread?
    pub fn has_coordinator(self) -> bool {
        matches!(self, Policy::Dws | Policy::DwsNc)
    }

    /// Do workers go to sleep after `T_SLEEP` failed steals?
    pub fn sleeps(self) -> bool {
        matches!(self, Policy::Dws | Policy::DwsNc)
    }

    /// Do workers yield the core after a failed steal (ABP mechanism)?
    pub fn yields_on_failed_steal(self) -> bool {
        matches!(self, Policy::Abp | Policy::Ep | Policy::Bws)
    }

    /// Does a yield prefer a waiting worker of the *same* program
    /// (BWS's directed yield)?
    pub fn yields_to_own_program(self) -> bool {
        matches!(self, Policy::Bws)
    }

    /// Short display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Ws => "WS",
            Policy::Abp => "ABP",
            Policy::Ep => "EP",
            Policy::Dws => "DWS",
            Policy::DwsNc => "DWS-NC",
            Policy::Bws => "BWS",
        }
    }

    /// All policies, in the order the paper discusses them (BWS last, as
    /// the §5 related-work comparison point).
    pub fn all() -> [Policy; 6] {
        [Policy::Ws, Policy::Abp, Policy::Ep, Policy::Dws, Policy::DwsNc, Policy::Bws]
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_paper() {
        // §3: only DWS both sleeps and coordinates with table exclusivity.
        assert!(Policy::Dws.sleeps());
        assert!(Policy::Dws.has_coordinator());
        assert!(Policy::Dws.uses_alloc_table());
        // §4.2: DWS-NC sleeps and has a coordinator but no exclusivity.
        assert!(Policy::DwsNc.sleeps());
        assert!(Policy::DwsNc.has_coordinator());
        assert!(!Policy::DwsNc.uses_alloc_table());
        // ABP/EP never sleep, yield instead.
        for p in [Policy::Abp, Policy::Ep] {
            assert!(!p.sleeps());
            assert!(p.yields_on_failed_steal());
            assert!(!p.has_coordinator());
        }
        // Plain WS neither yields nor sleeps.
        assert!(!Policy::Ws.sleeps());
        assert!(!Policy::Ws.yields_on_failed_steal());
        // BWS (related work, §5): time-sharing with directed yields.
        assert!(Policy::Bws.yields_on_failed_steal());
        assert!(Policy::Bws.yields_to_own_program());
        assert!(!Policy::Bws.sleeps());
        assert!(!Policy::Bws.uses_alloc_table());
        assert!(!Policy::Abp.yields_to_own_program());
    }

    #[test]
    fn all_lists_every_policy_once() {
        let all = Policy::all();
        assert_eq!(all.len(), 6);
        let set: std::collections::HashSet<_> = all.iter().map(|p| p.label()).collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn labels_are_figure_legends() {
        assert_eq!(Policy::Dws.label(), "DWS");
        assert_eq!(Policy::DwsNc.label(), "DWS-NC");
        assert_eq!(Policy::Abp.to_string(), "ABP");
    }
}
