//! A simulated work-stealing program: per-worker deques, the fork-join
//! interpreter for [`WorkloadSpec`]s, and the worker state machine of the
//! paper's Algorithm 1.

use std::collections::VecDeque;

use crate::config::{SchedConfig, SimTime};
use crate::metrics::ProgramMetrics;
use crate::rng::XorShift64Star;
use crate::workload::{JoinId, PhaseSpec, Task, TaskBody, WorkloadSpec};

/// Sub-microsecond residue below which task work counts as finished.
const WORK_EPSILON: f64 = 1e-9;

/// Hard cap on tasks per batch transfer; mirrors
/// `dws_deque::MAX_STEAL_BATCH`.
const MAX_STEAL_BATCH: usize = 32;

/// Tasks one batch steal may take from a deque observed with `len`
/// queued tasks. Mirrors `dws_deque::batch_quota` exactly — ceil-half,
/// capped by `limit` and [`MAX_STEAL_BATCH`] — so simulated transfer
/// sizes match the real runtime's (pinned by a parity test below).
pub(crate) fn batch_quota(len: usize, limit: usize) -> usize {
    len.div_ceil(2).min(limit).min(MAX_STEAL_BATCH)
}

/// A pending join: when `remaining` subtree notifications arrive, the
/// continuation task becomes runnable on the notifying worker.
#[derive(Debug)]
struct Join {
    remaining: u32,
    cont: Option<Task>,
}

/// Scheduling state of one simulated worker thread.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerState {
    /// Looking for work (popping / stealing).
    Idle,
    /// Executing a task with `remaining_us` of nominal work left.
    Running {
        /// The task being executed.
        task: Task,
        /// Nominal microseconds of work remaining.
        remaining_us: f64,
    },
}

/// One simulated worker thread.
#[derive(Debug)]
pub struct WorkerSim {
    /// Current execution state.
    pub state: WorkerState,
    /// Consecutive failed steal attempts (Algorithm 1's `failed_steals`).
    pub failed_steals: u32,
    /// Core this worker is affined to (one-worker-per-core policies) or
    /// assigned to by the OS model.
    pub core: usize,
    /// False while the worker sleeps (DWS/DWS-NC).
    pub awake: bool,
    /// Victim-scan cursor: the first steal attempt after a success picks a
    /// random victim; consecutive failures sweep cyclically from there
    /// (Cilk-5 / rayon practice), guaranteeing work is found within one
    /// pass if any deque is non-empty.
    scan: usize,
}

/// What a worker did with its CPU slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Consumed the whole budget (still runnable).
    Worked,
    /// Voluntarily yielded the core after a failed steal (ABP).
    Yielded,
    /// Crossed `T_SLEEP` failed steals and went to sleep (DWS/DWS-NC).
    /// The caller must mark the worker asleep and release its core.
    Slept,
}

/// A simulated work-stealing program (one "p-i" of the paper).
pub struct SimProgram {
    /// Program index among the co-runners.
    pub id: usize,
    /// Scheduler configuration (policy, T_SLEEP, coordinator period, ...).
    pub sched: SchedConfig,
    /// The benchmark this program runs.
    pub spec: WorkloadSpec,
    /// One deque per worker.
    pub deques: Vec<VecDeque<Task>>,
    /// Worker states; index = worker id (= core id for affine policies).
    pub workers: Vec<WorkerSim>,
    /// Collected statistics.
    pub metrics: ProgramMetrics,
    /// Completed workload traversals.
    pub runs_completed: usize,
    /// Restart the workload immediately after each run (co-run mode).
    pub continuous: bool,
    joins: Vec<Join>,
    free_joins: Vec<JoinId>,
    run_start_us: SimTime,
    rng: XorShift64Star,
}

impl SimProgram {
    /// Creates a program with `n_workers` workers. Worker `i` is affined
    /// to core `cores[i]`. Workers listed in `initially_active` start
    /// awake; the rest start asleep (DWS's initial equipartition).
    pub fn new(
        id: usize,
        spec: WorkloadSpec,
        sched: SchedConfig,
        cores: &[usize],
        initially_active: &[bool],
        seed: u64,
        continuous: bool,
    ) -> Self {
        assert_eq!(cores.len(), initially_active.len());
        let n = cores.len();
        let workers = (0..n)
            .map(|i| WorkerSim {
                state: WorkerState::Idle,
                failed_steals: 0,
                core: cores[i],
                awake: initially_active[i],
                scan: 0,
            })
            .collect();
        let mut prog = SimProgram {
            id,
            sched,
            spec,
            deques: (0..n).map(|_| VecDeque::new()).collect(),
            workers,
            metrics: ProgramMetrics::default(),
            runs_completed: 0,
            continuous,
            joins: Vec::new(),
            free_joins: Vec::new(),
            run_start_us: 0,
            rng: XorShift64Star::new(seed ^ 0xD1B5_4A32_D192_ED03),
        };
        // Seed the first run: the root task goes to the first active
        // worker's deque (the "main" worker).
        let start = prog.phase_start_task(0);
        let main = initially_active.iter().position(|&a| a).unwrap_or(0);
        prog.deques[main].push_back(start);
        prog
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// `N_b`: total queued (not yet started) tasks across all deques.
    pub fn queued_tasks(&self) -> usize {
        self.deques.iter().map(|d| d.len()).sum()
    }

    /// `N_a`: number of awake workers.
    pub fn active_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.awake).count()
    }

    /// Indices of sleeping workers.
    pub fn sleeping_workers(&self) -> Vec<usize> {
        (0..self.workers.len()).filter(|&i| !self.workers[i].awake).collect()
    }

    /// True when a fixed-run-count program has nothing left to do.
    pub fn idle_quiescent(&self) -> bool {
        self.queued_tasks() == 0
            && self.workers.iter().all(|w| matches!(w.state, WorkerState::Idle))
    }

    fn alloc_join(&mut self, remaining: u32, cont: Task) -> JoinId {
        debug_assert!(remaining > 0);
        if let Some(id) = self.free_joins.pop() {
            self.joins[id] = Join { remaining, cont: Some(cont) };
            id
        } else {
            self.joins.push(Join { remaining, cont: Some(cont) });
            self.joins.len() - 1
        }
    }

    /// Notifies join `j` from worker `w`; if it completes, its
    /// continuation is pushed onto `w`'s deque (the last subtree to finish
    /// continues, as in Cilk).
    fn notify_join(&mut self, j: JoinId, w: usize) {
        let join = &mut self.joins[j];
        debug_assert!(join.remaining > 0, "join {j} over-notified");
        join.remaining -= 1;
        if join.remaining == 0 {
            let cont = join.cont.take().expect("join continuation consumed twice");
            self.free_joins.push(j);
            self.deques[w].push_back(cont);
        }
    }

    fn phase_start_task(&self, phase: usize) -> Task {
        Task { body: TaskBody::PhaseStart { phase }, work_us: 0.0, mem: 0.0, notify: None }
    }

    /// Builds the root task of `phase`, notifying `notify` when the phase
    /// completes.
    fn phase_root(&mut self, phase: usize, notify: Option<JoinId>) -> Task {
        let spawn_cost = self.sched.spawn_cost_us;
        match self.spec.phases[phase] {
            PhaseSpec::Recursive {
                depth, branch, leaf_work_us, node_work_us, mem, jitter, ..
            } => {
                if depth == 0 {
                    let j = self.rng.jitter(jitter);
                    Task { body: TaskBody::Leaf, work_us: leaf_work_us * j, mem, notify }
                } else {
                    Task {
                        body: TaskBody::RecNode { depth, phase },
                        work_us: node_work_us + branch as f64 * spawn_cost,
                        mem: mem * 0.25, // spawn-side work is mostly control
                        notify,
                    }
                }
            }
            PhaseSpec::Waves { mem, .. } => Task {
                body: TaskBody::WaveMaster { iter: 0, phase },
                work_us: 2.0 * spawn_cost,
                mem: mem * 0.25,
                notify,
            },
        }
    }

    /// Handles completion of `task` on worker `w` at simulated time `now`:
    /// spawns children, fires joins, records run boundaries.
    fn complete_task(&mut self, task: Task, w: usize, now: SimTime) {
        self.metrics.tasks_executed += 1;
        match task.body {
            TaskBody::Leaf | TaskBody::Merge { .. } => {
                if let Some(j) = task.notify {
                    self.notify_join(j, w);
                }
            }
            TaskBody::RecNode { depth, phase } => {
                let PhaseSpec::Recursive {
                    branch,
                    leaf_work_us,
                    node_work_us,
                    merge_work_us,
                    merge_grows,
                    mem,
                    jitter,
                    ..
                } = self.spec.phases[phase]
                else {
                    unreachable!("RecNode in non-recursive phase")
                };
                let merge_work = if merge_grows {
                    merge_work_us * (branch as f64).powi(depth as i32)
                } else {
                    merge_work_us
                };
                let merge = Task {
                    body: TaskBody::Merge { depth, phase },
                    work_us: merge_work * self.rng.jitter(jitter),
                    mem,
                    notify: task.notify,
                };
                let join = self.alloc_join(branch, merge);
                let child_depth = depth - 1;
                let spawn_cost = self.sched.spawn_cost_us;
                for _ in 0..branch {
                    let child = if child_depth == 0 {
                        Task {
                            body: TaskBody::Leaf,
                            work_us: leaf_work_us * self.rng.jitter(jitter),
                            mem,
                            notify: Some(join),
                        }
                    } else {
                        Task {
                            body: TaskBody::RecNode { depth: child_depth, phase },
                            work_us: node_work_us + branch as f64 * spawn_cost,
                            mem: mem * 0.25,
                            notify: Some(join),
                        }
                    };
                    self.deques[w].push_back(child);
                }
            }
            TaskBody::WaveMaster { iter, phase } => {
                let spec = &self.spec.phases[phase];
                let width = spec.wave_width(iter);
                let PhaseSpec::Waves { serial_us, mem, jitter, .. } = *spec else {
                    unreachable!("WaveMaster in non-wave phase")
                };
                let gap = Task {
                    body: TaskBody::SerialGap { next_iter: iter + 1, phase },
                    work_us: serial_us * self.rng.jitter(jitter),
                    mem,
                    notify: task.notify,
                };
                let join = self.alloc_join(width, gap);
                self.push_wave_subtree(w, width, iter, phase, join);
            }
            TaskBody::WaveSplit { count, iter, phase } => {
                let join = task.notify.expect("wave split without a join");
                self.push_wave_subtree(w, count, iter, phase, join);
            }
            TaskBody::SerialGap { next_iter, phase } => {
                let PhaseSpec::Waves { iters, mem, .. } = self.spec.phases[phase] else {
                    unreachable!("SerialGap in non-wave phase")
                };
                if next_iter < iters {
                    self.deques[w].push_back(Task {
                        body: TaskBody::WaveMaster { iter: next_iter, phase },
                        work_us: 2.0 * self.sched.spawn_cost_us,
                        mem: mem * 0.25,
                        notify: task.notify,
                    });
                } else if let Some(j) = task.notify {
                    self.notify_join(j, w);
                }
            }
            TaskBody::PhaseStart { phase } => {
                if phase == self.spec.phases.len() {
                    // Run boundary.
                    self.metrics.run_times_us.push(now - self.run_start_us);
                    self.runs_completed += 1;
                    self.run_start_us = now;
                    if self.continuous {
                        let next = self.phase_start_task(0);
                        self.deques[w].push_back(next);
                    }
                } else {
                    let cont = self.phase_start_task(phase + 1);
                    let join = self.alloc_join(1, cont);
                    let root = self.phase_root(phase, Some(join));
                    self.deques[w].push_back(root);
                }
            }
        }
    }

    /// Pushes the subtasks covering `count` wave leaves onto `w`'s deque:
    /// the leaves themselves for `count ≤ 2`, otherwise two half-range
    /// split nodes (binary fan-out, so thieves spread the wave in
    /// O(log width) steals).
    fn push_wave_subtree(&mut self, w: usize, count: u32, iter: u32, phase: usize, join: JoinId) {
        let PhaseSpec::Waves { task_work_us, mem, jitter, .. } = self.spec.phases[phase] else {
            unreachable!("wave subtree in non-wave phase")
        };
        if count == 0 {
            // Degenerate width; complete the join by spawning nothing —
            // the join was allocated with `remaining = width ≥ 1`, so a
            // zero count can only come from a split, which never produces
            // zero halves. Defensive: unreachable in practice.
            unreachable!("zero-leaf wave subtree");
        } else if count <= 2 {
            for _ in 0..count {
                self.deques[w].push_back(Task {
                    body: TaskBody::Leaf,
                    work_us: task_work_us * self.rng.jitter(jitter),
                    mem,
                    notify: Some(join),
                });
            }
        } else {
            let left = count / 2;
            let right = count - left;
            let spawn = self.sched.spawn_cost_us;
            for half in [left, right] {
                self.deques[w].push_back(Task {
                    body: TaskBody::WaveSplit { count: half, iter, phase },
                    work_us: 2.0 * spawn,
                    mem: 0.0,
                    notify: Some(join),
                });
            }
        }
    }

    /// Advances worker `w` by up to `budget_us` microseconds of core time.
    /// `slowdown` ≥ 1 scales the wall cost of the current task's work
    /// (cache model). Implements Algorithm 1: pop own deque, else steal
    /// from a random victim; count consecutive failures; sleep past
    /// `T_SLEEP` (DWS) or yield (ABP/EP).
    pub fn step_worker(
        &mut self,
        w: usize,
        budget_us: f64,
        slowdown: f64,
        now: SimTime,
    ) -> StepOutcome {
        self.step_worker_evictable(w, budget_us, slowdown, now, false)
    }

    /// As [`SimProgram::step_worker`], with an eviction request: when
    /// `evict` is set (the core-allocation table no longer grants this
    /// program the worker's core), the worker goes to sleep at the next
    /// task boundary — its queued tasks remain stealable by siblings —
    /// enforcing the paper's one-active-worker-per-core property (§4.2)
    /// at task granularity.
    pub fn step_worker_evictable(
        &mut self,
        w: usize,
        budget_us: f64,
        slowdown: f64,
        now: SimTime,
        evict: bool,
    ) -> StepOutcome {
        debug_assert!(self.workers[w].awake, "stepping a sleeping worker");
        debug_assert!(slowdown >= 1.0);
        let mut left = budget_us;
        let policy = self.sched.policy;

        while left > WORK_EPSILON {
            if evict && matches!(self.workers[w].state, WorkerState::Idle) {
                self.workers[w].failed_steals = 0;
                self.metrics.sleeps += 1;
                return StepOutcome::Slept;
            }
            // Take the state out to appease the borrow checker; it is
            // always written back before leaving the loop body.
            let state = std::mem::replace(&mut self.workers[w].state, WorkerState::Idle);
            match state {
                WorkerState::Running { task, remaining_us } => {
                    let wall_needed = remaining_us * slowdown;
                    if wall_needed <= left {
                        left -= wall_needed;
                        self.metrics.busy_us += wall_needed;
                        self.metrics.nominal_work_done_us += remaining_us;
                        self.complete_task(task, w, now);
                        // state stays Idle.
                    } else {
                        let nominal_progress = left / slowdown;
                        self.metrics.busy_us += left;
                        self.metrics.nominal_work_done_us += nominal_progress;
                        self.workers[w].state = WorkerState::Running {
                            task,
                            remaining_us: remaining_us - nominal_progress,
                        };
                        return StepOutcome::Worked;
                    }
                }
                WorkerState::Idle => {
                    // Pop own pool first (Algorithm 1 lines 4-6).
                    left -= self.sched.pop_cost_us;
                    self.metrics.steal_overhead_us += self.sched.pop_cost_us;
                    if let Some(task) = self.deques[w].pop_back() {
                        self.workers[w].failed_steals = 0;
                        let remaining_us = task.work_us;
                        self.workers[w].state = WorkerState::Running { task, remaining_us };
                        continue;
                    }
                    // Steal from a victim (lines 8-13): random start, then
                    // a cyclic sweep across consecutive failures.
                    let n = self.workers.len();
                    let victim = if n > 1 {
                        let v = if self.workers[w].failed_steals == 0 {
                            let mut v = self.rng.next_below(n - 1);
                            if v >= w {
                                v += 1;
                            }
                            v
                        } else {
                            let mut v = (self.workers[w].scan + 1) % n;
                            if v == w {
                                v = (v + 1) % n;
                            }
                            v
                        };
                        self.workers[w].scan = v;
                        v
                    } else {
                        w
                    };
                    if victim != w {
                        if let Some(task) = self.deques[victim].pop_front() {
                            left -= self.sched.steal_cost_us;
                            self.metrics.steal_overhead_us += self.sched.steal_cost_us;
                            self.metrics.steals_ok += 1;
                            self.workers[w].failed_steals = 0;
                            // Steal-half mirror of dws-rt's batched path:
                            // with the oldest task in hand, move the rest
                            // of the quota (ceil-half of what the victim
                            // held, capped by `steal_batch_limit` and the
                            // deque hard cap) into this worker's own
                            // deque. Each extra transfer costs one deque
                            // op; victim selection and the probe are paid
                            // once for the whole batch.
                            let observed = self.deques[victim].len() + 1;
                            let quota = batch_quota(observed, self.sched.steal_batch_limit);
                            let mut moved = 1u64;
                            for _ in 1..quota {
                                match self.deques[victim].pop_front() {
                                    Some(t) => {
                                        self.deques[w].push_back(t);
                                        left -= self.sched.pop_cost_us;
                                        self.metrics.steal_overhead_us += self.sched.pop_cost_us;
                                        moved += 1;
                                    }
                                    None => break,
                                }
                            }
                            self.metrics.tasks_stolen += moved;
                            let remaining_us = task.work_us;
                            self.workers[w].state = WorkerState::Running { task, remaining_us };
                            continue;
                        }
                    }
                    left -= self.sched.steal_fail_cost_us;
                    self.metrics.steal_overhead_us += self.sched.steal_fail_cost_us;
                    self.metrics.steals_failed += 1;
                    self.workers[w].failed_steals += 1;

                    if policy.sleeps() && self.workers[w].failed_steals > self.sched.t_sleep {
                        // Lines 14-16: go to sleep; caller releases the core.
                        self.workers[w].failed_steals = 0;
                        self.metrics.sleeps += 1;
                        return StepOutcome::Slept;
                    }
                    if policy.yields_on_failed_steal() {
                        self.metrics.yields += 1;
                        return StepOutcome::Yielded;
                    }
                    // Policy::Ws (and DWS below threshold): keep spinning.
                }
            }
        }
        StepOutcome::Worked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::workload::PhaseSpec;

    fn sched(policy: Policy) -> SchedConfig {
        SchedConfig::for_policy(policy, 4)
    }

    fn tiny_recursive() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny-rec".into(),
            phases: vec![PhaseSpec::Recursive {
                depth: 3,
                branch: 2,
                leaf_work_us: 10.0,
                node_work_us: 1.0,
                merge_work_us: 2.0,
                merge_grows: false,
                mem: 0.0,
                jitter: 0.0,
            }],
        }
    }

    fn tiny_waves() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny-waves".into(),
            phases: vec![PhaseSpec::Waves {
                iters: 4,
                width: 3,
                width_end: 0,
                task_work_us: 5.0,
                serial_us: 2.0,
                mem: 0.0,
                jitter: 0.0,
            }],
        }
    }

    fn solo_program(spec: WorkloadSpec, n: usize, policy: Policy) -> SimProgram {
        let cores: Vec<usize> = (0..n).collect();
        let active = vec![true; n];
        SimProgram::new(0, spec, sched(policy), &cores, &active, 1, false)
    }

    /// Drives a single-worker program to completion of one run.
    fn run_single_worker(mut prog: SimProgram) -> SimProgram {
        let mut now = 0;
        for _ in 0..1_000_000 {
            if prog.runs_completed >= 1 {
                break;
            }
            prog.step_worker(0, 50.0, 1.0, now);
            now += 50;
        }
        prog
    }

    #[test]
    fn single_worker_completes_recursive_run() {
        let prog = run_single_worker(solo_program(tiny_recursive(), 1, Policy::Ws));
        assert_eq!(prog.runs_completed, 1);
        // depth-3 binary tree: 8 leaves, 7 internal, 7 merges,
        // plus 2 PhaseStart sentinels.
        assert_eq!(prog.metrics.tasks_executed, 8 + 7 + 7 + 2);
        assert!(prog.idle_quiescent());
    }

    /// Split-tree interior nodes spawned for a wave of `c` leaves.
    fn splits(c: u64) -> u64 {
        if c <= 2 {
            0
        } else {
            2 + splits(c / 2) + splits(c - c / 2)
        }
    }

    #[test]
    fn single_worker_completes_wave_run() {
        let prog = run_single_worker(solo_program(tiny_waves(), 1, Policy::Ws));
        assert_eq!(prog.runs_completed, 1);
        // Per wave: 1 master + split tree + 3 leaves + 1 serial gap.
        let per_wave = 1 + splits(3) + 3 + 1;
        assert_eq!(prog.metrics.tasks_executed, 4 * per_wave + 2);
    }

    #[test]
    fn nominal_work_matches_spec_total() {
        let spec = tiny_recursive();
        let expected = spec.total_work_us();
        let prog = run_single_worker(solo_program(spec, 1, Policy::Ws));
        // The interpreter adds spawn overhead to internal nodes; nominal
        // work must cover at least the spec's accounting and stay close.
        assert!(
            prog.metrics.nominal_work_done_us >= expected - 1e-6,
            "executed {} < spec {}",
            prog.metrics.nominal_work_done_us,
            expected
        );
        assert!(prog.metrics.nominal_work_done_us < expected * 1.2);
    }

    #[test]
    fn two_workers_share_via_stealing() {
        let mut prog = solo_program(tiny_recursive(), 2, Policy::Ws);
        let mut now = 0;
        while prog.runs_completed < 1 && now < 1_000_000 {
            prog.step_worker(0, 10.0, 1.0, now);
            prog.step_worker(1, 10.0, 1.0, now);
            now += 10;
        }
        assert_eq!(prog.runs_completed, 1);
        assert!(prog.metrics.steals_ok > 0, "worker 1 must have stolen work");
        assert!(
            prog.metrics.tasks_stolen >= prog.metrics.steals_ok,
            "every successful steal moves at least one task"
        );
    }

    #[test]
    fn batch_quota_matches_the_real_deque() {
        for len in 0..200 {
            for limit in [1, 2, 3, 8, 31, 32, 33, usize::MAX] {
                assert_eq!(
                    batch_quota(len, limit),
                    dws_deque::batch_quota(len, limit),
                    "quota diverged at len={len} limit={limit}"
                );
            }
        }
    }

    /// A wide wave on one worker, then a sibling steals: the batch takes
    /// ceil-half of the victim's queue (capped), never more, and
    /// completion still executes every task exactly once.
    #[test]
    fn batched_steal_moves_half_and_conserves_tasks() {
        let mut cfg = sched(Policy::Ws);
        cfg.steal_batch_limit = 4;
        let cores: Vec<usize> = (0..2).collect();
        let active = vec![true; 2];
        let mut prog = SimProgram::new(0, tiny_recursive(), cfg, &cores, &active, 1, false);
        let mut now = 0;
        while prog.runs_completed < 1 && now < 1_000_000 {
            prog.step_worker(0, 10.0, 1.0, now);
            prog.step_worker(1, 10.0, 1.0, now);
            now += 10;
        }
        assert_eq!(prog.runs_completed, 1);
        let solo = run_single_worker(solo_program(tiny_recursive(), 1, Policy::Ws));
        assert_eq!(
            prog.metrics.tasks_executed, solo.metrics.tasks_executed,
            "batching must not lose or duplicate tasks"
        );
        // Mean batch size is bounded by the limit.
        assert!(prog.metrics.tasks_stolen <= prog.metrics.steals_ok * 4);
    }

    /// `steal_batch_limit == 1` restores single-task stealing exactly.
    #[test]
    fn batching_disabled_steals_one_task_per_op() {
        let mut cfg = sched(Policy::Ws);
        cfg.steal_batch_limit = 1;
        let cores: Vec<usize> = (0..2).collect();
        let active = vec![true; 2];
        let mut prog = SimProgram::new(0, tiny_recursive(), cfg, &cores, &active, 1, false);
        let mut now = 0;
        while prog.runs_completed < 1 && now < 1_000_000 {
            prog.step_worker(0, 10.0, 1.0, now);
            prog.step_worker(1, 10.0, 1.0, now);
            now += 10;
        }
        assert_eq!(prog.runs_completed, 1);
        assert_eq!(
            prog.metrics.tasks_stolen, prog.metrics.steals_ok,
            "with batching off, one op moves exactly one task"
        );
    }

    #[test]
    fn continuous_mode_restarts_runs() {
        let cores = [0];
        let active = [true];
        let mut prog =
            SimProgram::new(0, tiny_waves(), sched(Policy::Ws), &cores, &active, 1, true);
        let mut now = 0;
        while prog.runs_completed < 3 && now < 10_000_000 {
            prog.step_worker(0, 50.0, 1.0, now);
            now += 50;
        }
        assert!(prog.runs_completed >= 3);
        assert_eq!(prog.metrics.run_times_us.len(), prog.runs_completed);
    }

    #[test]
    fn abp_worker_yields_after_failed_steal() {
        let mut prog = solo_program(tiny_recursive(), 2, Policy::Abp);
        // Drain worker 0's root so both deques are empty, then step the
        // *other* worker: it must fail its steal and yield.
        // (Worker 1 starts with an empty deque; worker 0 holds the root.)
        let out = prog.step_worker(1, 1_000.0, 1.0, 0);
        // With the root still queued on worker 0, the steal may succeed;
        // force the empty case instead:
        let _ = out;
        let mut prog = solo_program(tiny_recursive(), 2, Policy::Abp);
        prog.deques[0].clear();
        let out = prog.step_worker(1, 1_000.0, 1.0, 0);
        assert_eq!(out, StepOutcome::Yielded);
        assert_eq!(prog.metrics.yields, 1);
    }

    #[test]
    fn dws_worker_sleeps_after_t_sleep_failures() {
        let mut prog = solo_program(tiny_recursive(), 2, Policy::Dws);
        prog.deques[0].clear();
        // T_SLEEP = 4 (cores=4 in sched helper); each failed steal costs
        // steal_fail_cost_us, so a big budget lets it hit the threshold in
        // one step call.
        let out = prog.step_worker(1, 10_000.0, 1.0, 0);
        assert_eq!(out, StepOutcome::Slept);
        assert_eq!(prog.metrics.sleeps, 1);
        assert_eq!(
            prog.metrics.steals_failed,
            prog.sched.t_sleep as u64 + 1,
            "sleeps on the first failure beyond T_SLEEP"
        );
        // failed_steals reset for the next wake.
        assert_eq!(prog.workers[1].failed_steals, 0);
    }

    #[test]
    fn ws_worker_spins_without_sleeping_or_yielding() {
        let mut prog = solo_program(tiny_recursive(), 2, Policy::Ws);
        prog.deques[0].clear();
        let out = prog.step_worker(1, 500.0, 1.0, 0);
        assert_eq!(out, StepOutcome::Worked);
        assert!(prog.metrics.steals_failed > 10);
        assert_eq!(prog.metrics.sleeps, 0);
        assert_eq!(prog.metrics.yields, 0);
    }

    #[test]
    fn slowdown_scales_wall_time() {
        // One leaf of 100 µs at slowdown 2 needs 200 µs of core time.
        let spec = WorkloadSpec {
            name: "one-leaf".into(),
            phases: vec![PhaseSpec::Recursive {
                depth: 0,
                branch: 2,
                leaf_work_us: 100.0,
                node_work_us: 0.0,
                merge_work_us: 0.0,
                merge_grows: false,
                mem: 1.0,
                jitter: 0.0,
            }],
        };
        let mut prog = solo_program(spec, 1, Policy::Ws);
        let mut now = 0;
        let mut core_time = 0.0;
        while prog.runs_completed < 1 {
            prog.step_worker(0, 10.0, 2.0, now);
            core_time += 10.0;
            now += 10;
            assert!(core_time < 1_000.0, "leaf should finish within ~200us of core time");
        }
        assert!(core_time >= 200.0, "100us of work at 2x slowdown takes ≥200us, got {core_time}");
    }

    #[test]
    fn queued_tasks_counts_all_deques() {
        let mut prog = solo_program(tiny_waves(), 2, Policy::Ws);
        // Execute the PhaseStart and the first WaveMaster to fan out, but
        // stop before the worker drains its own spawn batch.
        prog.step_worker(0, 2.5, 1.0, 0);
        assert!(prog.queued_tasks() > 0);
        let by_hand: usize = prog.deques.iter().map(|d| d.len()).sum();
        assert_eq!(prog.queued_tasks(), by_hand);
    }

    #[test]
    fn initially_sleeping_workers_are_reported() {
        let cores = [0, 1, 2, 3];
        let active = [true, true, false, false];
        let prog = SimProgram::new(0, tiny_waves(), sched(Policy::Dws), &cores, &active, 1, false);
        assert_eq!(prog.active_workers(), 2);
        assert_eq!(prog.sleeping_workers(), vec![2, 3]);
    }
}
