//! Deterministic pseudo-random number generation for the simulator.
//!
//! Every stochastic choice in the simulator (victim selection, free-core
//! selection, task-size jitter) draws from an explicitly seeded
//! xorshift64* generator, so a simulation run is a pure function of its
//! configuration and seed. This is what makes the figure-regeneration
//! binaries reproducible byte-for-byte.

/// xorshift64* — tiny, fast, and statistically adequate for scheduling
/// decisions (Vigna 2016). Not cryptographic.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64Star { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction; bias is negligible for the small
        // bounds used by the scheduler.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Multiplicative jitter in `[1-amp, 1+amp]`, for task-size variance.
    #[inline]
    pub fn jitter(&mut self, amp: f64) -> f64 {
        1.0 + amp * (2.0 * self.next_f64() - 1.0)
    }

    /// Splits off an independent generator (for per-worker streams).
    pub fn split(&mut self) -> Self {
        XorShift64Star::new(self.next_u64() | 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64Star::new(1);
        let mut b = XorShift64Star::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = XorShift64Star::new(7);
        for bound in [1usize, 2, 3, 16, 17, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut r = XorShift64Star::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = XorShift64Star::new(3);
        for _ in 0..1_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn jitter_bounded() {
        let mut r = XorShift64Star::new(5);
        for _ in 0..1_000 {
            let j = r.jitter(0.2);
            assert!((0.8..=1.2).contains(&j));
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut a = XorShift64Star::new(9);
        let mut b = a.split();
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
