//! Telemetry frames for simulated runs — the field-for-field mirror of
//! `dws_rt::telemetry`.
//!
//! The simulator samples the same [`TelemetryFrame`] schema the real
//! runtime's sampler thread emits, so `dws-top`, the JSONL sink and any
//! downstream tooling consume simulated and real co-runs
//! interchangeably. **Field names, types and declaration order here must
//! stay byte-identical to `dws_rt::telemetry`** — the `telemetry_mirror`
//! integration test in `dws-harness` enforces it by comparing serialized
//! schemas and cross-deserializing frames between the two crates.
//!
//! Differences of substance, not of schema:
//!
//! * `t_us` is the simulated clock, not wall time;
//! * [`LatencySample`] is all zeros — the simulator's µs-resolution event
//!   model has no nanosecond steal/sleep/wake histograms;
//! * `events_dropped` is the *global* sim trace drop count (one shared
//!   trace for all programs), repeated in every program's frame.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Owner of one core at sample time (`-1` = free).
pub type CoreOwner = i64;

/// One core's slot in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreSample {
    /// Core index.
    pub core: usize,
    /// Home program under the initial equipartition.
    pub home: usize,
    /// Current owner, or `-1` when free.
    pub owner: CoreOwner,
}

/// One worker's state in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerSample {
    /// Worker index.
    pub worker: usize,
    /// Is the worker asleep right now?
    pub asleep: bool,
    /// Jobs queued in the worker's deque.
    pub queue: usize,
}

/// The coordinator's most recent §3.3 evaluation: Eq. 1 inputs, the plan,
/// and what actually happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoordSample {
    /// Queued jobs observed (`N_b`).
    pub n_b: u64,
    /// Active workers observed (`N_a`).
    pub n_a: u64,
    /// Free cores observed (`N_f`).
    pub n_f: u64,
    /// Reclaimable home cores observed (`N_r`).
    pub n_r: u64,
    /// Eq. 1 wake target (`N_w`, clamped to sleepers).
    pub n_w: u64,
    /// Cores the plan takes from the free pool.
    pub planned_free: u64,
    /// Cores the plan reclaims.
    pub planned_reclaim: u64,
    /// Wakes actually delivered (CAS races can lose grants).
    pub woken: u64,
    /// Total coordinator evaluations so far (monotone).
    pub decisions: u64,
    /// Live `T_SLEEP` knob at decision time. The simulator has no
    /// adaptive controller, so this reports the configured constant.
    pub knob_t_sleep: u64,
    /// Live coordinator decision period knob, µs (configured constant in
    /// simulation).
    pub knob_period_us: u64,
    /// Live steal-batch limit knob (configured constant in simulation).
    pub knob_steal_batch: u64,
}

/// Monotone counters at sample time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSample {
    /// Successful steals.
    pub steals_ok: u64,
    /// Failed steal attempts.
    pub steals_failed: u64,
    /// Jobs executed to completion.
    pub jobs_executed: u64,
    /// Worker sleeps.
    pub sleeps: u64,
    /// Worker wakes.
    pub wakes: u64,
    /// Idle yields.
    pub yields: u64,
    /// Coordinator invocations.
    pub coordinator_runs: u64,
    /// Free cores acquired from the table.
    pub cores_acquired: u64,
    /// Home cores reclaimed from co-runners.
    pub cores_reclaimed: u64,
    /// Cores released to the table on sleep.
    pub cores_released: u64,
    /// Trace events dropped on ring overflow (0 with tracing off).
    pub events_dropped: u64,
    /// Telemetry frames evicted from the frame ring to admit newer ones.
    pub frames_evicted: u64,
    /// Stranded cores reaped back from dead co-runners.
    pub cores_reaped: u64,
    /// Dead-program leases fenced by this runtime's reaper pass.
    pub leases_expired: u64,
    /// 1 when the allocation table has degraded to in-process mode
    /// (shared shm file lost or corrupted), else 0. Always 0 in
    /// simulation: the simulated table has no backing file to lose.
    pub degraded: u64,
    /// Tasks moved by successful steals. One batched steal bumps
    /// `steals_ok` once but can move several tasks; the ratio is the
    /// mean steal batch size.
    pub tasks_stolen: u64,
    /// Steal attempts that lost every CAS race against a non-empty deque.
    /// Always 0 in simulation: the discrete-event model serializes steal
    /// attempts, so no CAS race exists to lose.
    pub steals_contended: u64,
    /// External requests admitted from the submission ring. Always 0 in
    /// simulation: the sim has no cross-process ring — its arrival model
    /// ([`crate::arrival`]) drives the harness generator instead.
    pub requests_admitted: u64,
    /// External requests dropped on a full submission ring. Always 0 in
    /// simulation.
    pub requests_dropped: u64,
    /// External requests refused for a stale client epoch. Always 0 in
    /// simulation: the simulated ring has no cross-process clients to
    /// fence.
    pub requests_fenced: u64,
    /// Ring reservations abandoned by the consumer (client died between
    /// reserve and publish). Always 0 in simulation.
    pub requests_abandoned: u64,
    /// Times the program found its own lease fenced/recycled while
    /// stalled (zombie fencing). Always 0 in simulation: the checker
    /// models zombies separately in virtual time.
    pub zombies_fenced: u64,
    /// Zombie recoveries (own lease re-armed under a bumped epoch).
    /// Always 0 in simulation.
    pub leases_rearmed: u64,
    /// Coordinator passes triggered by a doorbell edge. Always 0 in
    /// simulation: the sim coordinator runs on virtual-time ticks, not
    /// futex wakes.
    pub doorbell_wakes: u64,
    /// This program's settled core-µs integral from the allocation ledger
    /// (DESIGN §14). Filled in simulation too: the simulator keeps an
    /// exact virtual-time ledger over its core table.
    pub core_us_total: u64,
}

/// Rolling latency percentiles in nanoseconds (always zero in simulation:
/// the discrete-event model has no sub-µs latency histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencySample {
    /// Steal-attempt latency p50 over the last interval.
    pub steal_p50_ns: u64,
    /// Steal-attempt latency p99 over the last interval.
    pub steal_p99_ns: u64,
    /// Sleep duration p50 over the last interval.
    pub sleep_p50_ns: u64,
    /// Sleep duration p99 over the last interval.
    pub sleep_p99_ns: u64,
    /// Wake→first-task p50 over the last interval.
    pub wake_p50_ns: u64,
    /// Wake→first-task p99 over the last interval.
    pub wake_p99_ns: u64,
    /// Steal batch-size p50 over the last interval, as the upper
    /// power-of-two bucket bound (tasks, not ns; 0 when no steals landed
    /// — or, in `dws-rt`, when tracing is off).
    pub batch_p50_tasks: u64,
    /// Steal batch-size p99 over the last interval (tasks, not ns).
    pub batch_p99_tasks: u64,
    /// Task sojourn (spawn→exec-begin) p50 over the last interval.
    pub sojourn_p50_ns: u64,
    /// Task sojourn p99 over the last interval.
    pub sojourn_p99_ns: u64,
    /// Task sojourn p99.9 over the last interval.
    pub sojourn_p999_ns: u64,
    /// End-to-end request sojourn (client submit→exec-begin) p50 over the
    /// last interval. Always 0 in simulation, like the other latency
    /// percentiles.
    pub request_p50_ns: u64,
    /// Request sojourn p99 over the last interval.
    pub request_p99_ns: u64,
    /// Request sojourn p99.9 over the last interval.
    pub request_p999_ns: u64,
    /// Demand-satisfaction latency (Eq. 1 demand rise → core grant) p50
    /// over the last interval. Filled in simulation (µs-resolution demand
    /// clock, reported in ns), unlike the sub-µs histograms above.
    pub alloc_p50_ns: u64,
    /// Demand-satisfaction latency p99 over the last interval.
    pub alloc_p99_ns: u64,
    /// Demand-release latency (demand fall → core released) p50 over the
    /// last interval. Filled in simulation.
    pub release_p50_ns: u64,
    /// Demand-release latency p99 over the last interval.
    pub release_p99_ns: u64,
}

/// One time-series frame: everything an observer needs to render the
/// instant — core occupancy, worker states, demand/supply, counters and
/// rolling latency percentiles.
///
/// Field order is part of the wire format: `dws_rt::telemetry` declares
/// the identical struct and the two serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryFrame {
    /// Microseconds since the process trace epoch (real time) or the
    /// simulated clock (sim).
    pub t_us: u64,
    /// Emitting program id.
    pub prog: usize,
    /// Frame sequence number (monotone per program).
    pub seq: u64,
    /// Per-core occupancy, one entry per table core.
    pub cores: Vec<CoreSample>,
    /// Per-worker state, one entry per worker.
    pub workers: Vec<WorkerSample>,
    /// Latest coordinator decision.
    pub coord: CoordSample,
    /// Monotone counters.
    pub counters: CounterSample,
    /// Rolling latency percentiles.
    pub latency: LatencySample,
}

impl TelemetryFrame {
    /// Cores currently owned by the emitting program.
    pub fn cores_owned(&self) -> usize {
        self.cores.iter().filter(|c| c.owner == self.prog as i64).count()
    }

    /// Workers currently asleep.
    pub fn workers_asleep(&self) -> usize {
        self.workers.iter().filter(|w| w.asleep).count()
    }

    /// Total queued jobs across worker deques.
    pub fn queued_jobs(&self) -> usize {
        self.workers.iter().map(|w| w.queue).sum()
    }
}

/// Serializes frames as JSON Lines, one frame per line — the same
/// `--telemetry-out` sink format `dws_rt::frames_to_jsonl` produces.
pub fn frames_to_jsonl(frames: &[TelemetryFrame]) -> String {
    let mut out = String::new();
    for frame in frames {
        out.push_str(&serde_json::to_string(frame).expect("frame serialization"));
        out.push('\n');
    }
    out
}

/// Per-program sampling state: the bounded frame ring plus the last
/// coordinator decision (the sim analogue of `dws_rt`'s `DecisionCell` —
/// no seqlock needed, the simulator is single-threaded).
#[derive(Debug)]
pub(crate) struct ProgTelemetry {
    frames: VecDeque<TelemetryFrame>,
    seq: u64,
    evicted: u64,
    /// Last §3.3 evaluation for this program (`decisions` field unused
    /// here; the running count lives in [`ProgTelemetry::decisions`]).
    pub(crate) last_coord: CoordSample,
    /// Coordinator evaluations captured so far.
    pub(crate) decisions: u64,
    /// Demand-latency samples already folded into earlier frames, so each
    /// frame's percentiles cover only its own sampling window (the sim
    /// analogue of the rt side's rolling histogram diff).
    pub(crate) alloc_seen: usize,
    /// Same, for demand-release samples.
    pub(crate) release_seen: usize,
}

impl ProgTelemetry {
    fn new() -> Self {
        ProgTelemetry {
            frames: VecDeque::new(),
            seq: 0,
            evicted: 0,
            last_coord: CoordSample::default(),
            decisions: 0,
            alloc_seen: 0,
            release_seen: 0,
        }
    }

    pub(crate) fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// Sampler state for the whole machine: one ring per program plus the
/// sampling schedule.
#[derive(Debug)]
pub(crate) struct SimTelemetry {
    pub(crate) period_us: u64,
    pub(crate) next_sample_us: u64,
    capacity: usize,
    pub(crate) progs: Vec<ProgTelemetry>,
}

impl SimTelemetry {
    pub(crate) fn new(programs: usize, period_us: u64, capacity: usize, now_us: u64) -> Self {
        assert!(period_us > 0, "telemetry period must be nonzero");
        assert!(capacity > 0, "telemetry capacity must be nonzero");
        SimTelemetry {
            period_us,
            next_sample_us: now_us + period_us,
            capacity,
            progs: (0..programs).map(|_| ProgTelemetry::new()).collect(),
        }
    }

    /// Pushes a frame into `prog`'s ring, assigning its sequence number
    /// and evicting the oldest frame when full (mirroring the rt ring's
    /// evict-oldest policy).
    pub(crate) fn push(&mut self, prog: usize, mut frame: TelemetryFrame) {
        let capacity = self.capacity;
        let pt = &mut self.progs[prog];
        frame.seq = pt.seq;
        pt.seq += 1;
        if pt.frames.len() == capacity {
            pt.frames.pop_front();
            pt.evicted += 1;
        }
        pt.frames.push_back(frame);
    }

    pub(crate) fn frames(&self, prog: usize) -> Vec<TelemetryFrame> {
        self.progs[prog].frames.iter().cloned().collect()
    }

    pub(crate) fn latest(&self, prog: usize) -> Option<TelemetryFrame> {
        self.progs[prog].frames.back().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t_us: u64) -> TelemetryFrame {
        TelemetryFrame {
            t_us,
            prog: 0,
            seq: 0,
            cores: vec![CoreSample { core: 0, home: 0, owner: -1 }],
            workers: vec![WorkerSample { worker: 0, asleep: false, queue: 2 }],
            coord: CoordSample::default(),
            counters: CounterSample::default(),
            latency: LatencySample::default(),
        }
    }

    #[test]
    fn ring_assigns_monotone_seq_and_evicts_oldest() {
        let mut tel = SimTelemetry::new(1, 10, 2, 0);
        for t in 0..5 {
            tel.push(0, frame(t));
        }
        let frames = tel.frames(0);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].seq, 3);
        assert_eq!(frames[1].seq, 4);
        assert_eq!(tel.progs[0].evicted(), 3);
        assert_eq!(tel.latest(0).unwrap().t_us, 4);
    }

    #[test]
    fn jsonl_round_trips() {
        let text = frames_to_jsonl(&[frame(7), frame(8)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: TelemetryFrame = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(back, frame(8));
    }
}
