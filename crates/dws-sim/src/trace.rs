//! Structured scheduling-event traces.
//!
//! When enabled, the simulator records every demand-adaptation event —
//! sleeps (voluntary and evictions), wakes, table acquisitions, reclaims
//! and releases, coordinator decisions and run completions — with its
//! simulated timestamp. Traces drive the timeline diagnostics and the
//! event-sourcing tests (replaying the table events must reproduce the
//! final allocation state).

use serde::Serialize;

use crate::config::SimTime;

/// One scheduling event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SchedEvent {
    /// A worker went to sleep.
    Sleep {
        /// Program index.
        prog: usize,
        /// Worker index.
        worker: usize,
        /// True if the sleep was a core eviction (owner reclaimed it).
        evicted: bool,
    },
    /// A worker was woken by its coordinator.
    Wake {
        /// Program index.
        prog: usize,
        /// Worker index.
        worker: usize,
    },
    /// A program acquired a free core.
    Acquire {
        /// Program index.
        prog: usize,
        /// Core taken.
        core: usize,
    },
    /// A program reclaimed one of its home cores.
    Reclaim {
        /// Program index.
        prog: usize,
        /// Core reclaimed.
        core: usize,
    },
    /// A sleeping worker released its core into the table.
    Release {
        /// Program index.
        prog: usize,
        /// Core released.
        core: usize,
    },
    /// A coordinator evaluated Eq. 1.
    CoordTick {
        /// Program index.
        prog: usize,
        /// Observed queued tasks (N_b).
        n_b: usize,
        /// Observed active workers (N_a).
        n_a: usize,
        /// Wake target (N_w) after clamping.
        n_w: usize,
    },
    /// A program completed a workload traversal.
    RunComplete {
        /// Program index.
        prog: usize,
        /// Zero-based run number.
        run: usize,
        /// Duration of the run, µs.
        duration_us: SimTime,
    },
    /// A dead program's lease was fenced by a surviving coordinator
    /// (heartbeat stale + death confirmed — the sim mirror of
    /// `dws_rt::RtEvent::LeaseExpired`).
    LeaseExpired {
        /// The dead program.
        prog: usize,
    },
    /// A stranded core owned by a fenced (dead) program was returned to
    /// the free pool by a reaper (mirror of `dws_rt::RtEvent::Reap`).
    Reap {
        /// The dead program that owned the core.
        prog: usize,
        /// Core returned to the free pool.
        core: usize,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Simulated time of the event, µs.
    pub time_us: SimTime,
    /// What happened.
    pub event: SchedEvent,
}

/// A bounded event recorder. Disabled by default (zero overhead beyond a
/// branch); when the capacity is reached further events are counted but
/// dropped.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// An enabled trace holding at most `capacity` events.
    pub fn enabled(capacity: usize) -> Trace {
        Trace { events: Vec::new(), enabled: true, capacity, dropped: 0 }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled or full).
    pub fn record(&mut self, time_us: SimTime, event: SchedEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent { time_us, event });
    }

    /// All recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events matching `pred`.
    pub fn count(&self, pred: impl Fn(&SchedEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.event)).count()
    }

    /// Events within `[from, to)` µs.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.time_us >= from && e.time_us < to)
    }

    /// Replays the table-affecting events (Acquire / Reclaim / Release /
    /// the initial equipartition) and returns, per program, the set of
    /// cores it should hold at the end — the event-sourcing check used by
    /// tests.
    pub fn replay_table(
        &self,
        cores: usize,
        programs: usize,
        initial_home: &[usize],
    ) -> Vec<Option<usize>> {
        assert_eq!(initial_home.len(), cores);
        let mut slots: Vec<Option<usize>> = initial_home.iter().map(|&h| Some(h)).collect();
        for e in &self.events {
            match e.event {
                SchedEvent::Acquire { prog, core } | SchedEvent::Reclaim { prog, core } => {
                    assert!(prog < programs);
                    slots[core] = Some(prog);
                }
                SchedEvent::Release { prog, core } => {
                    debug_assert_eq!(slots[core], Some(prog), "release by non-owner in trace");
                    slots[core] = None;
                }
                SchedEvent::Reap { prog, core } => {
                    debug_assert_eq!(slots[core], Some(prog), "reap of non-owned core in trace");
                    slots[core] = None;
                }
                _ => {}
            }
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(5, SchedEvent::Wake { prog: 0, worker: 1 });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn capacity_drops_and_counts() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.record(i, SchedEvent::Wake { prog: 0, worker: 0 });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn count_and_between_filter() {
        let mut t = Trace::enabled(100);
        t.record(10, SchedEvent::Sleep { prog: 0, worker: 1, evicted: false });
        t.record(20, SchedEvent::Wake { prog: 0, worker: 1 });
        t.record(30, SchedEvent::Sleep { prog: 1, worker: 2, evicted: true });
        assert_eq!(t.count(|e| matches!(e, SchedEvent::Sleep { .. })), 2);
        assert_eq!(t.count(|e| matches!(e, SchedEvent::Sleep { evicted: true, .. })), 1);
        assert_eq!(t.between(15, 35).count(), 2);
    }

    #[test]
    fn replay_applies_table_events_in_order() {
        let mut t = Trace::enabled(100);
        t.record(1, SchedEvent::Release { prog: 0, core: 0 });
        t.record(2, SchedEvent::Acquire { prog: 1, core: 0 });
        t.record(3, SchedEvent::Reclaim { prog: 0, core: 0 });
        t.record(4, SchedEvent::Wake { prog: 0, worker: 0 }); // ignored
        let final_slots = t.replay_table(2, 2, &[0, 1]);
        assert_eq!(final_slots, vec![Some(0), Some(1)]);
    }

    #[test]
    fn replay_frees_reaped_cores() {
        let mut t = Trace::enabled(100);
        t.record(1, SchedEvent::LeaseExpired { prog: 1 }); // ignored by replay
        t.record(2, SchedEvent::Reap { prog: 1, core: 1 });
        t.record(3, SchedEvent::Acquire { prog: 0, core: 1 });
        let final_slots = t.replay_table(2, 2, &[0, 1]);
        assert_eq!(final_slots, vec![Some(0), Some(0)]);
    }
}
