//! Workload model: fork-join task DAGs with time-varying parallelism.
//!
//! The paper's benchmarks (Table 2) fall into two structural families that
//! determine how a program's *demand for cores* evolves — which is exactly
//! what DWS exploits:
//!
//! * **Recursive divide-and-conquer** (FFT, Mergesort, Cholesky's
//!   elimination tree): parallelism ramps 1 → `branch^depth` → 1, with a
//!   serial merge tail whose node cost can grow toward the root
//!   (mergesort's final merge touches the whole array). During the tail
//!   the program wants few cores.
//! * **Iterative waves** (Heat, SOR, GE, LU, PNN): each iteration spawns a
//!   `width`-wide batch of tasks, then a serial section (boundary exchange,
//!   pivot selection, weight update) runs before the next wave. Demand
//!   oscillates `width` → 1 → `width`. Widths may shrink over time
//!   (GE/LU/Cholesky eliminate rows).
//!
//! A [`WorkloadSpec`] is a sequence of such phases executed back-to-back;
//! one traversal of all phases is one *run* of the benchmark (one bar in
//! Fig. 4 is the mean run time under co-running, Eq. 2).

use serde::{Deserialize, Serialize};

/// Index into the per-program join table.
pub type JoinId = usize;

/// What a task does when its work completes, i.e. the DAG semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskBody {
    /// Plain work; completing it notifies `notify`.
    Leaf,
    /// Internal node of a recursive phase at `depth` (leaves are depth 0);
    /// spawns `branch` children and a merge continuation.
    RecNode {
        /// Levels below this node.
        depth: u32,
        /// Phase this node belongs to.
        phase: usize,
    },
    /// Join-side merge work of a recursive node.
    Merge {
        /// Level of the corresponding `RecNode`.
        depth: u32,
        /// Phase this node belongs to.
        phase: usize,
    },
    /// Wave fan-out root: spawns a binary *split tree* whose leaves are
    /// the wave's tasks (mirroring how a Cilk `cilk_for`/recursive sweep
    /// spreads work across deques exponentially rather than queueing the
    /// whole batch on one worker); the wave's join continues with the
    /// serial section.
    WaveMaster {
        /// Iteration number within the phase.
        iter: u32,
        /// Phase this wave belongs to.
        phase: usize,
    },
    /// Interior node of a wave's split tree, covering `count` leaves.
    WaveSplit {
        /// Leaves below this split node.
        count: u32,
        /// Iteration the node belongs to.
        iter: u32,
        /// Phase the node belongs to.
        phase: usize,
    },
    /// Serial section after wave `next_iter - 1`; on completion spawns the
    /// next wave (or finishes the phase).
    SerialGap {
        /// Iteration to start after the serial work.
        next_iter: u32,
        /// Phase this gap belongs to.
        phase: usize,
    },
    /// Zero-cost phase boundary; spawns phase `phase`'s root, or completes
    /// the run when `phase == phases.len()`.
    PhaseStart {
        /// Phase about to start.
        phase: usize,
    },
}

/// A schedulable unit: some CPU work plus DAG bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// DAG semantics on completion.
    pub body: TaskBody,
    /// CPU time at nominal (uncontended) speed, microseconds.
    pub work_us: f64,
    /// Fraction of the work that is memory-bound (drives the cache model).
    pub mem: f64,
    /// Join to notify when this task's subtree completes.
    pub notify: Option<JoinId>,
}

/// One phase of a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PhaseSpec {
    /// Balanced recursive fork-join tree.
    Recursive {
        /// Tree depth; the phase has `branch^depth` leaves.
        depth: u32,
        /// Fan-out per internal node.
        branch: u32,
        /// Work per leaf, µs.
        leaf_work_us: f64,
        /// Spawn-side work per internal node, µs.
        node_work_us: f64,
        /// Join-side (merge) work unit, µs.
        merge_work_us: f64,
        /// If true, a merge at depth `d` costs `merge_work_us * branch^d`
        /// (mergesort/FFT style: each level does the same total work, so
        /// the root merge is a long serial tail). If false, merges cost
        /// `merge_work_us` flat.
        merge_grows: bool,
        /// Memory intensity of the phase's tasks, 0..1.
        mem: f64,
        /// Multiplicative task-size jitter amplitude, 0..1.
        jitter: f64,
    },
    /// Iterative wave (barrier-style) parallelism.
    Waves {
        /// Number of iterations.
        iters: u32,
        /// Tasks per iteration at iteration 0.
        width: u32,
        /// If nonzero, width shrinks linearly to `width_end` at the final
        /// iteration (GE/LU/Cholesky row elimination).
        width_end: u32,
        /// Work per wave task, µs.
        task_work_us: f64,
        /// Serial section between iterations, µs.
        serial_us: f64,
        /// Memory intensity of the phase's tasks, 0..1.
        mem: f64,
        /// Multiplicative task-size jitter amplitude, 0..1.
        jitter: f64,
    },
}

impl PhaseSpec {
    /// Width of wave `iter` (interpolates `width → width_end`).
    pub fn wave_width(&self, iter: u32) -> u32 {
        match *self {
            PhaseSpec::Waves { iters, width, width_end, .. } => {
                if iters <= 1 || width_end == 0 || width_end == width {
                    width.max(1)
                } else {
                    let t = iter as f64 / (iters - 1) as f64;
                    let w = width as f64 + (width_end as f64 - width as f64) * t;
                    (w.round() as u32).max(1)
                }
            }
            PhaseSpec::Recursive { .. } => 0,
        }
    }

    /// Total CPU work of one traversal of this phase, µs (no jitter).
    pub fn total_work_us(&self) -> f64 {
        match *self {
            PhaseSpec::Recursive {
                depth,
                branch,
                leaf_work_us,
                node_work_us,
                merge_work_us,
                merge_grows,
                ..
            } => {
                let b = branch as f64;
                let leaves = b.powi(depth as i32);
                let mut internal = 0.0; // number of internal nodes
                let mut merge = 0.0;
                for d in 1..=depth {
                    let nodes_at_d = b.powi((depth - d) as i32);
                    internal += nodes_at_d;
                    let m =
                        if merge_grows { merge_work_us * b.powi(d as i32) } else { merge_work_us };
                    merge += nodes_at_d * m;
                }
                leaves * leaf_work_us + internal * node_work_us + merge
            }
            PhaseSpec::Waves { iters, task_work_us, serial_us, .. } => {
                let mut total = 0.0;
                for i in 0..iters {
                    total += self.wave_width(i) as f64 * task_work_us + serial_us;
                }
                total
            }
        }
    }

    /// Critical-path length of one traversal, µs (no jitter): the lower
    /// bound on run time with unlimited cores.
    pub fn critical_path_us(&self) -> f64 {
        match *self {
            PhaseSpec::Recursive {
                depth,
                branch,
                leaf_work_us,
                node_work_us,
                merge_work_us,
                merge_grows,
                ..
            } => {
                let b = branch as f64;
                let mut cp = leaf_work_us;
                for d in 1..=depth {
                    let m =
                        if merge_grows { merge_work_us * b.powi(d as i32) } else { merge_work_us };
                    cp += node_work_us + m;
                }
                cp
            }
            PhaseSpec::Waves { iters, task_work_us, serial_us, .. } => {
                iters as f64 * (task_work_us + serial_us)
            }
        }
    }
}

/// A complete benchmark workload: named sequence of phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name (e.g. "FFT", "Mergesort").
    pub name: String,
    /// Phases executed back-to-back; one traversal = one run.
    pub phases: Vec<PhaseSpec>,
}

impl WorkloadSpec {
    /// Total CPU work of one run, µs.
    pub fn total_work_us(&self) -> f64 {
        self.phases.iter().map(|p| p.total_work_us()).sum()
    }

    /// Critical path of one run, µs.
    pub fn critical_path_us(&self) -> f64 {
        self.phases.iter().map(|p| p.critical_path_us()).sum()
    }

    /// Average parallelism (work / span) — the classical `T1 / T∞`.
    pub fn avg_parallelism(&self) -> f64 {
        self.total_work_us() / self.critical_path_us()
    }

    /// Work-weighted mean memory intensity; classifies the program as
    /// data- vs compute-intensive (the §4.4 placement hook — the real
    /// system would read hardware counters / PAPI for this).
    pub fn mean_mem(&self) -> f64 {
        let mut work = 0.0;
        let mut weighted = 0.0;
        for ph in &self.phases {
            let w = ph.total_work_us();
            let mem = match *ph {
                PhaseSpec::Recursive { mem, .. } => mem,
                PhaseSpec::Waves { mem, .. } => mem,
            };
            work += w;
            weighted += mem * w;
        }
        if work == 0.0 {
            0.0
        } else {
            weighted / work
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(depth: u32, branch: u32) -> PhaseSpec {
        PhaseSpec::Recursive {
            depth,
            branch,
            leaf_work_us: 100.0,
            node_work_us: 1.0,
            merge_work_us: 2.0,
            merge_grows: false,
            mem: 0.5,
            jitter: 0.0,
        }
    }

    #[test]
    fn recursive_total_work_counts_all_nodes() {
        // depth 2, branch 2: 4 leaves, 3 internal nodes (depths 1,1,2).
        let p = rec(2, 2);
        // leaves: 4*100; internal spawn: 3*1; merges flat: 3*2.
        assert!((p.total_work_us() - (400.0 + 3.0 + 6.0)).abs() < 1e-9);
    }

    #[test]
    fn growing_merges_make_root_dominant() {
        let p = PhaseSpec::Recursive {
            depth: 3,
            branch: 2,
            leaf_work_us: 0.0,
            node_work_us: 0.0,
            merge_work_us: 1.0,
            merge_grows: true,
            mem: 0.0,
            jitter: 0.0,
        };
        // Merges: depth1: 4 nodes × 2 = 8; depth2: 2 × 4 = 8; depth3: 1 × 8 = 8.
        assert!((p.total_work_us() - 24.0).abs() < 1e-9);
        // Critical path includes one merge per level: 2 + 4 + 8 = 14.
        assert!((p.critical_path_us() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn waves_total_work_includes_serial_sections() {
        let p = PhaseSpec::Waves {
            iters: 3,
            width: 4,
            width_end: 0,
            task_work_us: 10.0,
            serial_us: 5.0,
            mem: 0.5,
            jitter: 0.0,
        };
        assert!((p.total_work_us() - (3.0 * (40.0 + 5.0))).abs() < 1e-9);
        assert!((p.critical_path_us() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn shrinking_waves_interpolate_width() {
        let p = PhaseSpec::Waves {
            iters: 5,
            width: 16,
            width_end: 4,
            task_work_us: 1.0,
            serial_us: 0.0,
            mem: 0.0,
            jitter: 0.0,
        };
        assert_eq!(p.wave_width(0), 16);
        assert_eq!(p.wave_width(4), 4);
        assert_eq!(p.wave_width(2), 10);
        // Widths never reach zero.
        let narrow = PhaseSpec::Waves {
            iters: 10,
            width: 2,
            width_end: 1,
            task_work_us: 1.0,
            serial_us: 0.0,
            mem: 0.0,
            jitter: 0.0,
        };
        for i in 0..10 {
            assert!(narrow.wave_width(i) >= 1);
        }
    }

    #[test]
    fn avg_parallelism_is_work_over_span() {
        let w = WorkloadSpec { name: "t".into(), phases: vec![rec(4, 2)] };
        let par = w.avg_parallelism();
        assert!(par > 1.0 && par < 16.0, "depth-4 binary tree parallelism ~{par}");
    }
}
