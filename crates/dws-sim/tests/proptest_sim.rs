//! Property tests over the simulator: work conservation, determinism,
//! table invariants and coordinator-decision consistency under random
//! inputs.

use dws_sim::{
    decide_dws, run_pair, run_solo, AllocTable, CoordCase, CoordObservation, MachineConfig,
    PhaseSpec, Policy, ProgramSpec, RunOptions, SchedConfig, SimConfig, Slot, WorkloadSpec,
    XorShift64Star,
};
use proptest::prelude::*;

fn small_workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    let rec = (1u32..6, 20.0f64..120.0, 0.0f64..0.9).prop_map(|(depth, leaf, mem)| {
        PhaseSpec::Recursive {
            depth,
            branch: 2,
            leaf_work_us: leaf,
            node_work_us: 1.0,
            merge_work_us: 2.0,
            merge_grows: true,
            mem,
            jitter: 0.1,
        }
    });
    let waves = (1u32..6, 2u32..40, 15.0f64..100.0, 0.0f64..500.0, 0.0f64..0.9).prop_map(
        |(iters, width, task, serial, mem)| PhaseSpec::Waves {
            iters,
            width,
            width_end: 0,
            task_work_us: task,
            serial_us: serial,
            mem,
            jitter: 0.1,
        },
    );
    proptest::collection::vec(prop_oneof![rec, waves], 1..3)
        .prop_map(|phases| WorkloadSpec { name: "prop".into(), phases })
}

fn machine(cores: usize) -> SimConfig {
    SimConfig {
        machine: MachineConfig { cores, sockets: 2, ..Default::default() },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random small workload completes solo under any policy, and the
    /// executed nominal work covers the spec's accounting for every run.
    #[test]
    fn solo_runs_conserve_work(
        wl in small_workload_strategy(),
        policy_idx in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let policy = Policy::all()[policy_idx];
        let mut cfg = machine(4);
        cfg.seed = seed;
        let sched = SchedConfig::for_policy(policy, 4);
        let rep = run_solo(
            cfg,
            wl.clone(),
            sched,
            RunOptions { min_runs: 2, warmup_runs: 0, max_time_us: 120_000_000 },
        );
        prop_assert!(!rep.metrics.run_times_us.is_empty(), "{policy}: no runs completed");
        let runs = rep.metrics.run_times_us.len() as f64;
        // Task sizes carry ±10% jitter, so a small workload's realized
        // work can deviate from the spec's expectation by a few percent.
        prop_assert!(
            rep.metrics.nominal_work_done_us >= wl.total_work_us() * runs * 0.85,
            "{policy}: executed {} < {} x {}",
            rep.metrics.nominal_work_done_us,
            wl.total_work_us(),
            runs
        );
    }

    /// Identical configuration + seed ⇒ bit-identical run traces.
    #[test]
    fn simulation_is_deterministic(
        wl in small_workload_strategy(),
        seed in 0u64..1_000,
    ) {
        let go = || {
            let mut cfg = machine(4);
            cfg.seed = seed;
            let sched = SchedConfig::for_policy(Policy::Dws, 4);
            run_pair(
                cfg,
                ProgramSpec { workload: wl.clone(), sched: sched.clone() },
                ProgramSpec { workload: wl.clone(), sched },
                RunOptions { min_runs: 1, warmup_runs: 0, max_time_us: 60_000_000 },
            )
        };
        let (a, b) = (go(), go());
        for (pa, pb) in a.programs.iter().zip(&b.programs) {
            prop_assert_eq!(&pa.metrics.run_times_us, &pb.metrics.run_times_us);
            prop_assert_eq!(pa.metrics.steals_ok, pb.metrics.steals_ok);
            prop_assert_eq!(pa.metrics.sleeps, pb.metrics.sleeps);
        }
    }

    /// Random release/acquire/reclaim sequences keep the table a valid
    /// partition: every core is FREE or owned by exactly one program, and
    /// home never changes.
    #[test]
    fn alloc_table_stays_a_partition(
        ops in proptest::collection::vec((0usize..8, 0usize..3, 0u8..3), 0..200),
    ) {
        let mut t = AllocTable::equipartition(8, 3);
        let homes: Vec<usize> = (0..8).map(|c| t.home(c)).collect();
        for (core, prog, op) in ops {
            match op {
                0 => {
                    if t.slot(core) == Slot::Used(prog) {
                        t.release(core, prog);
                    }
                }
                1 => {
                    let _ = t.acquire_free(core, prog);
                }
                _ => {
                    let _ = t.reclaim(core, prog);
                }
            }
            t.check_invariants(3);
            // Homes are immutable.
            for (c, &h) in homes.iter().enumerate() {
                prop_assert_eq!(t.home(c), h);
            }
            // Used/free counts always partition the 8 cores.
            let used: usize = (0..3).map(|p| t.used_by(p).len()).sum();
            prop_assert_eq!(used + t.n_free(), 8);
        }
    }

    /// decide_dws never violates the paper's three constraints, for any
    /// observation against any reachable table state.
    #[test]
    fn coordinator_respects_constraints(
        queued in 0usize..200,
        active in 0usize..8,
        sleeping in 0usize..8,
        releases in proptest::collection::vec((0usize..8, 0usize..2), 0..8),
        seed in 0u64..100,
    ) {
        let mut t = AllocTable::equipartition(8, 2);
        for (core, prog) in releases {
            if t.slot(core) == Slot::Used(prog) {
                t.release(core, prog);
                // Sometimes the other program takes it.
                if core % 2 == 0 {
                    t.acquire_free(core, 1 - prog);
                }
            }
        }
        let mut rng = XorShift64Star::new(seed + 1);
        let obs = CoordObservation {
            queued_tasks: queued,
            active_workers: active,
            sleeping_workers: sleeping,
        };
        let d = decide_dws(0, obs, &t, &mut rng);
        // Constraint 3: never touch cores another program holds unreleased.
        for &c in &d.take_free {
            prop_assert_eq!(t.slot(c), Slot::Free);
        }
        for &c in &d.reclaim {
            prop_assert_eq!(t.home(c), 0usize);
            prop_assert_ne!(t.slot(c), Slot::Used(0));
        }
        // Wake count respects both the demand and the sleeping supply.
        prop_assert!(d.total_wakes() <= d.n_w);
        prop_assert!(d.n_w <= sleeping);
        // Case labelling is consistent.
        match d.case {
            CoordCase::NoAction => prop_assert_eq!(d.total_wakes(), 0),
            CoordCase::FreeOnly => prop_assert!(d.reclaim.is_empty()),
            CoordCase::FreePlusReclaim => {
                prop_assert_eq!(d.take_free.len(), t.n_free());
                prop_assert_eq!(d.total_wakes(), d.n_w);
            }
            CoordCase::TakeAllAvailable => {
                prop_assert_eq!(d.take_free.len(), t.n_free());
                prop_assert_eq!(d.reclaim.len(), t.n_reclaimable(0));
            }
        }
    }

    /// The decision's per-pool counts follow the §3.3 three-case split
    /// exactly: `(n_w, 0)` when free cores suffice, `(n_f, n_w - n_f)`
    /// when reclaims cover the shortfall, `(n_f, n_r)` when demand
    /// exceeds everything. Mirrors `dws_rt::plan_wakes` (the cross-crate
    /// agreement test lives in the harness's `protocol_mirror` suite).
    #[test]
    fn decide_dws_counts_follow_the_three_cases(
        queued in 0usize..200,
        active in 0usize..8,
        sleeping in 1usize..8,
        releases in proptest::collection::vec((0usize..8, 0usize..2), 0..8),
        seed in 0u64..100,
    ) {
        let mut t = AllocTable::equipartition(8, 2);
        for (core, prog) in releases {
            if t.slot(core) == Slot::Used(prog) {
                t.release(core, prog);
                if core % 2 == 0 {
                    t.acquire_free(core, 1 - prog);
                }
            }
        }
        let (n_f, n_r) = (t.n_free(), t.n_reclaimable(0));
        let mut rng = XorShift64Star::new(seed + 1);
        let obs = CoordObservation {
            queued_tasks: queued,
            active_workers: active,
            sleeping_workers: sleeping,
        };
        let d = decide_dws(0, obs, &t, &mut rng);
        let (want_free, want_reclaim) = if d.n_w <= n_f {
            (d.n_w, 0)
        } else if d.n_w <= n_f + n_r {
            (n_f, d.n_w - n_f)
        } else {
            (n_f, n_r)
        };
        prop_assert_eq!(d.take_free.len(), want_free);
        prop_assert_eq!(d.reclaim.len(), want_reclaim);
    }

    /// Under DWS, releasing and re-acquiring must never lose a program's
    /// ability to finish: no pair of random workloads hits the horizon.
    #[test]
    fn no_corun_deadlocks(
        wl_a in small_workload_strategy(),
        wl_b in small_workload_strategy(),
        seed in 0u64..200,
    ) {
        let mut cfg = machine(4);
        cfg.seed = seed;
        let sched = SchedConfig::for_policy(Policy::Dws, 4);
        let rep = run_pair(
            cfg,
            ProgramSpec { workload: wl_a, sched: sched.clone() },
            ProgramSpec { workload: wl_b, sched },
            RunOptions { min_runs: 1, warmup_runs: 0, max_time_us: 200_000_000 },
        );
        prop_assert!(!rep.hit_horizon, "co-run never finished a single run each");
    }
}
