//! Co-run two DWS programs in one process, sharing a core-allocation
//! table (paper Table 1): program 0 runs a bursty workload that releases
//! cores during its serial phases; program 1 runs steady parallel work
//! and borrows them. The table state is printed as the run progresses.
//!
//! ```sh
//! cargo run --release --example corun_two_programs
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use dws_apps::common::random_u64s;
use dws_apps::mergesort::mergesort_parallel;
use dws_rt::{CoreTable, InProcessTable, Policy, Runtime, RuntimeConfig};

fn table_row(table: &Arc<dyn CoreTable>) -> String {
    (0..table.cores())
        .map(|c| match table.current(c) {
            None => ".".to_string(),
            Some(p) => p.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(2);
    // The shared table: 2 programs, adjacent equipartition.
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(cores, 2));
    println!("{cores}-core table, homes: {:?} / {:?}", table.used_by(0), table.used_by(1));

    let p0 = Arc::new(Runtime::with_table(
        RuntimeConfig::new(cores, Policy::Dws),
        Arc::clone(&table),
        0,
    ));
    let p1 = Arc::new(Runtime::with_table(
        RuntimeConfig::new(cores, Policy::Dws),
        Arc::clone(&table),
        1,
    ));

    let deadline = Instant::now() + Duration::from_millis(1500);

    // Program 0: bursty — parallel sort bursts separated by idle phases
    // (its workers sleep and release cores during the gaps).
    let p0_thread = {
        let p0 = Arc::clone(&p0);
        std::thread::spawn(move || {
            let mut bursts = 0u32;
            while Instant::now() < deadline {
                let mut keys = random_u64s(60_000, bursts as u64);
                p0.block_on(|| mergesort_parallel(&mut keys, 4096));
                bursts += 1;
                std::thread::sleep(Duration::from_millis(40)); // serial phase
            }
            bursts
        })
    };

    // Program 1: steady — continuous recursive summing.
    let p1_thread = {
        let p1 = Arc::clone(&p1);
        std::thread::spawn(move || {
            fn fib(n: u64) -> u64 {
                if n < 2 {
                    return n;
                }
                let (a, b) = dws_rt::join(|| fib(n - 1), || fib(n - 2));
                a + b
            }
            let mut rounds = 0u32;
            while Instant::now() < deadline {
                let _ = p1.block_on(|| fib(22));
                rounds += 1;
            }
            rounds
        })
    };

    // Observer: print the table as cores migrate.
    for i in 0..10 {
        std::thread::sleep(Duration::from_millis(140));
        println!("t={:>4}ms  [{}]", (i + 1) * 140, table_row(&table));
    }

    let bursts = p0_thread.join().unwrap();
    let rounds = p1_thread.join().unwrap();
    let (m0, m1) = (p0.metrics(), p1.metrics());
    println!(
        "\nprogram 0: {bursts} sort bursts | sleeps={} wakes={} released={}",
        m0.sleeps, m0.wakes, m0.cores_released
    );
    println!(
        "program 1: {rounds} fib rounds  | acquired={} reclaimed={}",
        m1.cores_acquired, m1.cores_reclaimed
    );
    println!("(legend: '.' = free core, digit = program using the core)");
}
