//! Demand-aware core allocation in action, on the simulated 16-core
//! testbed: a bursty program (PNN-like) co-runs with a steady one
//! (Heat-like) under DWS, and the example prints a timeline of how many
//! cores each holds — watch them trade cores as demand shifts.
//!
//! ```sh
//! cargo run --release --example demand_adaptive
//! ```

use dws_apps::Benchmark;
use dws_sim::{Policy, ProgramSpec, SchedConfig, SimConfig, Simulator};

fn bar(n: usize) -> String {
    "#".repeat(n)
}

fn main() {
    let cfg = SimConfig::default(); // 16 cores, 2 sockets, like the paper
    let sched = SchedConfig::for_policy(Policy::Dws, cfg.machine.cores);
    let mut sim = Simulator::new(
        cfg,
        vec![
            ProgramSpec { workload: Benchmark::Pnn.profile(), sched: sched.clone() },
            ProgramSpec { workload: Benchmark::Heat.profile(), sched },
        ],
    );

    println!("DWS co-run on the simulated 16-core machine");
    println!("{:<8} {:>5} {:>5}  {:<32}", "t (ms)", "PNN", "Heat", "core split (PNN # / Heat *)");
    let mut next = 0;
    while sim.now() < 1_200_000 {
        sim.tick();
        if sim.now() >= next {
            next += 60_000;
            let t = sim.alloc_table();
            let pnn = t.used_by(0).len();
            let heat = t.used_by(1).len();
            println!(
                "{:<8} {:>5} {:>5}  {}{}",
                sim.now() / 1000,
                pnn,
                heat,
                bar(pnn),
                "*".repeat(heat)
            );
        }
    }

    let p0 = sim.program(0);
    let p1 = sim.program(1);
    println!(
        "\nPNN : {} runs, {} sleeps, {} wakes",
        p0.runs_completed, p0.metrics.sleeps, p0.metrics.wakes
    );
    println!(
        "Heat: {} runs, {} cores acquired, {} reclaimed",
        p1.runs_completed, p1.metrics.cores_acquired, p1.metrics.cores_reclaimed
    );
    println!("\nDuring PNN's serial phases its workers sleep and release cores;");
    println!("Heat's coordinator (Eq. 1) wakes its own workers on them. When a");
    println!("PNN burst arrives, PNN reclaims its home cores (§3.3 case 2).");
}
