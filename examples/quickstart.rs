//! Quickstart: build a DWS runtime, run fork-join and scoped work, and
//! inspect scheduler metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dws_rt::{join, Policy, Runtime, RuntimeConfig};

fn parallel_sum(xs: &[u64]) -> u64 {
    if xs.len() <= 1024 {
        return xs.iter().sum();
    }
    let mid = xs.len() / 2;
    let (a, b) = join(|| parallel_sum(&xs[..mid]), || parallel_sum(&xs[mid..]));
    a + b
}

fn main() {
    // One worker per available core; plain work-stealing (a solo program
    // needs no demand-awareness — the paper's §4.4 fallback).
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let rt = Runtime::new(RuntimeConfig::new(workers, Policy::Ws));
    println!("runtime with {} workers, policy {}", rt.workers(), rt.effective_policy());

    // Fork-join: recursive parallel sum.
    let data: Vec<u64> = (0..1_000_000).collect();
    let total = rt.block_on(|| parallel_sum(&data));
    assert_eq!(total, 1_000_000 * 999_999 / 2);
    println!("parallel sum of 1e6 numbers = {total}");

    // Scoped tasks: borrow the stack, fan out, join implicitly.
    let mut squares = vec![0u64; 64];
    rt.scope(|s| {
        for (i, slot) in squares.iter_mut().enumerate() {
            s.spawn(move || *slot = (i * i) as u64);
        }
    });
    println!("squares[17] = {}", squares[17]);

    // A real benchmark kernel from the paper's Table 2.
    let mut keys = dws_apps::common::random_u64s(200_000, 42);
    rt.block_on(|| dws_apps::mergesort::mergesort_parallel(&mut keys, 2048));
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    println!("sorted 200k keys with the p-8 mergesort kernel");

    let m = rt.metrics();
    println!(
        "metrics: jobs={} steals_ok={} steals_failed={} yields={}",
        m.jobs_executed, m.steals_ok, m.steals_failed, m.yields
    );
}
