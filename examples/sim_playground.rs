//! Simulator playground: configure a custom machine, custom workloads and
//! any policy mix, then compare the five schedulers on your scenario.
//!
//! ```sh
//! cargo run --release --example sim_playground
//! ```

use dws_sim::{
    run_pair, run_solo, MachineConfig, PhaseSpec, Policy, ProgramSpec, RunOptions, SchedConfig,
    SimConfig, WorkloadSpec,
};

fn main() {
    // A hypothetical 8-core single-socket machine.
    let cfg = SimConfig {
        machine: MachineConfig { cores: 8, sockets: 1, ..Default::default() },
        ..Default::default()
    };

    // Workload A: bursty — short wide bursts, long serial gaps.
    let bursty = WorkloadSpec {
        name: "bursty".into(),
        phases: vec![PhaseSpec::Waves {
            iters: 10,
            width: 4_000,
            width_end: 0,
            task_work_us: 25.0,
            serial_us: 50_000.0,
            mem: 0.3,
            jitter: 0.1,
        }],
    };
    // Workload B: steady recursive divide-and-conquer.
    let steady = WorkloadSpec {
        name: "steady".into(),
        phases: vec![PhaseSpec::Recursive {
            depth: 13,
            branch: 2,
            leaf_work_us: 50.0,
            node_work_us: 1.0,
            merge_work_us: 1.5,
            merge_grows: true,
            mem: 0.5,
            jitter: 0.1,
        }],
    };

    let opts = RunOptions { min_runs: 3, warmup_runs: 1, max_time_us: 120_000_000 };

    // Solo baselines.
    let base_a =
        run_solo(cfg.clone(), bursty.clone(), SchedConfig::for_policy(Policy::Ws, 8), opts)
            .mean_run_time_us
            .unwrap();
    let base_b =
        run_solo(cfg.clone(), steady.clone(), SchedConfig::for_policy(Policy::Ws, 8), opts)
            .mean_run_time_us
            .unwrap();
    println!("solo baselines: bursty {:.1} ms, steady {:.1} ms\n", base_a / 1e3, base_b / 1e3);

    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>10}",
        "policy", "bursty (ms)", "steady (ms)", "norm-A", "norm-B"
    );
    for policy in [Policy::Abp, Policy::Ep, Policy::DwsNc, Policy::Dws] {
        let sched = SchedConfig::for_policy(policy, 8);
        let rep = run_pair(
            cfg.clone(),
            ProgramSpec { workload: bursty.clone(), sched: sched.clone() },
            ProgramSpec { workload: steady.clone(), sched },
            opts,
        );
        let a = rep.programs[0].mean_run_time_us.unwrap();
        let b = rep.programs[1].mean_run_time_us.unwrap();
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>10.2} {:>10.2}",
            policy.label(),
            a / 1e3,
            b / 1e3,
            a / base_a,
            b / base_b
        );
    }
    println!("\nExpected: DWS gives the steady program the bursty one's idle");
    println!("cores without hurting the bursty program's own bursts.");
}
