//! Mutation test for the checker itself (acceptance gate): a seeded
//! double-reclaim bug in the protocol model — a coordinator reclaiming a
//! home core it already owns — must be *found* by bounded random
//! exploration under aggressive fault injection, and the failing seed
//! must replay to the identical interleaving and violation. If the
//! checker ever stops catching this, the whole dws-check suite is
//! vacuous.

use dws_check::model::{self, Bug, ModelConfig};
use dws_check::{CheckOptions, Env, Explorer, FaultPlan};

#[test]
fn checker_catches_seeded_double_reclaim() {
    let cfg = ModelConfig::standard().with_bug(Bug::DoubleReclaim);
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));

    let report = explorer.random(0xDEAD_BEEF, 2_000);
    let failing = report
        .failing()
        .unwrap_or_else(|| {
            panic!("double-reclaim mutation survived {} schedules", report.schedules)
        })
        .clone();
    let failure = failing.failure.as_deref().unwrap();
    assert!(failure.contains("already owns it"), "unexpected failure: {failure}");
    assert!(!failing.events.is_empty(), "violation must come with its event trace");

    // Replay determinism: same seed ⇒ same decisions, events, violation.
    explorer.replay(&failing).expect("failing seed must replay identically");
}

// The two W1 mutations below keep every table transition legal and
// reconcile every completion counter — the run *settles cleanly* with a
// task silently gone. Only the oracle's task-identity ledger (W1: every
// spawned task executes) can see them, which is exactly what these
// tests prove.

#[test]
fn checker_catches_seeded_lost_batch_via_w1() {
    let cfg = ModelConfig::standard().with_bug(Bug::LostBatch);
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));

    let report = explorer.random(0xDEAD_BEEF, 2_000);
    let failing = report
        .failing()
        .unwrap_or_else(|| panic!("lost-batch mutation survived {} schedules", report.schedules))
        .clone();
    let failure = failing.failure.as_deref().unwrap();
    assert!(failure.contains("W1 violated"), "unexpected failure: {failure}");
    assert!(failure.contains("never executed"), "unexpected failure: {failure}");
    explorer.replay(&failing).expect("failing seed must replay identically");
}

#[test]
fn checker_catches_seeded_reap_strand_via_w1() {
    // The survivor needs tasks still parked when the reap lands
    // (~one lease after the crash), or there is nothing to strand.
    let cfg = ModelConfig { tasks: vec![40, 30], ..ModelConfig::crash() }.with_bug(Bug::ReapStrand);
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));

    let report = explorer.random(0xDEAD_BEEF, 2_000);
    let failing = report
        .failing()
        .unwrap_or_else(|| panic!("reap-strand mutation survived {} schedules", report.schedules))
        .clone();
    let failure = failing.failure.as_deref().unwrap();
    assert!(failure.contains("W1 violated"), "unexpected failure: {failure}");
    explorer.replay(&failing).expect("failing seed must replay identically");
}

#[test]
fn checker_catches_seeded_dropped_submit_via_the_admission_ledger() {
    // The serving-path W1 analogue: the coordinator's drain pops a
    // request from the submission ring but never admits it, reconciling
    // the completion counter so the run settles cleanly. Every table
    // transition is legal and every counter reaches zero — only the
    // oracle's admission ledger (every submitted request is admitted,
    // every admitted request reaches exactly-once exec) can see it.
    let cfg = ModelConfig::serving().with_bug(Bug::DroppedSubmit);
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));

    let report = explorer.random(0xDEAD_BEEF, 2_000);
    let failing = report
        .failing()
        .unwrap_or_else(|| {
            panic!("dropped-submit mutation survived {} schedules", report.schedules)
        })
        .clone();
    let failure = failing.failure.as_deref().unwrap();
    assert!(failure.contains("admission lost"), "unexpected failure: {failure}");
    assert!(failure.contains("never admitted"), "unexpected failure: {failure}");
    explorer.replay(&failing).expect("failing seed must replay identically");
}

#[test]
fn checker_catches_seeded_zombie_write_via_the_post_fence_rule() {
    // The pause scenario: a SIGSTOPped co-runner is stall-fenced and
    // reaped while quiescent, then SIGCONTed. With Bug::ZombieWrite the
    // resumed victim skips the post-resume fence check and keeps
    // working — its reclaims/acquires succeed, its tasks all finish and
    // every counter, ledger and table snapshot reconciles. Only the
    // oracle's post-fence rule (no transition or work by an expired
    // prog) can see the zombie.
    let cfg = ModelConfig::pause().with_bug(Bug::ZombieWrite);
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));

    let report = explorer.random(0xDEAD_BEEF, 2_000);
    let failing = report
        .failing()
        .unwrap_or_else(|| panic!("zombie-write mutation survived {} schedules", report.schedules))
        .clone();
    let failure = failing.failure.as_deref().unwrap();
    assert!(failure.contains("expired prog"), "unexpected failure: {failure}");
    explorer.replay(&failing).expect("failing seed must replay identically");
}

#[test]
fn checker_catches_seeded_lost_wake_via_the_doorbell_rule() {
    // The event-driven control plane's headline hazard: a doorbell ring
    // that notifies without persisting the pending word. A ring landing
    // while the coordinator is between waits evaporates; the timeout
    // fallback still runs every pass, so all work completes, every table
    // transition is legal and every counter reconciles — only the
    // oracle's doorbell wake rule (a sleep must never begin with a ring
    // pending) can see the lost wake.
    let cfg = ModelConfig::doorbell().with_bug(Bug::LostWake);
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));

    let report = explorer.random(0xDEAD_BEEF, 2_000);
    let failing = report
        .failing()
        .unwrap_or_else(|| panic!("lost-wake mutation survived {} schedules", report.schedules))
        .clone();
    let failure = failing.failure.as_deref().unwrap();
    assert!(failure.contains("lost wake"), "unexpected failure: {failure}");
    assert!(failure.contains("ring pending"), "unexpected failure: {failure}");
    explorer.replay(&failing).expect("failing seed must replay identically");
}

#[test]
fn unmutated_doorbell_model_passes_the_same_budget() {
    // Every interleaving of ring vs wait vs timeout must replay clean:
    // rings before the wait are consumed at entry, rings during the wait
    // wake the parked coordinator, and timeouts fall back to a plain
    // pass. Schedules are only exhaustive over what the doorbell's
    // critical sections allow — which is the point: the pending word
    // makes the check-then-park window unreachable.
    let cfg = ModelConfig::doorbell();
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));
    let report = explorer.random(0xDEAD_BEEF, 300);
    assert!(report.failing().is_none(), "clean doorbell model flagged: {:?}", report.failing());
}

#[test]
fn unmutated_pause_model_passes_the_same_budget() {
    // Both outcomes must be clean: schedules where the victim resumes
    // before any fence (and finishes everything) and schedules where
    // the stall-fence lands (and the resumed victim stops dead).
    let cfg = ModelConfig::pause();
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));
    let report = explorer.random(0xDEAD_BEEF, 300);
    assert!(report.failing().is_none(), "clean pause model flagged: {:?}", report.failing());
}

#[test]
fn unmutated_serving_model_passes_the_same_budget() {
    let cfg = ModelConfig::serving();
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));
    let report = explorer.random(0xDEAD_BEEF, 300);
    assert!(report.failing().is_none(), "clean serving model flagged: {:?}", report.failing());
}

#[test]
fn unmutated_model_passes_the_same_budget() {
    let cfg = ModelConfig::standard();
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));
    let report = explorer.random(0xDEAD_BEEF, 300);
    assert!(report.failing().is_none(), "clean model flagged: {:?}", report.failing());
}
