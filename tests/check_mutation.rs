//! Mutation test for the checker itself (acceptance gate): a seeded
//! double-reclaim bug in the protocol model — a coordinator reclaiming a
//! home core it already owns — must be *found* by bounded random
//! exploration under aggressive fault injection, and the failing seed
//! must replay to the identical interleaving and violation. If the
//! checker ever stops catching this, the whole dws-check suite is
//! vacuous.

use dws_check::model::{self, Bug, ModelConfig};
use dws_check::{CheckOptions, Env, Explorer, FaultPlan};

#[test]
fn checker_catches_seeded_double_reclaim() {
    let cfg = ModelConfig::standard().with_bug(Bug::DoubleReclaim);
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));

    let report = explorer.random(0xDEAD_BEEF, 2_000);
    let failing = report
        .failing()
        .unwrap_or_else(|| {
            panic!("double-reclaim mutation survived {} schedules", report.schedules)
        })
        .clone();
    let failure = failing.failure.as_deref().unwrap();
    assert!(failure.contains("already owns it"), "unexpected failure: {failure}");
    assert!(!failing.events.is_empty(), "violation must come with its event trace");

    // Replay determinism: same seed ⇒ same decisions, events, violation.
    explorer.replay(&failing).expect("failing seed must replay identically");
}

#[test]
fn unmutated_model_passes_the_same_budget() {
    let cfg = ModelConfig::standard();
    let opts = CheckOptions { faults: FaultPlan::aggressive(), ..CheckOptions::default() };
    let explorer = Explorer::new(opts, move |env: &Env, seed| model::spawn_model(env, &cfg, seed));
    let report = explorer.random(0xDEAD_BEEF, 300);
    assert!(report.failing().is_none(), "clean model flagged: {:?}", report.failing());
}
