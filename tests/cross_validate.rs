//! Cross-validation: the same workload seed drives (a) a traced
//! simulator co-run and (b) a traced real-runtime co-run, and both event
//! streams must replay protocol-clean through `dws_rt::ReplayChecker`
//! with reclaim/acquire counts that agree with each system's own
//! metrics. This pins the simulator and the runtime to the *same*
//! Table-1 protocol semantics end to end, not just in the unit-level
//! mirror tests.

use std::sync::Arc;

use dws_rt::{
    join, CoreTable, InProcessTable, Policy, ReplayChecker, RtEvent, Runtime, RuntimeConfig,
    TracedTable,
};
use dws_sim::{
    MachineConfig, PhaseSpec, ProgramSpec, RunOptions, SchedConfig, SimConfig, Simulator, Slot,
    WorkloadSpec,
};

const WORKLOAD_SEED: u64 = 0xD5EED;

/// Maps the simulator's table transitions onto the runtime's event type;
/// non-table events (sleeps, wakes, coordinator ticks) don't participate
/// in protocol replay.
fn sim_table_events(sim: &Simulator) -> Vec<RtEvent> {
    sim.trace()
        .events()
        .iter()
        .filter_map(|te| match te.event {
            dws_sim::SchedEvent::Acquire { prog, core } => Some(RtEvent::Acquire { prog, core }),
            dws_sim::SchedEvent::Reclaim { prog, core } => Some(RtEvent::Reclaim { prog, core }),
            dws_sim::SchedEvent::Release { prog, core } => Some(RtEvent::Release { prog, core }),
            _ => None,
        })
        .collect()
}

#[test]
fn sim_trace_replays_clean_and_matches_sim_metrics() {
    let wl = WorkloadSpec {
        name: "xval".into(),
        phases: vec![PhaseSpec::Waves {
            iters: 3,
            width: 16,
            width_end: 0,
            task_work_us: 40.0,
            serial_us: 150.0,
            mem: 0.2,
            jitter: 0.1,
        }],
    };
    let cfg = SimConfig {
        machine: MachineConfig { cores: 4, sockets: 2, ..Default::default() },
        seed: WORKLOAD_SEED,
        ..Default::default()
    };
    let sched = SchedConfig::for_policy(dws_sim::Policy::Dws, 4);
    let mut sim = Simulator::new(
        cfg,
        vec![
            ProgramSpec { workload: wl.clone(), sched: sched.clone() },
            ProgramSpec { workload: wl, sched },
        ],
    );
    sim.enable_tracing(1 << 16);
    let rep = sim.run(RunOptions { min_runs: 2, warmup_runs: 0, max_time_us: 120_000_000 });
    assert!(!rep.hit_horizon, "co-run simulation must finish");
    assert_eq!(sim.events_dropped(), 0, "trace capacity too small for the workload");

    // The recorded stream must satisfy the Table-1 ownership protocol…
    let home: Vec<usize> = (0..4).map(|c| sim.alloc_table().home(c)).collect();
    let events = sim_table_events(&sim);
    let mut checker = ReplayChecker::new(&home);
    let stats = checker
        .replay(events.iter())
        .unwrap_or_else(|v| panic!("simulator stream violates the protocol: {v:?}"));

    // …agree with the simulator's own counters (the sim has exactly one
    // acquire and one reclaim site, each paired with its trace event)…
    let acquired: u64 = rep.programs.iter().map(|p| p.metrics.cores_acquired).sum();
    let reclaimed: u64 = rep.programs.iter().map(|p| p.metrics.cores_reclaimed).sum();
    assert_eq!(stats.acquires, acquired, "trace acquires vs metrics");
    assert_eq!(stats.reclaims, reclaimed, "trace reclaims vs metrics");
    assert!(stats.total() > 0, "a DWS co-run must exercise the table");

    // …and reconstruct the final allocation exactly.
    for c in 0..4 {
        let want = match sim.alloc_table().slot(c) {
            Slot::Free => None,
            Slot::Used(p) => Some(p),
        };
        assert_eq!(checker.owners()[c], want, "core {c} owner after replay");
    }
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn rt_traced_corun_replays_clean_and_matches_rt_metrics() {
    let traced = Arc::new(TracedTable::new(Arc::new(InProcessTable::new(4, 2)), 1 << 16));
    let table: Arc<dyn CoreTable> = Arc::clone(&traced) as Arc<dyn CoreTable>;

    let mk_cfg = || {
        let mut cfg = RuntimeConfig::new(4, Policy::Dws);
        // Shrink the paper's 10 ms period / 50 ms safety timeout so the
        // sleep→release→acquire→reclaim cycle turns over many times
        // within the test.
        cfg.coordinator_period = std::time::Duration::from_millis(2);
        cfg.sleep_timeout = Some(std::time::Duration::from_millis(5));
        cfg
    };
    let p0 = Arc::new(Runtime::with_table(mk_cfg(), Arc::clone(&table), 0));
    let p1 = Arc::new(Runtime::with_table(mk_cfg(), Arc::clone(&table), 1));

    // Bursty, seed-derived demand on both programs: idle gaps let
    // workers sleep and release cores, the next burst makes the
    // coordinator acquire/reclaim them back.
    let drive = |rt: Arc<Runtime>, salt: u64| {
        std::thread::spawn(move || {
            let mut x = WORKLOAD_SEED ^ salt;
            let mut total = 0u64;
            for _ in 0..6 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let n = 13 + (x >> 60) % 4; // fib(13..=16)
                total = total.wrapping_add(rt.block_on(|| fib(n)));
                std::thread::sleep(std::time::Duration::from_millis(8));
            }
            total
        })
    };
    let h0 = drive(Arc::clone(&p0), 0xA);
    let h1 = drive(Arc::clone(&p1), 0xB);
    match h0.join() {
        Ok(total) => assert!(total > 0),
        Err(_) => panic!("demand driver thread for program 0 panicked"),
    }
    match h1.join() {
        Ok(total) => assert!(total > 0),
        Err(_) => panic!("demand driver thread for program 1 panicked"),
    }

    // Metrics snapshots precede shutdown, so every metrics-counted
    // transition is already in the ring: the stream's counts bound the
    // metrics' from above (workers also legitimize cores on timeout,
    // which the shared stream sees but per-program counters don't).
    let acquired: u64 = [&p0, &p1].iter().map(|r| r.metrics().cores_acquired).sum();
    let reclaimed: u64 = [&p0, &p1].iter().map(|r| r.metrics().cores_reclaimed).sum();
    drop(Arc::try_unwrap(p0).ok().expect("sole owner"));
    drop(Arc::try_unwrap(p1).ok().expect("sole owner"));

    assert_eq!(traced.dropped(), 0, "ring capacity too small for the run");
    let stats = traced
        .replay_check()
        .unwrap_or_else(|v| panic!("runtime stream violates the protocol: {v:?}"));
    assert!(stats.total() > 0, "a DWS co-run must exercise the table");
    assert!(stats.acquires >= acquired, "stream lost acquires: {} < {acquired}", stats.acquires);
    assert!(stats.reclaims >= reclaimed, "stream lost reclaims: {} < {reclaimed}", stats.reclaims);

    // Quiescent now: replaying the stream must land on the live table.
    let home: Vec<usize> = (0..4).map(|c| traced.home(c)).collect();
    let mut checker = ReplayChecker::new(&home);
    let events = traced.events();
    checker.replay(events.iter().map(|e| &e.event)).unwrap();
    for c in 0..4 {
        assert_eq!(checker.owners()[c], traced.current(c), "core {c} owner after replay");
    }
}
