//! Lease-epoch wraparound and ABA property test (chaos satellite):
//! recycling a lease near `u32::MAX` must wrap without ever minting
//! epoch 0 (the pre-registration sentinel), the whole fence→reap→recycle
//! ladder must keep working across the wrap, and a stale handle that
//! observed its fence must stay fenced even when wraparound brings the
//! lease back to the *exact epoch the handle latched* — the ABA case the
//! sticky zombie flag exists for.
//!
//! The near-wrap epoch is planted by patching the table file directly
//! (the lease word is `epoch << 32 | status` at a fixed offset); mmap
//! and file writes are coherent, so every live handle sees the patch.

use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use dws_rt::{reap_expired, CoreTable, ShmTable};
use proptest::prelude::*;

const CORES: usize = 4;
const PROGRAMS: usize = 2;

// Byte layout of the v3 table (shm.rs): 32-byte header, then one 24-byte
// lease record per program (state word first), then one 8-byte slot word
// per core. Program 1's home cores under equipartition are 2 and 3.
const HEADER_BYTES: u64 = 32;
const LEASE_BYTES: u64 = 24;
const LEASE_ACTIVE: u64 = 2;

fn lease_state_offset(prog: u64) -> u64 {
    HEADER_BYTES + prog * LEASE_BYTES
}

fn slot_offset(core: u64) -> u64 {
    HEADER_BYTES + PROGRAMS as u64 * LEASE_BYTES + core * 8
}

fn patch_u64(path: &Path, offset: u64, value: u64) {
    let mut f = OpenOptions::new().write(true).open(path).expect("reopen table file");
    f.seek(SeekFrom::Start(offset)).expect("seek");
    f.write_all(&value.to_ne_bytes()).expect("patch word");
    f.sync_all().expect("sync patch");
}

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dws-epoch-wrap-{tag}-{}", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn epochs_wrap_without_minting_zero_and_aba_handles_stay_fenced(
        // Close enough to the wrap that a handful of recycles crosses it.
        wrap_distance in 0u32..13,
        recycles in 1usize..17,
    ) {
        let start_epoch = u32::MAX - wrap_distance;
        let path = temp_path(&format!("{start_epoch}-{recycles}"));
        let _ = std::fs::remove_file(&path);

        let a = ShmTable::create_or_open(&path, CORES, PROGRAMS).expect("create table");
        prop_assert_eq!(a.register().expect("register a"), 0);
        let b = ShmTable::create_or_open(&path, CORES, PROGRAMS).expect("open table");
        prop_assert_eq!(b.register().expect("register b"), 1);

        // Plant prog 1's lease (and its pre-stamped home slots 2, 3) at
        // the near-wrap epoch. Handle `b` latched epoch 1 at
        // registration, so it is now a stale incarnation.
        let planted = (u64::from(start_epoch) << 32) | LEASE_ACTIVE;
        patch_u64(&path, lease_state_offset(1), planted);
        for core in [2u64, 3] {
            patch_u64(&path, slot_offset(core), (u64::from(start_epoch) << 32) | 1);
        }
        prop_assert_eq!(a.epoch_of(1), start_epoch);
        prop_assert!(a.audit().is_ok(), "planted table must audit clean: {:?}", a.audit());

        // The stale handle discovers the fence on its first op and the
        // zombie flag latches.
        b.heartbeat(1);
        prop_assert!(b.zombie_fenced(), "stale incarnation must self-fence");

        let mut expected = start_epoch;
        let mut incarnations = Vec::new();
        for round in 0..recycles {
            // Kill the current incarnation and run one reaper pass: the
            // full fence → reap → REAPED ladder at the current epoch.
            a.mark_dead(1);
            let pass = reap_expired(&a, 0, Duration::ZERO);
            prop_assert_eq!(pass.leases_expired, 1, "round {}: lease must fence", round);
            prop_assert!(a.used_by(1).is_empty(), "round {}: all slots reaped", round);

            // Recycle: the epoch advances by exactly one, skipping 0 —
            // epoch 0 is the pre-registration sentinel and must never be
            // minted for a live lease.
            let c = ShmTable::create_or_open(&path, CORES, PROGRAMS).expect("reopen");
            prop_assert_eq!(c.register().expect("recycle registration"), 1);
            expected = expected.wrapping_add(1).max(1);
            prop_assert_eq!(a.epoch_of(1), expected, "round {}", round);
            prop_assert!(a.epoch_of(1) != 0, "round {}: epoch 0 minted", round);
            prop_assert!(a.audit().is_ok(), "round {}: {:?}", round, a.audit());
            incarnations.push(c);
        }

        // ABA: when the recycles crossed the wrap, some later incarnation
        // may hold the lease ACTIVE at the *same* epoch handle `b`
        // latched (epoch 1). A naive epoch equality check would let the
        // zombie write again; the sticky flag must not.
        prop_assert!(b.zombie_fenced(), "zombie flag must be sticky across wraparound");
        prop_assert!(!b.release(2, 1), "zombie release must be refused");
        prop_assert!(!b.try_reclaim(2, 1), "zombie reclaim must be refused");
        prop_assert!(!b.try_acquire_free(0, 1), "zombie acquire must be refused");
        b.heartbeat(1); // must stay a no-op
        prop_assert_eq!(a.epoch_of(1), expected, "zombie ops must not move the table");

        drop(incarnations);
        let _ = std::fs::remove_file(&path);
    }
}
