//! FailoverTable degraded-mode concurrency tests (chaos satellite).
//!
//! Three properties of the failover path under concurrency:
//!
//! 1. The `degraded` flag is *sticky*: once a health check sees the
//!    backing file corrupted, no thread ever observes the table healthy
//!    again — even if the corruption is repaired underneath it. A
//!    degraded→healthy flap would let a program trust a mapping that was
//!    mid-corruption moments ago.
//! 2. The in-process fallback conserves cores under concurrent churn:
//!    with two programs hammering acquire/release on the same fallback,
//!    every `owners()` snapshot shows each core owned by at most one
//!    program, and a full release drains the table back to all-free.
//! 3. A serving runtime whose table degrades sheds submissions with a
//!    *typed* error (`SubmitError::Fenced`) instead of panicking: the
//!    shared ring is untrusted, so admission closes at the edge while
//!    already-admitted work keeps running on the fallback partition.

use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dws_rt::{
    CoreTable, FailoverTable, Policy, Runtime, RuntimeConfig, ShmTable, SubmitError,
    DOORBELL_DEMAND,
};

const CORES: usize = 4;
const PROGRAMS: usize = 2;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dws-failover-{tag}-{}", std::process::id()));
    p
}

fn patch_bytes(path: &Path, offset: u64, bytes: &[u8]) {
    let mut f = OpenOptions::new().write(true).open(path).expect("reopen table file");
    f.seek(SeekFrom::Start(offset)).expect("seek");
    f.write_all(bytes).expect("patch");
    f.sync_all().expect("sync");
}

fn read_header(path: &Path) -> Vec<u8> {
    std::fs::read(path).expect("read table file")[..32].to_vec()
}

/// Property 1: sticky degradation. Hammer `check_health` / `degraded`
/// from several threads while the main thread corrupts the header, waits
/// for the flag, then *repairs* the header. No thread may ever observe a
/// degraded→healthy transition.
#[test]
fn degraded_flag_is_sticky_under_concurrent_health_checks() {
    let path = temp_path("sticky");
    let _ = std::fs::remove_file(&path);

    let primary = Arc::new(ShmTable::create_or_open(&path, CORES, PROGRAMS).expect("create"));
    assert_eq!(primary.register().expect("register"), 0);
    let table = Arc::new(FailoverTable::new(primary, &path));
    assert!(table.check_health(), "fresh table must be healthy");

    let stop = Arc::new(AtomicBool::new(false));
    let flapped = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for _ in 0..4 {
        let (t, stop, flapped) = (Arc::clone(&table), Arc::clone(&stop), Arc::clone(&flapped));
        threads.push(std::thread::spawn(move || {
            let mut seen_degraded = false;
            while !stop.load(Ordering::Acquire) {
                let healthy = t.check_health();
                if seen_degraded && (healthy || !t.degraded()) {
                    flapped.store(true, Ordering::Release);
                }
                if !healthy {
                    seen_degraded = true;
                }
                // Keep routing ops through the table while the flag flips.
                let _ = t.owners();
                t.heartbeat(0);
                std::thread::yield_now();
            }
            seen_degraded
        }));
    }

    // Let the hammering run healthy for a moment, then corrupt the magic.
    std::thread::sleep(Duration::from_millis(20));
    let saved = read_header(&path);
    patch_bytes(&path, 0, &[0xEEu8; 8]);

    let deadline = Instant::now() + Duration::from_secs(5);
    while !table.degraded() {
        assert!(Instant::now() < deadline, "corruption never detected");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Repair the header. Sticky means this must NOT bring the table back.
    patch_bytes(&path, 0, &saved);
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Release);
    for t in threads {
        assert!(t.join().expect("checker thread"), "every checker must have seen the fence");
    }

    assert!(!flapped.load(Ordering::Acquire), "degraded flag flapped back to healthy");
    assert!(!table.check_health(), "check_health must stay false after repair");
    assert!(table.degraded());
    // Degraded: the shared ring is withdrawn.
    assert!(table.submit_ring(0).is_none(), "degraded table must not expose the shm ring");

    let _ = std::fs::remove_file(&path);
}

/// Property 2: the degraded fallback conserves cores under concurrent
/// acquire/release churn from two programs, and registration hands out
/// local ids with a typed exhaustion error past the cap.
#[test]
fn degraded_fallback_conserves_cores_under_churn() {
    let path = temp_path("fallback");
    let table = Arc::new(FailoverTable::degraded_from_scratch(&path, CORES, PROGRAMS));
    assert!(table.degraded(), "from-scratch table starts degraded");
    assert!(!table.check_health());

    // Local registration: ids 0..PROGRAMS, then typed exhaustion.
    assert_eq!(table.register().expect("local id 0"), 0);
    assert_eq!(table.register().expect("local id 1"), 1);
    assert!(table.register().is_err(), "past the cap must be Exhausted");

    // The fallback starts at equipartition (each core owned by its home
    // program); drain it to all-free so the churn below contends on every
    // core instead of each program sitting on its partition.
    for core in 0..CORES {
        let h = table.home(core);
        assert!(table.release(core, h), "home release of core {core}");
    }
    assert!(table.owners().iter().all(|&o| o == -1));

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for prog in 0..PROGRAMS {
        let (t, stop) = (Arc::clone(&table), Arc::clone(&stop));
        workers.push(std::thread::spawn(move || {
            let mut held = [false; CORES];
            while !stop.load(Ordering::Acquire) {
                for (core, h) in held.iter_mut().enumerate() {
                    if *h {
                        assert!(t.release(core, prog), "release of a held core must succeed");
                        *h = false;
                    } else if t.try_acquire_free(core, prog) {
                        *h = true;
                    }
                }
            }
            for (core, h) in held.iter().enumerate() {
                if *h {
                    t.release(core, prog);
                }
            }
        }));
    }

    // Observer: every snapshot is internally consistent — CORES entries,
    // each either free (-1) or one of the two registered programs.
    let start = Instant::now();
    let mut snapshots = 0u32;
    while start.elapsed() < Duration::from_millis(200) {
        let owners = table.owners();
        assert_eq!(owners.len(), CORES);
        for (core, &o) in owners.iter().enumerate() {
            assert!(o == -1 || o == 0 || o == 1, "core {core} owned by impossible program {o}");
        }
        snapshots += 1;
    }
    assert!(snapshots > 0);

    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().expect("churn worker");
    }

    // Quiescent: everything released, nothing leaked.
    assert!(
        table.owners().iter().all(|&o| o == -1),
        "all cores must drain back to free, got {:?}",
        table.owners()
    );
    assert!(table.degraded(), "fallback churn must not clear the flag");

    // Reclaim still works on the fallback: prog 0 borrows one of prog 1's
    // home cores; 1 takes it back with the DWS reclaim edge.
    let borrowed = (0..CORES).find(|&c| table.home(c) == 1).expect("prog 1 has a home core");
    assert!(table.try_acquire_free(borrowed, 0));
    assert!(table.try_reclaim(borrowed, 1), "home reclaim from a borrower");
    assert_eq!(table.current(borrowed), Some(1));
    assert!(table.release(borrowed, 1));
}

/// Doorbell × degradation, half 1: a waiter parked in the *primary's*
/// futex when the table degrades recovers at its own timeout — it is
/// never stranded on a futex word nothing will ring again — and a ring
/// delivered *after* degradation persists in the fallback's doorbell
/// until consumed, exactly like a healthy ring would.
#[test]
fn doorbell_waiter_parked_in_the_primary_recovers_across_degradation() {
    let path = temp_path("doorbell-park");
    let _ = std::fs::remove_file(&path);
    let primary = Arc::new(ShmTable::create_or_open(&path, CORES, PROGRAMS).expect("create"));
    assert_eq!(primary.register().expect("register"), 0);
    let table = Arc::new(FailoverTable::new(primary, &path));

    // Park a waiter in the healthy primary's futex, then degrade under
    // it and ring — the ring routes to the fallback, so the parked
    // waiter cannot see it and must come back on its own timeout. The
    // coordinator only ever waits with the fallback-heartbeat bound, so
    // "recovers at timeout" is the property that keeps failover live.
    let waiter = {
        let t = Arc::clone(&table);
        std::thread::spawn(move || t.wait_doorbell(0, Duration::from_millis(200)))
    };
    std::thread::sleep(Duration::from_millis(30));
    table.degrade_now();
    table.ring_doorbell(0, DOORBELL_DEMAND);
    let t0 = Instant::now();
    let _reasons = waiter.join().expect("parked waiter must return, not strand");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "waiter overstayed its timeout after degradation"
    );

    // The post-degradation ring is pending in the fallback: the next
    // wait consumes it at entry, and the one after that times out clean.
    assert_eq!(table.wait_doorbell(0, Duration::from_millis(50)), DOORBELL_DEMAND);
    assert_eq!(table.wait_doorbell(0, Duration::from_millis(50)), 0);

    let _ = std::fs::remove_file(&path);
}

/// Doorbell × degradation, half 2: a ring accepted while healthy but
/// still unconsumed when the table degrades is confined to the untrusted
/// mapping — the fallback starts with clean doorbells, so failing over
/// costs at most one heartbeat of latency but never delivers a phantom
/// wake from a mapping that may be mid-corruption.
#[test]
fn stale_primary_rings_are_not_inherited_by_the_fallback() {
    let path = temp_path("doorbell-stale");
    let _ = std::fs::remove_file(&path);
    let primary = Arc::new(ShmTable::create_or_open(&path, CORES, PROGRAMS).expect("create"));
    assert_eq!(primary.register().expect("register"), 0);
    let table = Arc::new(FailoverTable::new(primary, &path));

    table.ring_doorbell(0, DOORBELL_DEMAND);
    table.degrade_now();
    assert_eq!(
        table.wait_doorbell(0, Duration::from_millis(50)),
        0,
        "the fallback inherited a pending ring from the untrusted mapping"
    );

    let _ = std::fs::remove_file(&path);
}

/// Doorbell × degradation, half 3: an event-driven serving runtime over
/// a FailoverTable. The coordinator period is ten minutes, so every
/// healthy admission below is doorbell-driven by construction; after
/// `degrade_now` the typed shed closes admission at the edge and the
/// runtime still shuts down promptly even though its coordinator may be
/// parked in the primary's futex at the moment the world degrades (the
/// doorbell wait is chunked at the fallback heartbeat, never parked
/// indefinitely).
#[test]
fn doorbell_admissions_close_with_a_typed_shed_on_degradation() {
    let path = temp_path("doorbell-serve");
    let _ = std::fs::remove_file(&path);

    let primary = Arc::new(ShmTable::create_or_open(&path, 2, 1).expect("create"));
    let prog = primary.register().expect("register");
    let table = Arc::new(FailoverTable::new(primary, &path));

    // Long lease: chores (heartbeats) are pinned to the configured
    // period, so a short lease would expire inside the long period.
    let mut cfg = RuntimeConfig::new(2, Policy::Dws).with_lease_timeout(Duration::from_secs(30));
    cfg.coordinator_period = Duration::from_secs(600);
    cfg.sleep_timeout = Some(Duration::from_millis(2));
    let handled = Arc::new(AtomicUsize::new(0));
    let handled2 = Arc::clone(&handled);
    let rt = Runtime::serve_with_table(
        cfg,
        Arc::clone(&table) as Arc<dyn CoreTable>,
        prog,
        move |_req| {
            handled2.fetch_add(1, Ordering::AcqRel);
        },
    );

    // Healthy: each submit rings the doorbell; waiting out the polling
    // tick would take ten minutes, so handling within the deadline
    // proves the doorbell carried the admission.
    for i in 0..8 {
        rt.submit(i, 10).expect("healthy submit");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while handled.load(Ordering::Acquire) < 8 {
        assert!(Instant::now() < deadline, "doorbell admissions never handled");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(rt.metrics().doorbell_wakes >= 1, "admissions must have come from doorbell wakes");

    table.degrade_now();
    assert_eq!(rt.submit(99, 10), Err(SubmitError::Fenced));
    assert_eq!(handled.load(Ordering::Acquire), 8, "no phantom admissions after degrade");

    // Prompt shutdown across the degraded boundary: Drop rings the
    // shutdown doorbell (now into the fallback); a coordinator parked in
    // the primary's futex notices at its ≤50 ms wait chunk.
    let t0 = Instant::now();
    drop(rt);
    assert!(t0.elapsed() < Duration::from_secs(5), "shutdown stranded across degradation");

    let _ = std::fs::remove_file(&path);
}

/// Property 3: a serving runtime built over a FailoverTable sheds
/// submissions with `SubmitError::Fenced` once the table degrades —
/// admission closes at the edge; no panic, and the drain path stays a
/// no-op instead of touching the untrusted ring.
#[test]
fn degraded_serving_sheds_typed_error() {
    let path = temp_path("serve");
    let _ = std::fs::remove_file(&path);

    let primary = Arc::new(ShmTable::create_or_open(&path, 2, 1).expect("create"));
    let prog = primary.register().expect("register");
    let table = Arc::new(FailoverTable::new(primary, &path));

    let mut cfg = RuntimeConfig::new(2, Policy::Dws).with_lease_timeout(Duration::from_millis(200));
    cfg.coordinator_period = Duration::from_millis(5);
    let handled = Arc::new(AtomicUsize::new(0));
    let handled2 = Arc::clone(&handled);
    let rt = Runtime::serve_with_table(
        cfg,
        Arc::clone(&table) as Arc<dyn CoreTable>,
        prog,
        move |_req| {
            handled2.fetch_add(1, Ordering::AcqRel);
        },
    );

    // Healthy: submissions land on the shm ring and get handled.
    for i in 0..8 {
        rt.submit(i, 10).expect("healthy submit");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while handled.load(Ordering::Acquire) < 8 {
        assert!(Instant::now() < deadline, "healthy requests never handled");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Degrade. The shared ring is untrusted from this moment on.
    table.degrade_now();
    assert!(table.submit_ring(prog).is_none());

    // Typed shed, not a panic: the in-process client gets Fenced back.
    assert_eq!(rt.submit(99, 10), Err(SubmitError::Fenced));
    // Draining is a no-op, not a crash.
    assert_eq!(rt.drain_submissions(), 0);
    assert_eq!(handled.load(Ordering::Acquire), 8, "no phantom admissions after degrade");

    drop(rt);
    let _ = std::fs::remove_file(&path);
}
