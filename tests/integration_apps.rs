//! Integration: every Table-2 kernel runs correctly on the real runtime
//! under every policy, including co-run conditions.

use std::sync::Arc;

use dws_apps::common::{random_u64s, random_vec, Matrix};
use dws_apps::{cholesky, fft, ge, heat, lu, mergesort, pnn, sor};
use dws_rt::{CoreTable, InProcessTable, Policy, Runtime, RuntimeConfig};

fn pool(policy: Policy) -> Runtime {
    Runtime::new(RuntimeConfig::new(2, policy))
}

fn policies() -> [Policy; 5] {
    [Policy::Ws, Policy::Abp, Policy::Ep, Policy::Dws, Policy::DwsNc]
}

#[test]
fn fft_correct_under_every_policy() {
    let x: Vec<fft::Complex> = random_vec(256, 1).into_iter().zip(random_vec(256, 2)).collect();
    let expected = fft::fft_sequential(&x);
    for policy in policies() {
        let p = pool(policy);
        let got = p.block_on(|| fft::fft_parallel(&x, 32));
        assert_eq!(got, expected, "{policy}");
    }
}

#[test]
fn mergesort_correct_under_every_policy() {
    for policy in policies() {
        let p = pool(policy);
        let mut v = random_u64s(30_000, 3);
        let mut expected = v.clone();
        expected.sort_unstable();
        p.block_on(|| mergesort::mergesort_parallel(&mut v, 1024));
        assert_eq!(v, expected, "{policy}");
    }
}

#[test]
fn linear_algebra_kernels_under_dws() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
    let p = Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), table, 0);

    let a = Matrix::spd(32, 9);
    let l = p.block_on(|| cholesky::cholesky_parallel(&a, 4));
    assert!(cholesky::reconstruction_error(&a, &l) < 1e-8);

    let d = lu::dominant_matrix(32, 4);
    let f = p.block_on(|| lu::lu_parallel(&d, 4));
    assert!(lu::reconstruction_error(&d, &f) < 1e-8);

    let b = random_vec(32, 5);
    let x = p.block_on(|| ge::ge_parallel(&d, &b, 4));
    assert!(ge::residual(&d, &x, &b) < 1e-8);
}

#[test]
fn stencil_kernels_under_dws() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
    let p = Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), table, 0);

    let g = heat::Grid::hot_plate(24, 24);
    let seq = heat::heat_sequential(&g, 15);
    let par = p.block_on(|| heat::heat_parallel(&g, 15, 4));
    assert_eq!(seq.max_abs_diff(&par), 0.0);

    let s_seq = sor::sor_sequential(&g, 12, sor::DEFAULT_OMEGA);
    let s_par = p.block_on(|| sor::sor_parallel(&g, 12, sor::DEFAULT_OMEGA, 4));
    assert_eq!(s_seq.max_abs_diff(&s_par), 0.0);
}

#[test]
fn pnn_under_corun() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
    let p0 = Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), Arc::clone(&table), 0);
    let p1 = Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), Arc::clone(&table), 1);
    let net = pnn::Pnn::random(8, 24, 3, 11);
    let x = random_vec(8, 12);
    let expected = net.forward_sequential(&x);
    let (a, b) =
        (p0.block_on(|| net.forward_parallel(&x, 4)), p1.block_on(|| net.forward_parallel(&x, 4)));
    assert_eq!(a, expected);
    assert_eq!(b, expected);
}

#[test]
fn two_kernels_race_on_co_running_pools() {
    // Run two different kernels truly concurrently on co-running DWS
    // pools and make sure both finish correct under core migration.
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(4, 2));
    let p0 =
        Arc::new(Runtime::with_table(RuntimeConfig::new(4, Policy::Dws), Arc::clone(&table), 0));
    let p1 =
        Arc::new(Runtime::with_table(RuntimeConfig::new(4, Policy::Dws), Arc::clone(&table), 1));
    let h0 = {
        let p0 = Arc::clone(&p0);
        std::thread::spawn(move || {
            for seed in 0..4 {
                let mut v = random_u64s(20_000, seed);
                let mut expected = v.clone();
                expected.sort_unstable();
                p0.block_on(|| mergesort::mergesort_parallel(&mut v, 512));
                assert_eq!(v, expected);
            }
        })
    };
    let h1 = {
        let p1 = Arc::clone(&p1);
        std::thread::spawn(move || {
            for seed in 0..4 {
                let a = Matrix::spd(24, seed);
                let l = p1.block_on(|| cholesky::cholesky_parallel(&a, 4));
                assert!(cholesky::reconstruction_error(&a, &l) < 1e-8);
            }
        })
    };
    if h0.join().is_err() {
        panic!("mergesort driver thread (program 0) panicked");
    }
    if h1.join().is_err() {
        panic!("cholesky driver thread (program 1) panicked");
    }
}
