//! End-to-end integration: real `dws-rt` runtimes co-running through
//! shared core-allocation tables (in-process and mmap-backed), exercising
//! the full paper pipeline on real threads.

use std::sync::Arc;
use std::time::Duration;

use dws_rt::{
    join, CoreTable, InProcessTable, Policy, Runtime, RuntimeConfig, ShmTable, TracedTable,
};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn two_dws_programs_share_cores_through_the_table() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(4, 2));
    let p0 =
        Arc::new(Runtime::with_table(RuntimeConfig::new(4, Policy::Dws), Arc::clone(&table), 0));
    let p1 =
        Arc::new(Runtime::with_table(RuntimeConfig::new(4, Policy::Dws), Arc::clone(&table), 1));

    // Both compute concurrently from external threads.
    let h0 = {
        let p0 = Arc::clone(&p0);
        std::thread::spawn(move || (0..5).map(|_| p0.block_on(|| fib(16))).sum::<u64>())
    };
    let h1 = {
        let p1 = Arc::clone(&p1);
        std::thread::spawn(move || (0..5).map(|_| p1.block_on(|| fib(16))).sum::<u64>())
    };
    match h0.join() {
        Ok(total) => assert_eq!(total, 5 * 987),
        Err(_) => panic!("program-0 driver thread panicked"),
    }
    match h1.join() {
        Ok(total) => assert_eq!(total, 5 * 987),
        Err(_) => panic!("program-1 driver thread panicked"),
    }

    // Let idle workers sleep, then verify the table reflects releases.
    std::thread::sleep(Duration::from_millis(120));
    let free = table.free_cores().len();
    let used0 = table.used_by(0).len();
    let used1 = table.used_by(1).len();
    assert_eq!(free + used0 + used1, 4, "table slots must partition the cores");
    assert!(free > 0, "idle co-run must leave released cores");
}

#[test]
fn mmap_table_coordinates_two_runtimes() {
    let mut path = std::env::temp_dir();
    path.push(format!("dws-it-corun-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let t0 = ShmTable::create_or_open(&path, 2, 2).unwrap();
    assert_eq!(t0.register().unwrap(), 0);
    let t1 = ShmTable::create_or_open(&path, 2, 2).unwrap();
    assert_eq!(t1.register().unwrap(), 1);

    let p0 = Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), Arc::new(t0), 0);
    let p1 = Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), Arc::new(t1), 1);

    assert_eq!(p0.block_on(|| fib(14)), 377);
    assert_eq!(p1.block_on(|| fib(14)), 377);

    drop(p0);
    drop(p1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn all_policies_complete_co_running_kernels() {
    for policy in [Policy::Abp, Policy::Ep, Policy::Dws, Policy::DwsNc] {
        let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
        let p0 = Runtime::with_table(RuntimeConfig::new(2, policy), Arc::clone(&table), 0);
        let p1 = Runtime::with_table(RuntimeConfig::new(2, policy), Arc::clone(&table), 1);
        // Real Table-2 kernels on both programs.
        let mut keys = dws_apps::common::random_u64s(20_000, 7);
        p0.block_on(|| dws_apps::mergesort::mergesort_parallel(&mut keys, 1024));
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{policy}: sort failed");

        let a = dws_apps::common::Matrix::spd(24, 5);
        let l = p1.block_on(|| dws_apps::cholesky::cholesky_parallel(&a, 4));
        assert!(
            dws_apps::cholesky::reconstruction_error(&a, &l) < 1e-8,
            "{policy}: cholesky failed"
        );
    }
}

#[test]
fn dws_sleep_release_wake_cycle_on_real_threads() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(3, 2));
    let p0 = Runtime::with_table(RuntimeConfig::new(3, Policy::Dws), Arc::clone(&table), 0);
    // Idle long enough for every worker to pass T_SLEEP and doze.
    std::thread::sleep(Duration::from_millis(150));
    let m = p0.metrics();
    assert!(m.sleeps > 0, "workers must sleep when idle: {m:?}");
    // Work arrives: the ensure-progress path + coordinator wake workers.
    assert_eq!(p0.block_on(|| fib(12)), 144);
    let m = p0.metrics();
    assert!(m.wakes > 0, "workers must have been woken: {m:?}");
}

#[test]
fn survivor_reaps_a_dead_co_runner_and_takes_its_cores() {
    // In-process analogue of the `crash` binary's kill scenario, without
    // subprocess timing: program 1 owns its home half from table
    // creation, `mark_dead` plays the SIGKILL + ESRCH confirmation, and
    // the survivor's coordinator must fence the lease, reap both
    // stranded cores, and acquire them — leaving a trace the replay
    // oracle accepts with exactly those transitions.
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(4, 2));
    let traced = Arc::new(TracedTable::new(table, 1 << 14));
    let mut cfg = RuntimeConfig::new(4, Policy::Dws).with_lease_timeout(Duration::from_millis(20));
    cfg.coordinator_period = Duration::from_millis(5);
    // No voluntary releases: the trace stays exactly
    // LeaseExpired + Reap x2 + Acquire x2.
    cfg.t_sleep = u32::MAX;
    let p0 = Runtime::with_table(cfg, Arc::clone(&traced) as Arc<dyn CoreTable>, 0);

    assert_eq!(traced.used_by(1).len(), 2, "victim owns its home half");
    traced.mark_dead(1);

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while traced.used_by(0).len() < 4 {
        // Sustained demand so freed cores are wanted (Eq. 1 N_b > 0).
        assert_eq!(p0.block_on(|| fib(12)), 144);
        assert!(
            std::time::Instant::now() < deadline,
            "survivor never recovered the dead program's cores: owns {:?}",
            traced.used_by(0),
        );
    }

    let m = p0.metrics();
    assert_eq!(m.leases_expired, 1, "{m:?}");
    assert_eq!(m.cores_reaped, 2, "{m:?}");
    let stats = traced.replay_check().expect("reap trace must replay clean");
    assert_eq!(stats.reaps, 2, "{stats:?}");
    assert_eq!(stats.acquires, 2, "survivor acquired both reaped cores: {stats:?}");
    assert_eq!(stats.releases, 0, "t_sleep = MAX forbids releases: {stats:?}");
}

#[test]
fn many_block_on_rounds_under_contention() {
    let table: Arc<dyn CoreTable> = Arc::new(InProcessTable::new(2, 2));
    let rts: Vec<Arc<Runtime>> = (0..2)
        .map(|p| {
            Arc::new(Runtime::with_table(RuntimeConfig::new(2, Policy::Dws), Arc::clone(&table), p))
        })
        .collect();
    let handles: Vec<_> = rts
        .iter()
        .map(|rt| {
            let rt = Arc::clone(rt);
            std::thread::spawn(move || {
                for i in 0..40 {
                    let got = rt.block_on(move || fib(10) + i);
                    assert_eq!(got, 55 + i);
                }
            })
        })
        .collect();
    for (prog, h) in handles.into_iter().enumerate() {
        if h.join().is_err() {
            panic!("contention driver thread for program {prog} panicked");
        }
    }
}
