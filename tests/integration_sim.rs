//! Cross-crate integration of the simulator with the harness: the
//! paper's qualitative claims must hold on small, fast scenarios.

use dws_sim::{
    run_pair, run_solo, MachineConfig, PhaseSpec, Policy, ProgramSpec, RunOptions, SchedConfig,
    SimConfig, WorkloadSpec,
};

fn small_cfg(seed: u64) -> SimConfig {
    SimConfig {
        machine: MachineConfig { cores: 8, sockets: 2, ..Default::default() },
        seed,
        ..Default::default()
    }
}

/// A bursty workload: wide fine-grained bursts between long serial gaps.
fn bursty() -> WorkloadSpec {
    WorkloadSpec {
        name: "bursty".into(),
        phases: vec![PhaseSpec::Waves {
            iters: 6,
            width: 2_000,
            width_end: 0,
            task_work_us: 20.0,
            serial_us: 40_000.0,
            mem: 0.2,
            jitter: 0.1,
        }],
    }
}

/// A steady, saturating workload.
fn steady() -> WorkloadSpec {
    WorkloadSpec {
        name: "steady".into(),
        phases: vec![PhaseSpec::Waves {
            iters: 8,
            width: 4_000,
            width_end: 0,
            task_work_us: 20.0,
            serial_us: 10.0,
            mem: 0.4,
            jitter: 0.1,
        }],
    }
}

fn opts() -> RunOptions {
    RunOptions { min_runs: 2, warmup_runs: 0, max_time_us: 60_000_000 }
}

fn corun_mean(policy: Policy, seed: u64) -> (f64, f64) {
    let cfg = small_cfg(seed);
    let sched = SchedConfig::for_policy(policy, cfg.machine.cores);
    let rep = run_pair(
        cfg,
        ProgramSpec { workload: bursty(), sched: sched.clone() },
        ProgramSpec { workload: steady(), sched },
        opts(),
    );
    (
        rep.programs[0].mean_run_time_us.expect("bursty finished"),
        rep.programs[1].mean_run_time_us.expect("steady finished"),
    )
}

#[test]
fn dws_beats_abp_on_the_asymmetric_pair() {
    let (abp_a, abp_b) = corun_mean(Policy::Abp, 1);
    let (dws_a, dws_b) = corun_mean(Policy::Dws, 1);
    // Headline claim: DWS improves co-running programs vs ABP.
    let abp = abp_a + abp_b;
    let dws = dws_a + dws_b;
    assert!(
        dws < abp,
        "DWS combined {dws:.0} must beat ABP {abp:.0} (a={dws_a:.0}/{abp_a:.0} b={dws_b:.0}/{abp_b:.0})"
    );
}

#[test]
fn dws_lets_the_steady_program_use_released_cores() {
    // The steady program should run faster under DWS than under EP,
    // because it borrows the bursty program's cores during serial gaps.
    let (_, ep_b) = corun_mean(Policy::Ep, 2);
    let (_, dws_b) = corun_mean(Policy::Dws, 2);
    assert!(dws_b < ep_b * 1.02, "steady under DWS ({dws_b:.0}) should beat/match EP ({ep_b:.0})");
}

#[test]
fn dws_nc_is_not_better_than_dws() {
    let (nc_a, nc_b) = corun_mean(Policy::DwsNc, 3);
    let (dws_a, dws_b) = corun_mean(Policy::Dws, 3);
    assert!(
        dws_a + dws_b <= (nc_a + nc_b) * 1.05,
        "coordinator exclusivity must not hurt: DWS {:.0} vs NC {:.0}",
        dws_a + dws_b,
        nc_a + nc_b
    );
}

#[test]
fn solo_dws_overhead_is_small() {
    let cfg = small_cfg(4);
    let o = opts();
    let ws = run_solo(cfg.clone(), steady(), SchedConfig::for_policy(Policy::Ws, 8), o)
        .mean_run_time_us
        .unwrap();
    let dws = run_solo(cfg, steady(), SchedConfig::for_policy(Policy::Dws, 8), o)
        .mean_run_time_us
        .unwrap();
    assert!(dws < ws * 1.10, "§4.4: solo DWS ({dws:.0}) must be within ~10% of WS ({ws:.0})");
}

#[test]
fn extreme_t_sleep_values_still_complete() {
    for t_sleep in [1, 1024] {
        let cfg = small_cfg(5);
        let mut sched = SchedConfig::for_policy(Policy::Dws, cfg.machine.cores);
        sched.t_sleep = t_sleep;
        let rep = run_pair(
            cfg,
            ProgramSpec { workload: bursty(), sched: sched.clone() },
            ProgramSpec { workload: steady(), sched },
            opts(),
        );
        assert!(!rep.hit_horizon, "T_SLEEP={t_sleep} must not deadlock");
    }
}

#[test]
fn tiny_t_sleep_is_slower_than_default() {
    let cfg = small_cfg(6);
    let mk = |t_sleep| {
        let mut sched = SchedConfig::for_policy(Policy::Dws, 8);
        sched.t_sleep = t_sleep;
        let rep = run_pair(
            cfg.clone(),
            ProgramSpec { workload: bursty(), sched: sched.clone() },
            ProgramSpec { workload: steady(), sched },
            opts(),
        );
        rep.programs[1].mean_run_time_us.unwrap()
    };
    let tiny = mk(1);
    let good = mk(16);
    assert!(
        tiny > good * 0.95,
        "T_SLEEP=1 over-sleeps and should not beat the default: {tiny:.0} vs {good:.0}"
    );
}

#[test]
fn harness_effort_and_cli_are_usable_cross_crate() {
    // The harness's CLI options must produce a runnable configuration.
    let opts = dws_harness::CliOptions::parse(&["--quick".to_string()]);
    assert_eq!(opts.sim.machine.cores, 16);
    assert!(opts.effort.min_runs >= 1);
}
