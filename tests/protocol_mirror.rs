//! Cross-crate protocol mirror: the Eq. 1 / §3.3 coordinator arithmetic
//! is implemented three times — in the simulator (`dws_sim::decide_dws`),
//! in the runtime (`dws_rt::plan_wakes`), and in the checker's protocol
//! model (`dws_check::model::plan_wakes`). These tests pin all three to
//! the same semantics so a drift in any one of them fails loudly instead
//! of silently invalidating sim↔rt comparisons.

use dws_sim::{decide_dws, CoordObservation, Slot, XorShift64Star};

#[test]
fn eq1_agrees_across_sim_rt_and_model() {
    for queued in 0..200 {
        for active in 0..16 {
            let rt = dws_rt::eq1_wake_target(queued, active);
            let sim = dws_sim::eq1_wake_target(queued, active);
            let model = dws_check::model::eq1_wake_target(queued, active);
            assert_eq!(rt, sim, "rt vs sim at N_b={queued}, N_a={active}");
            assert_eq!(rt, model, "rt vs model at N_b={queued}, N_a={active}");
        }
    }
}

#[test]
fn plan_wakes_agrees_between_rt_and_model() {
    for n_w in 0..32 {
        for n_f in 0..16 {
            for n_r in 0..16 {
                assert_eq!(
                    dws_rt::plan_wakes(n_w, n_f, n_r),
                    dws_check::model::plan_wakes(n_w, n_f, n_r),
                    "diverged at N_w={n_w}, N_f={n_f}, N_r={n_r}"
                );
            }
        }
    }
}

/// The simulator's full table-aware decision must take exactly the
/// per-pool counts `dws_rt::plan_wakes` prescribes for the observed
/// supply, across randomized reachable table states.
#[test]
fn decide_dws_counts_match_rt_plan_wakes() {
    let mut rng = XorShift64Star::new(0x3A11);
    for seed in 0..500u64 {
        // Drive the table into a random reachable state.
        let mut t = dws_sim::AllocTable::equipartition(8, 2);
        let mut op_rng = XorShift64Star::new(seed * 2 + 1);
        for _ in 0..op_rng.next_below(12) {
            let core = op_rng.next_below(8);
            let prog = op_rng.next_below(2);
            if t.slot(core) == Slot::Used(prog) {
                t.release(core, prog);
            } else if !t.acquire_free(core, prog) {
                let _ = t.reclaim(core, prog);
            }
        }
        let (n_f, n_r) = (t.n_free(), t.n_reclaimable(0));
        let obs = CoordObservation {
            queued_tasks: op_rng.next_below(100),
            active_workers: op_rng.next_below(8),
            sleeping_workers: 1 + op_rng.next_below(7),
        };
        let d = decide_dws(0, obs, &t, &mut rng);
        let (want_free, want_reclaim) = dws_rt::plan_wakes(d.n_w, n_f, n_r);
        assert_eq!(
            (d.take_free.len(), d.reclaim.len()),
            (want_free, want_reclaim),
            "seed {seed}: N_w={}, N_f={n_f}, N_r={n_r}",
            d.n_w
        );
    }
}
