//! Cross-crate telemetry schema equality: `dws_rt::telemetry` and
//! `dws_sim::telemetry` declare the frame schema independently (the sim
//! must not depend on the runtime crate), so this test is what actually
//! holds the two mirrors together:
//!
//! 1. identically-populated frames serialize to byte-identical JSON;
//! 2. the structural signature (field names, order, value classes)
//!    matches, with `I64`/`U64` collapsed into one integer class — the
//!    vendored serde serializes non-negative signed ints as `U64`;
//! 3. frames cross-deserialize between the crates, both from synthetic
//!    content and from a *real* traced co-run / a real simulation.

use serde::value::Value;

fn rt_frame() -> dws_rt::TelemetryFrame {
    dws_rt::TelemetryFrame {
        t_us: 123_456,
        prog: 1,
        seq: 42,
        cores: vec![
            dws_rt::CoreSample { core: 0, home: 0, owner: -1 },
            dws_rt::CoreSample { core: 1, home: 1, owner: 1 },
        ],
        workers: vec![
            dws_rt::WorkerSample { worker: 0, asleep: true, queue: 0 },
            dws_rt::WorkerSample { worker: 1, asleep: false, queue: 7 },
        ],
        coord: dws_rt::CoordSample {
            n_b: 9,
            n_a: 3,
            n_f: 1,
            n_r: 2,
            n_w: 3,
            planned_free: 1,
            planned_reclaim: 2,
            woken: 2,
            decisions: 17,
            knob_t_sleep: 16,
            knob_period_us: 10_000,
            knob_steal_batch: 8,
        },
        counters: dws_rt::CounterSample {
            steals_ok: 100,
            steals_failed: 20,
            jobs_executed: 3000,
            sleeps: 5,
            wakes: 4,
            yields: 6,
            coordinator_runs: 50,
            cores_acquired: 3,
            cores_reclaimed: 2,
            cores_released: 5,
            events_dropped: 1,
            frames_evicted: 8,
            cores_reaped: 2,
            leases_expired: 1,
            degraded: 1,
            tasks_stolen: 340,
            steals_contended: 12,
            requests_admitted: 900,
            requests_dropped: 11,
            requests_fenced: 2,
            requests_abandoned: 1,
            zombies_fenced: 1,
            leases_rearmed: 1,
            doorbell_wakes: 23,
            core_us_total: 654_321,
        },
        latency: dws_rt::LatencySample {
            steal_p50_ns: 1_024,
            steal_p99_ns: 65_536,
            sleep_p50_ns: 2_048,
            sleep_p99_ns: 131_072,
            wake_p50_ns: 4_096,
            wake_p99_ns: 262_144,
            batch_p50_tasks: 4,
            batch_p99_tasks: 16,
            sojourn_p50_ns: 8_192,
            sojourn_p99_ns: 524_288,
            sojourn_p999_ns: 1_048_576,
            request_p50_ns: 16_384,
            request_p99_ns: 2_097_152,
            request_p999_ns: 4_194_304,
            alloc_p50_ns: 32_768,
            alloc_p99_ns: 8_388_608,
            release_p50_ns: 65_536,
            release_p99_ns: 16_777_216,
        },
    }
}

fn sim_frame() -> dws_sim::TelemetryFrame {
    dws_sim::TelemetryFrame {
        t_us: 123_456,
        prog: 1,
        seq: 42,
        cores: vec![
            dws_sim::CoreSample { core: 0, home: 0, owner: -1 },
            dws_sim::CoreSample { core: 1, home: 1, owner: 1 },
        ],
        workers: vec![
            dws_sim::WorkerSample { worker: 0, asleep: true, queue: 0 },
            dws_sim::WorkerSample { worker: 1, asleep: false, queue: 7 },
        ],
        coord: dws_sim::CoordSample {
            n_b: 9,
            n_a: 3,
            n_f: 1,
            n_r: 2,
            n_w: 3,
            planned_free: 1,
            planned_reclaim: 2,
            woken: 2,
            decisions: 17,
            knob_t_sleep: 16,
            knob_period_us: 10_000,
            knob_steal_batch: 8,
        },
        counters: dws_sim::CounterSample {
            steals_ok: 100,
            steals_failed: 20,
            jobs_executed: 3000,
            sleeps: 5,
            wakes: 4,
            yields: 6,
            coordinator_runs: 50,
            cores_acquired: 3,
            cores_reclaimed: 2,
            cores_released: 5,
            events_dropped: 1,
            frames_evicted: 8,
            cores_reaped: 2,
            leases_expired: 1,
            degraded: 1,
            tasks_stolen: 340,
            steals_contended: 12,
            requests_admitted: 900,
            requests_dropped: 11,
            requests_fenced: 2,
            requests_abandoned: 1,
            zombies_fenced: 1,
            leases_rearmed: 1,
            doorbell_wakes: 23,
            core_us_total: 654_321,
        },
        latency: dws_sim::LatencySample {
            steal_p50_ns: 1_024,
            steal_p99_ns: 65_536,
            sleep_p50_ns: 2_048,
            sleep_p99_ns: 131_072,
            wake_p50_ns: 4_096,
            wake_p99_ns: 262_144,
            batch_p50_tasks: 4,
            batch_p99_tasks: 16,
            sojourn_p50_ns: 8_192,
            sojourn_p99_ns: 524_288,
            sojourn_p999_ns: 1_048_576,
            request_p50_ns: 16_384,
            request_p99_ns: 2_097_152,
            request_p999_ns: 4_194_304,
            alloc_p50_ns: 32_768,
            alloc_p99_ns: 8_388_608,
            release_p50_ns: 65_536,
            release_p99_ns: 16_777_216,
        },
    }
}

/// Structural signature of a JSON value: object keys in declaration
/// order, arrays by element signatures, scalars by class. `I64` and `U64`
/// collapse into `int` — which of the two a field lands in depends only
/// on its runtime sign under the vendored serde's collapsed data model.
fn signature(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(_) => "bool".into(),
        Value::I64(_) | Value::U64(_) => "int".into(),
        Value::F64(_) => "float".into(),
        Value::String(_) => "string".into(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(signature).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Object(pairs) => {
            let inner: Vec<String> =
                pairs.iter().map(|(k, v)| format!("{k}:{}", signature(v))).collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[test]
fn identical_content_serializes_byte_identically() {
    let rt = serde_json::to_string(&rt_frame()).unwrap();
    let sim = serde_json::to_string(&sim_frame()).unwrap();
    assert_eq!(rt, sim, "rt and sim frame JSON must be byte-identical");
}

#[test]
fn schema_signatures_match() {
    let rt = serde::ser::Serialize::to_value(&rt_frame());
    let sim = serde::ser::Serialize::to_value(&sim_frame());
    assert_eq!(signature(&rt), signature(&sim));
}

#[test]
fn frames_cross_deserialize_between_crates() {
    let rt_json = serde_json::to_string(&rt_frame()).unwrap();
    let as_sim: dws_sim::TelemetryFrame = serde_json::from_str(&rt_json).unwrap();
    assert_eq!(serde_json::to_string(&as_sim).unwrap(), rt_json);

    let sim_json = serde_json::to_string(&sim_frame()).unwrap();
    let as_rt: dws_rt::TelemetryFrame = serde_json::from_str(&sim_json).unwrap();
    assert_eq!(serde_json::to_string(&as_rt).unwrap(), sim_json);
}

#[test]
fn jsonl_sinks_agree_line_for_line() {
    let rt_text = dws_rt::frames_to_jsonl(&[rt_frame(), rt_frame()]);
    let sim_text = dws_sim::frames_to_jsonl(&[sim_frame(), sim_frame()]);
    assert_eq!(rt_text, sim_text);
}

/// A frame sampled from a *real* two-program co-run round-trips through
/// the sim's declaration (and vice versa from a real simulation), so the
/// guarantee covers live output, not just hand-built values.
#[test]
fn real_runtime_and_simulator_frames_cross_deserialize() {
    use std::sync::Arc;
    use std::time::Duration;

    // Real runtime co-run with the sampler on.
    let table: Arc<dyn dws_rt::CoreTable> = Arc::new(dws_rt::InProcessTable::new(2, 2));
    let mk = || {
        let mut cfg = dws_rt::RuntimeConfig::new(2, dws_rt::Policy::Dws)
            .with_telemetry()
            .with_telemetry_tick(Duration::from_millis(2));
        cfg.coordinator_period = Duration::from_millis(2);
        cfg.sleep_timeout = Some(Duration::from_millis(4));
        cfg
    };
    // p0 additionally serves external requests, so the request counters
    // appear in real frames, not just the synthetic ones above.
    let p0 = dws_rt::Runtime::serve_with_table(mk(), Arc::clone(&table), 0, |req| {
        std::hint::black_box(req.demand_us);
    });
    let p1 = dws_rt::Runtime::with_table(mk(), table, 1);
    for i in 0..32 {
        p0.submit(i, 10).unwrap();
    }
    // Pump until the ring is empty (the coordinator also drains; either
    // path bumps the same admission counter).
    while !p0.submission_ring().unwrap().is_empty() {
        p0.drain_submissions();
        std::thread::yield_now();
    }
    let sum = p0.block_on(|| (1..=2000u64).sum::<u64>());
    let prod = p1.block_on(|| (1..=10u64).product::<u64>());
    assert_eq!((sum, prod), (2_001_000, 3_628_800));
    let handle = p0.telemetry("p0");
    drop(p0); // shutdown flushes a final frame
    drop(p1);
    let frames = handle.frames();
    assert!(!frames.is_empty(), "sampler left no frames");
    let last = frames.last().unwrap();
    assert_eq!(last.counters.requests_admitted, 32, "every submitted request admitted");
    for f in &frames {
        let line = serde_json::to_string(f).unwrap();
        let as_sim: dws_sim::TelemetryFrame = serde_json::from_str(&line).unwrap();
        assert_eq!(serde_json::to_string(&as_sim).unwrap(), line);
    }

    // Real simulation with frame sampling on.
    let wl = |name: &str| dws_sim::WorkloadSpec {
        name: name.into(),
        phases: vec![dws_sim::PhaseSpec::Recursive {
            depth: 5,
            branch: 2,
            leaf_work_us: 80.0,
            node_work_us: 1.0,
            merge_work_us: 4.0,
            merge_grows: true,
            mem: 0.3,
            jitter: 0.1,
        }],
    };
    let cfg = dws_sim::SimConfig {
        machine: dws_sim::MachineConfig { cores: 4, sockets: 2, ..Default::default() },
        ..Default::default()
    };
    let spec = |w| dws_sim::ProgramSpec {
        workload: w,
        sched: dws_sim::SchedConfig::for_policy(dws_sim::Policy::Dws, 4),
    };
    let mut sim = dws_sim::Simulator::new(cfg, vec![spec(wl("a")), spec(wl("b"))]);
    sim.enable_telemetry(10_000, 256);
    while sim.now() < 200_000 {
        sim.tick();
    }
    let frames = sim.telemetry_frames(1);
    assert!(!frames.is_empty(), "simulator left no frames");
    for f in &frames {
        let line = serde_json::to_string(f).unwrap();
        let as_rt: dws_rt::TelemetryFrame = serde_json::from_str(&line).unwrap();
        assert_eq!(serde_json::to_string(&as_rt).unwrap(), line);
    }
}
