//! Vendored offline stand-in for `criterion`.
//!
//! Implements the API subset this workspace's benches use — grouped and
//! ungrouped `bench_function`, `bench_with_input`, `iter`/`iter_batched`,
//! the `criterion_group!`/`criterion_main!` macros — with straightforward
//! wall-clock sampling (warm-up, then `sample_size` timed samples) and a
//! `[min mean max]` report line per benchmark. No statistics engine, no
//! HTML reports, no comparison against saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported like the real crate).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

/// Benchmark driver; one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement = d;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, &self.cfg, &mut f);
        self
    }

    /// Opens a named group sharing (and locally overriding) this
    /// driver's config.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let cfg = self.cfg.clone();
        BenchmarkGroup { _c: self, name: name.into(), cfg }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    cfg: Config,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    /// Overrides the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &self.cfg, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &self.cfg, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report-flushing no-op here).
    pub fn finish(self) {}
}

/// Function-plus-parameter benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { function: function_name.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: setup runs once per iteration.
    SmallInput,
    /// Accepted for API compatibility; treated like `SmallInput`.
    LargeInput,
    /// Accepted for API compatibility; treated like `SmallInput`.
    PerIteration,
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, regenerating its input with `setup` each
    /// iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, cfg: &Config, f: &mut F) {
    // Warm up and estimate per-iteration cost.
    let warm_start = Instant::now();
    let mut per_iter = run_once(f, 1).max(Duration::from_nanos(1));
    while warm_start.elapsed() < cfg.warm_up {
        per_iter = run_once(f, 1).max(Duration::from_nanos(1));
    }
    // Pick an iteration count so `sample_size` samples roughly fill the
    // measurement window.
    let per_sample = cfg.measurement.as_nanos() / cfg.sample_size.max(1) as u128;
    let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let t = run_once(f, iters);
        samples.push(t.as_secs_f64() / iters as f64);
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a bench group function, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g.
            // `--bench`); this stand-in runs everything regardless.
            let _ = std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_and_batched() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 3usize), &3usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
