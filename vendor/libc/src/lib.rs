//! Vendored offline stand-in for the `libc` crate.
//!
//! Declares only the types, constants and foreign functions this
//! workspace actually calls (`dws-rt`'s `shm` and `affinity` modules),
//! with x86_64/aarch64 Linux glibc ABI layouts. Constants follow
//! `<fcntl.h>` / `<sys/mman.h>` / `<errno.h>` for Linux.

#![allow(non_camel_case_types)]
#![allow(non_upper_case_globals)] // SYS_* names mirror the real libc crate
#![warn(missing_docs)]

/// Opaque C `void` for pointer types.
pub use std::ffi::c_void;

/// C `char` (signed on the supported targets).
pub type c_char = i8;
/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `long` (LP64).
pub type c_long = i64;
/// C `unsigned long` (LP64).
pub type c_ulong = u64;
/// `size_t`.
pub type size_t = usize;
/// `off_t` (LP64 glibc).
pub type off_t = i64;
/// `mode_t`.
pub type mode_t = u32;
/// `pid_t`.
pub type pid_t = i32;
/// `dev_t`.
pub type dev_t = u64;
/// `ino_t`.
pub type ino_t = u64;
/// `nlink_t`.
pub type nlink_t = u64;
/// `blksize_t`.
pub type blksize_t = i64;
/// `blkcnt_t`.
pub type blkcnt_t = i64;
/// `time_t`.
pub type time_t = i64;

/// Open read/write (`<fcntl.h>`).
pub const O_RDWR: c_int = 0o2;
/// Create if absent.
pub const O_CREAT: c_int = 0o100;
/// Fail if it already exists (with `O_CREAT`).
pub const O_EXCL: c_int = 0o200;
/// `errno`: file exists.
pub const EEXIST: c_int = 17;
/// `errno`: no such process.
pub const ESRCH: c_int = 3;
/// `errno`: interrupted by a signal.
pub const EINTR: c_int = 4;
/// `errno`: resource temporarily unavailable (futex word changed).
pub const EAGAIN: c_int = 11;
/// `errno`: timed out (futex wait expired).
pub const ETIMEDOUT: c_int = 110;
/// `futex(2)` op: block while the word equals the expected value.
pub const FUTEX_WAIT: c_int = 0;
/// `futex(2)` op: wake up to `val` waiters on the word.
pub const FUTEX_WAKE: c_int = 1;
/// `futex(2)` syscall number (x86_64).
#[cfg(target_arch = "x86_64")]
pub const SYS_futex: c_long = 202;
/// `futex(2)` syscall number (aarch64).
#[cfg(target_arch = "aarch64")]
pub const SYS_futex: c_long = 98;
/// `SIGKILL` (Linux).
pub const SIGKILL: c_int = 9;
/// `SIGCONT` (Linux).
pub const SIGCONT: c_int = 18;
/// `SIGSTOP` (Linux).
pub const SIGSTOP: c_int = 19;
/// `clockid_t`.
pub type clockid_t = c_int;
/// Monotonic clock id (`<time.h>`, Linux).
pub const CLOCK_MONOTONIC: clockid_t = 1;
/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Pages may be written.
pub const PROT_WRITE: c_int = 2;
/// Share the mapping with other processes.
pub const MAP_SHARED: c_int = 1;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

/// `struct stat` with the x86_64 glibc layout (`st_size` is all this
/// workspace reads; the rest keeps the offsets honest).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct stat {
    /// Device.
    pub st_dev: dev_t,
    /// Inode.
    pub st_ino: ino_t,
    /// Hard-link count.
    pub st_nlink: nlink_t,
    /// Mode bits.
    pub st_mode: mode_t,
    /// Owner uid.
    pub st_uid: u32,
    /// Owner gid.
    pub st_gid: u32,
    __pad0: c_int,
    /// Device number (special files).
    pub st_rdev: dev_t,
    /// Size in bytes.
    pub st_size: off_t,
    /// Preferred I/O block size.
    pub st_blksize: blksize_t,
    /// 512-byte blocks allocated.
    pub st_blocks: blkcnt_t,
    /// Access time, seconds.
    pub st_atime: time_t,
    /// Access time, nanoseconds.
    pub st_atime_nsec: c_long,
    /// Modification time, seconds.
    pub st_mtime: time_t,
    /// Modification time, nanoseconds.
    pub st_mtime_nsec: c_long,
    /// Status-change time, seconds.
    pub st_ctime: time_t,
    /// Status-change time, nanoseconds.
    pub st_ctime_nsec: c_long,
    __unused: [c_long; 3],
}

/// `struct timespec` (LP64 glibc layout).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    /// Seconds.
    pub tv_sec: time_t,
    /// Nanoseconds.
    pub tv_nsec: c_long,
}

/// CPU affinity mask: 1024 bits, as in glibc's `cpu_set_t`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Clears every CPU in the set (glibc `CPU_ZERO`, macro-as-fn like the
/// real libc crate).
#[allow(non_snake_case)]
pub fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; 16];
}

/// Adds `cpu` to the set (glibc `CPU_SET`); out-of-range CPUs are
/// ignored, matching the macro's bounds check.
#[allow(non_snake_case)]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < 1024 {
        set.bits[cpu / 64] |= 1 << (cpu % 64);
    }
}

/// True if `cpu` is in the set (glibc `CPU_ISSET`).
#[allow(non_snake_case)]
pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < 1024 && set.bits[cpu / 64] & (1 << (cpu % 64)) != 0
}

extern "C" {
    /// `open(2)` (variadic: mode only with `O_CREAT`).
    pub fn open(path: *const c_char, oflag: c_int, ...) -> c_int;
    /// `close(2)`.
    pub fn close(fd: c_int) -> c_int;
    /// `ftruncate(2)`.
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    /// `fstat(2)` — glibc exports the versioned symbol; `fstat` itself is
    /// also provided as a real symbol on modern glibc.
    pub fn fstat(fd: c_int, buf: *mut stat) -> c_int;
    /// `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// `sched_setaffinity(2)`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
    /// `unlink(2)`.
    pub fn unlink(path: *const c_char) -> c_int;
    /// `clock_gettime(2)`.
    pub fn clock_gettime(clockid: clockid_t, tp: *mut timespec) -> c_int;
    /// `kill(2)` — with signal 0, a liveness probe (errno `ESRCH` when the
    /// process is gone).
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    /// `syscall(2)` — used for `futex(2)`, which glibc exposes only via
    /// the generic syscall entry point.
    pub fn syscall(num: c_long, ...) -> c_long;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_layout_matches_glibc_x86_64() {
        // st_size must sit at offset 48 on x86_64 glibc.
        assert_eq!(std::mem::offset_of!(stat, st_size), 48);
        assert_eq!(std::mem::size_of::<stat>(), 144);
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }

    #[test]
    fn cpu_set_ops() {
        let mut s: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_ZERO(&mut s);
        CPU_SET(3, &mut s);
        assert!(CPU_ISSET(3, &s));
        assert!(!CPU_ISSET(4, &s));
    }

    #[test]
    fn futex_wait_times_out_and_wake_returns() {
        let word = std::sync::atomic::AtomicU32::new(0);
        let ts = timespec { tv_sec: 0, tv_nsec: 5_000_000 };
        // Word matches the expected value: the wait blocks until the
        // relative timeout and fails with ETIMEDOUT.
        let r = unsafe { syscall(SYS_futex, word.as_ptr(), FUTEX_WAIT, 0u32, &ts, 0usize, 0usize) };
        assert_eq!(r, -1);
        assert_eq!(std::io::Error::last_os_error().raw_os_error(), Some(ETIMEDOUT));
        // Word no longer matches: the wait returns immediately with EAGAIN.
        word.store(7, std::sync::atomic::Ordering::Release);
        let r = unsafe { syscall(SYS_futex, word.as_ptr(), FUTEX_WAIT, 0u32, &ts, 0usize, 0usize) };
        assert_eq!(r, -1);
        assert_eq!(std::io::Error::last_os_error().raw_os_error(), Some(EAGAIN));
        // Waking with no waiters parked reports zero woken.
        let r =
            unsafe { syscall(SYS_futex, word.as_ptr(), FUTEX_WAKE, 1u32, 0usize, 0usize, 0usize) };
        assert_eq!(r, 0);
    }

    #[test]
    fn fstat_works_on_a_real_file() {
        let f = std::fs::File::open("/proc/self/exe").unwrap();
        use std::os::fd::AsRawFd;
        let mut st: stat = unsafe { std::mem::zeroed() };
        let rc = unsafe { fstat(f.as_raw_fd(), &mut st) };
        assert_eq!(rc, 0);
        assert!(st.st_size > 0, "st_size = {}", st.st_size);
    }
}
