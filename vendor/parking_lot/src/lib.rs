//! Vendored offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's ergonomic API (no
//! lock poisoning, `Condvar::wait(&mut guard)`, `wait_for` returning a
//! [`WaitTimeoutResult`]). Only the surface this workspace uses is
//! provided.

#![warn(missing_docs)]

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (std-backed, poisoning ignored).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the inner std guard in an `Option` so [`Condvar::wait`] can move
/// it out and back while the caller keeps a `&mut` borrow.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike std, a
    /// poisoned mutex is treated as unlocked (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// As [`Condvar::wait`], giving up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
    }
}
