//! Vendored offline stand-in for `proptest`.
//!
//! Covers the subset this workspace's property tests use: `Strategy` with
//! `prop_map`/`prop_recursive`, `any`, `Just`, ranges, tuples,
//! `collection::vec`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` macros. Cases are generated from a deterministic
//! per-test seed. Failures are greedily shrunk ([`Strategy::shrink`]):
//! numbers move toward the range start / zero, vectors lose elements,
//! tuples shrink slot-wise — each candidate is re-run and the smallest
//! still-failing input is reported. `prop_map`ped strategies do not
//! shrink (the map is not invertible); their failures report as-is.

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;
    use std::sync::Arc;

    /// A generator of random values of one type.
    pub trait Strategy: 'static {
        /// The generated type.
        type Value: Debug + Clone + 'static;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes strictly "smaller" candidates for a failing value, in
        /// decreasing order of ambition. The runner re-runs each candidate
        /// and greedily descends into the first that still fails. The
        /// default shrinks nothing.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Type-erases this strategy behind an `Arc` (shrinking
        /// preserved).
        fn arced(self) -> ArcStrategy<Self::Value>
        where
            Self: Sized,
        {
            let this = Arc::new(self);
            let gen_this = Arc::clone(&this);
            ArcStrategy {
                inner: Arc::new(move |rng: &mut TestRng| gen_this.generate(rng)),
                shrinker: Arc::new(move |v| this.shrink(v)),
            }
        }

        /// Maps generated values through `f`. The result does not shrink:
        /// the map is not invertible, so there is no way to re-derive
        /// candidate inputs from a failing output.
        fn prop_map<U, F>(self, f: F) -> ArcStrategy<U>
        where
            Self: Sized,
            U: Debug + Clone + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = Arc::new(move |rng: &mut TestRng| f(self.generate(rng)));
            ArcStrategy { inner, shrinker: Arc::new(|_| Vec::new()) }
        }

        /// Builds a recursive strategy: `self` is the leaf; `f` lifts a
        /// strategy for depth-`d` values to depth-`d+1`. Each level mixes
        /// the leaf back in so generated shapes vary (the real proptest
        /// drives this from a size budget; a fixed leaf weight is enough
        /// for these tests). `_size`/`_branch` are accepted for signature
        /// compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            f: F,
        ) -> ArcStrategy<Self::Value>
        where
            Self: Sized,
            R: Strategy<Value = Self::Value>,
            F: Fn(ArcStrategy<Self::Value>) -> R,
        {
            let leaf = self.arced();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let rec = f(cur).arced();
                cur = ArcStrategy::union(vec![(1, leaf.clone()), (2, rec)]);
            }
            cur
        }
    }

    type Shrinker<T> = Arc<dyn Fn(&T) -> Vec<T>>;

    /// Reference-counted type-erased strategy (the stand-in for both
    /// `BoxedStrategy` and the strategies returned by combinators).
    pub struct ArcStrategy<T> {
        inner: Arc<dyn Fn(&mut TestRng) -> T>,
        shrinker: Shrinker<T>,
    }

    impl<T> Clone for ArcStrategy<T> {
        fn clone(&self) -> Self {
            ArcStrategy { inner: Arc::clone(&self.inner), shrinker: Arc::clone(&self.shrinker) }
        }
    }

    impl<T: Debug + Clone + 'static> ArcStrategy<T> {
        /// Weighted choice between strategies (backs `prop_oneof!`).
        /// Shrink candidates are the concatenation of every branch's
        /// candidates — a value may shrink along a branch other than the
        /// one that generated it, which is fine because every candidate
        /// is validated by re-running the property.
        pub fn union(choices: Vec<(u32, ArcStrategy<T>)>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            let choices = Arc::new(choices);
            let gen_choices = Arc::clone(&choices);
            let inner = Arc::new(move |rng: &mut TestRng| {
                let mut pick = rng.next_u64() % total;
                for (w, s) in gen_choices.iter() {
                    let w = u64::from(*w);
                    if pick < w {
                        return s.generate(rng);
                    }
                    pick -= w;
                }
                unreachable!("weighted pick out of range")
            });
            let shrinker =
                Arc::new(move |v: &T| choices.iter().flat_map(|(_, s)| s.shrink(v)).collect());
            ArcStrategy { inner, shrinker }
        }
    }

    impl<T: Debug + Clone + 'static> Strategy for ArcStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.inner)(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            (self.shrinker)(value)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Debug + Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Debug + Clone + Sized + 'static {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Candidate smaller values for shrinking (default: none).
        fn arbitrary_shrink(&self) -> Vec<Self> {
            Vec::new()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
                fn arbitrary_shrink(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    if *self != 0 {
                        out.push(0);
                        let half = self / 2;
                        if half != 0 {
                            out.push(half);
                        }
                        // Step one toward zero.
                        out.push(if *self > 0 { self - 1 } else { self + 1 });
                    }
                    out
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
        fn arbitrary_shrink(&self) -> Vec<Self> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
        fn arbitrary_shrink(&self) -> Vec<Self> {
            if *self != 0.0 {
                vec![0.0, self / 2.0]
            } else {
                Vec::new()
            }
        }
    }

    /// Full-range strategy for an [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> ArcStrategy<T> {
        ArcStrategy {
            inner: Arc::new(|rng: &mut TestRng| T::arbitrary(rng)),
            shrinker: Arc::new(T::arbitrary_shrink),
        }
    }

    // Range values shrink toward the range start: the start itself, the
    // midpoint, and one step down.
    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
                fn shrink(&self, v: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *v > self.start {
                        out.push(self.start);
                        let mid = self.start + (v - self.start) / 2;
                        if mid != self.start && mid != *v {
                            out.push(mid);
                        }
                        if v - 1 != self.start {
                            out.push(v - 1);
                        }
                    }
                    out
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize);

    macro_rules! range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
                fn shrink(&self, v: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *v > self.start {
                        out.push(self.start);
                        let mid = (self.start as i128 + (*v as i128 - self.start as i128) / 2) as $t;
                        if mid != self.start && mid != *v {
                            out.push(mid);
                        }
                        if v - 1 != self.start {
                            out.push(v - 1);
                        }
                    }
                    out
                }
            }
        )*};
    }
    range_strategy_signed!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
        fn shrink(&self, v: &f64) -> Vec<f64> {
            if *v > self.start {
                vec![self.start, self.start + (v - self.start) / 2.0]
            } else {
                Vec::new()
            }
        }
    }

    // Tuples shrink slot-wise: each candidate changes exactly one slot.
    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&v.$idx) {
                            let mut nv = v.clone();
                            nv.$idx = cand;
                            out.push(nv);
                        }
                    )+
                    out
                }
            }
        };
    }
    tuple_strategy!(S0.0);
    tuple_strategy!(S0.0, S1.1);
    tuple_strategy!(S0.0, S1.1, S2.2);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors: length drawn from `len`, elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let min = self.len.start;
            // Structurally smaller first: halve, then drop single
            // elements (respecting the minimum length).
            if v.len() > min {
                let half = (v.len() / 2).max(min);
                if half < v.len() {
                    out.push(v[..half].to_vec());
                }
                for i in 0..v.len() {
                    let mut nv = v.clone();
                    nv.remove(i);
                    out.push(nv);
                }
            }
            // Then same-shape candidates with one element shrunk.
            for i in 0..v.len() {
                for cand in self.element.shrink(&v[i]) {
                    let mut nv = v.clone();
                    nv[i] = cand;
                    out.push(nv);
                }
            }
            out
        }
    }

    /// Strategy for vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Deterministic xorshift64* generator; each test derives its seed
    /// from the test name so failures reproduce across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test identifier (FNV-1a of the name).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-proptest-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Drives one `proptest!` function: runs `cases` generated inputs,
    /// and on the first failure greedily shrinks it — each candidate from
    /// [`Strategy::shrink`] is re-run, the first that still fails becomes
    /// the new current value — then panics with the minimal failing
    /// input.
    pub fn run_proptest<S, F>(name: &str, cfg: ProptestConfig, strat: &S, run: F)
    where
        S: crate::strategy::Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        const MAX_SHRINK_STEPS: u32 = 1_000;
        let mut rng = TestRng::for_test(name);
        for case in 0..cfg.cases {
            let v = strat.generate(&mut rng);
            if let Err(e) = run(v.clone()) {
                let mut cur = v;
                let mut err = e;
                let mut shrinks = 0u32;
                'descend: while shrinks < MAX_SHRINK_STEPS {
                    for cand in strat.shrink(&cur) {
                        if let Err(e2) = run(cand.clone()) {
                            cur = cand;
                            err = e2;
                            shrinks += 1;
                            continue 'descend;
                        }
                    }
                    break; // no candidate still fails: minimal
                }
                panic!(
                    "proptest `{name}` case {case} failed: {err}\n\
                     minimal failing input (after {shrinks} shrinks): {cur:?}"
                );
            }
        }
    }
}

pub mod prelude {
    pub use super::strategy::{any, ArcStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::ArcStrategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::arced($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::ArcStrategy::union(vec![
            $((1u32, $crate::strategy::Strategy::arced($strat))),+
        ])
    };
}

/// Property assertion; fails the current case without panicking the
/// runner loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a != __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a != __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} == {:?})", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` runs the
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            // One combined tuple strategy so a failure shrinks jointly
            // over all the test's inputs.
            let __strat = ($(($strat),)+);
            $crate::test_runner::run_proptest(
                stringify!($name),
                $cfg,
                &__strat,
                |__v| {
                    let ($($pat,)+) = __v;
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::strategy::{any, Strategy};
    use super::test_runner::{run_proptest, ProptestConfig, TestCaseError};

    #[test]
    fn range_shrinks_toward_start() {
        let s = 5usize..100;
        let cands = s.shrink(&40);
        assert!(cands.contains(&5), "start missing: {cands:?}");
        assert!(cands.contains(&22), "midpoint missing: {cands:?}");
        assert!(cands.contains(&39), "predecessor missing: {cands:?}");
        assert!(s.shrink(&5).is_empty(), "start value shrinks no further");
    }

    #[test]
    fn int_any_shrinks_toward_zero() {
        let cands = any::<i32>().shrink(&-8);
        assert!(cands.contains(&0) && cands.contains(&-4) && cands.contains(&-7), "{cands:?}");
        assert!(any::<u32>().shrink(&0).is_empty());
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
    }

    #[test]
    fn vec_shrinks_structure_then_elements() {
        let s = super::collection::vec(0u32..10, 1..8);
        let cands = s.shrink(&vec![3, 7, 9]);
        assert!(cands.contains(&vec![3]), "halving missing: {cands:?}");
        assert!(cands.contains(&vec![3, 7]), "drop-one missing: {cands:?}");
        assert!(cands.contains(&vec![0, 7, 9]), "element shrink missing: {cands:?}");
        // Minimum length respected: nothing shorter than 1.
        assert!(cands.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn tuple_shrinks_slot_wise() {
        let s = (0u32..50, 0u32..50);
        let cands = s.shrink(&(10, 20));
        assert!(cands.contains(&(0, 20)) && cands.contains(&(10, 0)), "{cands:?}");
        // Every candidate differs from the original in exactly one slot.
        assert!(cands.iter().all(|&(a, b)| (a == 10) != (b == 20)));
    }

    #[test]
    fn failing_case_is_shrunk_to_minimal() {
        // Property fails for n >= 17: the greedy shrink must land on
        // exactly 17 whatever case first trips it.
        let err = std::panic::catch_unwind(|| {
            run_proptest("shrink_to_17", ProptestConfig::with_cases(64), &(0u64..1_000), |n| {
                if n >= 17 {
                    Err(TestCaseError::fail(format!("too big: {n}")))
                } else {
                    Ok(())
                }
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("panic carries a message");
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(msg.contains("17"), "not shrunk to the boundary: {msg}");
    }

    #[test]
    fn passing_property_never_panics() {
        run_proptest("all_pass", ProptestConfig::with_cases(32), &(0u8..10), |_| Ok(()));
    }
}
