//! Vendored offline stand-in for `proptest`.
//!
//! Covers the subset this workspace's property tests use: `Strategy` with
//! `prop_map`/`prop_recursive`, `any`, `Just`, ranges, tuples,
//! `collection::vec`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` macros. Cases are generated from a deterministic
//! per-test seed; there is no shrinking — a failure reports the failing
//! case's generated inputs via the assertion message instead.

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;
    use std::sync::Arc;

    /// A generator of random values of one type.
    pub trait Strategy: 'static {
        /// The generated type.
        type Value: Debug + Clone + 'static;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases this strategy behind an `Arc`.
        fn arced(self) -> ArcStrategy<Self::Value>
        where
            Self: Sized,
        {
            let inner = Arc::new(move |rng: &mut TestRng| self.generate(rng));
            ArcStrategy { inner }
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> ArcStrategy<U>
        where
            Self: Sized,
            U: Debug + Clone + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = Arc::new(move |rng: &mut TestRng| f(self.generate(rng)));
            ArcStrategy { inner }
        }

        /// Builds a recursive strategy: `self` is the leaf; `f` lifts a
        /// strategy for depth-`d` values to depth-`d+1`. Each level mixes
        /// the leaf back in so generated shapes vary (the real proptest
        /// drives this from a size budget; a fixed leaf weight is enough
        /// for these tests). `_size`/`_branch` are accepted for signature
        /// compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            f: F,
        ) -> ArcStrategy<Self::Value>
        where
            Self: Sized,
            R: Strategy<Value = Self::Value>,
            F: Fn(ArcStrategy<Self::Value>) -> R,
        {
            let leaf = self.arced();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let rec = f(cur).arced();
                cur = ArcStrategy::union(vec![(1, leaf.clone()), (2, rec)]);
            }
            cur
        }
    }

    /// Reference-counted type-erased strategy (the stand-in for both
    /// `BoxedStrategy` and the strategies returned by combinators).
    pub struct ArcStrategy<T> {
        inner: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for ArcStrategy<T> {
        fn clone(&self) -> Self {
            ArcStrategy { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T: Debug + Clone + 'static> ArcStrategy<T> {
        /// Weighted choice between strategies (backs `prop_oneof!`).
        pub fn union(choices: Vec<(u32, ArcStrategy<T>)>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            let inner = Arc::new(move |rng: &mut TestRng| {
                let mut pick = rng.next_u64() % total;
                for (w, s) in &choices {
                    let w = u64::from(*w);
                    if pick < w {
                        return s.generate(rng);
                    }
                    pick -= w;
                }
                unreachable!("weighted pick out of range")
            });
            ArcStrategy { inner }
        }
    }

    impl<T: Debug + Clone + 'static> Strategy for ArcStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.inner)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Debug + Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Debug + Clone + Sized + 'static {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    /// Full-range strategy for an [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> ArcStrategy<T> {
        let inner = Arc::new(|rng: &mut TestRng| T::arbitrary(rng));
        ArcStrategy { inner }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize);

    macro_rules! range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy_signed!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0.0);
    tuple_strategy!(S0.0, S1.1);
    tuple_strategy!(S0.0, S1.1, S2.2);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors: length drawn from `len`, elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Deterministic xorshift64* generator; each test derives its seed
    /// from the test name so failures reproduce across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test identifier (FNV-1a of the name).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-proptest-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

pub mod prelude {
    pub use super::strategy::{any, ArcStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::ArcStrategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::arced($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::ArcStrategy::union(vec![
            $((1u32, $crate::strategy::Strategy::arced($strat))),+
        ])
    };
}

/// Property assertion; fails the current case without panicking the
/// runner loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a != __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a != __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} == {:?})", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` runs the
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("proptest `{}` case {} failed: {}", stringify!($name), __case, __e);
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}
