//! Vendored offline stand-in for the `serde` crate.
//!
//! The real serde abstracts over data formats; this workspace only ever
//! serializes to and from JSON, so the vendored version collapses the
//! data model to a single JSON-like [`value::Value`] tree:
//!
//! * [`ser::Serialize`] — convert `self` into a [`value::Value`];
//! * [`de::Deserialize`] — rebuild `Self` from a [`value::Value`];
//! * `#[derive(Serialize, Deserialize)]` — provided by the vendored
//!   `serde_derive` proc-macro (structs with named fields; enums with
//!   unit and struct variants; `#[serde(default)]` on fields).
//!
//! `serde_json` (also vendored) supplies the actual JSON text encoding
//! and parsing on top of [`value::Value`].

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The JSON-shaped data model shared by Serialize and Deserialize.

    /// A JSON value. Objects preserve insertion order (derive emits
    /// fields in declaration order) so output is deterministic.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A negative integer (anything non-negative parses as `U64`).
        I64(i64),
        /// A non-negative integer.
        U64(u64),
        /// A floating-point number.
        F64(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object's pairs, if this is an object.
        pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The array's elements, if this is an array.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an unsigned integer, if losslessly representable.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::U64(n) => Some(n),
                Value::I64(n) if n >= 0 => Some(n as u64),
                _ => None,
            }
        }

        /// The value as a signed integer, if losslessly representable.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::I64(n) => Some(n),
                Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
                _ => None,
            }
        }

        /// The value as a float (integers coerce).
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::F64(f) => Some(f),
                Value::U64(n) => Some(n as f64),
                Value::I64(n) => Some(n as f64),
                _ => None,
            }
        }

        /// The value as a bool.
        pub fn as_bool(&self) -> Option<bool> {
            match *self {
                Value::Bool(b) => Some(b),
                _ => None,
            }
        }

        /// True if this is `null`.
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        /// Member lookup: `Some(&value)` for a present object key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object().and_then(|m| m.iter().find_map(|(k, v)| (k == key).then_some(v)))
        }

        /// Array element lookup.
        pub fn get_index(&self, index: usize) -> Option<&Value> {
            self.as_array().and_then(|a| a.get(index))
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        /// `value["key"]`, yielding `Null` for absent keys (serde_json
        /// semantics).
        fn index(&self, key: &str) -> &Value {
            static NULL: Value = Value::Null;
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        /// `value[i]`, yielding `Null` out of bounds.
        fn index(&self, index: usize) -> &Value {
            static NULL: Value = Value::Null;
            self.get_index(index).unwrap_or(&NULL)
        }
    }

    /// Ordered-object field lookup used by derived `Deserialize` impls.
    pub fn get_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find_map(|(k, v)| (k == key).then_some(v))
    }
}

pub mod ser {
    //! Serialization half of the collapsed data model.

    use crate::value::Value;

    /// Types convertible into a JSON [`Value`].
    pub trait Serialize {
        /// Converts `self` to a value tree.
        fn to_value(&self) -> Value;
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn to_value(&self) -> Value {
            (**self).to_value()
        }
    }

    impl<T: Serialize + ?Sized> Serialize for Box<T> {
        fn to_value(&self) -> Value {
            (**self).to_value()
        }
    }

    macro_rules! ser_unsigned {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn to_value(&self) -> Value { Value::U64(*self as u64) }
            }
        )*};
    }
    macro_rules! ser_signed {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
                }
            }
        )*};
    }
    ser_unsigned!(u8, u16, u32, u64, usize);
    ser_signed!(i8, i16, i32, i64, isize);

    impl Serialize for f64 {
        fn to_value(&self) -> Value {
            Value::F64(*self)
        }
    }

    impl Serialize for f32 {
        fn to_value(&self) -> Value {
            Value::F64(f64::from(*self))
        }
    }

    impl Serialize for bool {
        fn to_value(&self) -> Value {
            Value::Bool(*self)
        }
    }

    impl Serialize for String {
        fn to_value(&self) -> Value {
            Value::String(self.clone())
        }
    }

    impl Serialize for str {
        fn to_value(&self) -> Value {
            Value::String(self.to_owned())
        }
    }

    impl Serialize for Value {
        fn to_value(&self) -> Value {
            self.clone()
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn to_value(&self) -> Value {
            match self {
                Some(v) => v.to_value(),
                None => Value::Null,
            }
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }

    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }

    macro_rules! ser_tuple {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn to_value(&self) -> Value {
                    Value::Array(vec![$(self.$n.to_value()),+])
                }
            }
        )*};
    }
    ser_tuple! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

pub mod de {
    //! Deserialization half of the collapsed data model.

    use crate::value::Value;

    /// A deserialization (or JSON syntax) error.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl Error {
        /// Builds an error from any displayable message.
        pub fn custom(msg: impl std::fmt::Display) -> Error {
            Error(msg.to_string())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Types reconstructible from a JSON [`Value`].
    pub trait Deserialize: Sized {
        /// Rebuilds `Self` from a value tree.
        fn from_value(v: &Value) -> Result<Self, Error>;
    }

    fn expect<T>(v: &Value, what: &str, got: Option<T>) -> Result<T, Error> {
        got.ok_or_else(|| Error(format!("expected {what}, found {v:?}")))
    }

    macro_rules! de_int {
        ($($t:ty),*) => {$(
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    let n = expect(v, "an integer", v.as_i64().or_else(|| v.as_u64().map(|u| u as i64)))?;
                    <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
                }
            }
        )*};
    }
    de_int!(u8, u16, u32, i8, i16, i32, i64, isize);

    impl Deserialize for u64 {
        fn from_value(v: &Value) -> Result<Self, Error> {
            expect(v, "an unsigned integer", v.as_u64())
        }
    }

    impl Deserialize for usize {
        fn from_value(v: &Value) -> Result<Self, Error> {
            expect(v, "an unsigned integer", v.as_u64()).map(|n| n as usize)
        }
    }

    impl Deserialize for f64 {
        fn from_value(v: &Value) -> Result<Self, Error> {
            expect(v, "a number", v.as_f64())
        }
    }

    impl Deserialize for f32 {
        fn from_value(v: &Value) -> Result<Self, Error> {
            expect(v, "a number", v.as_f64()).map(|f| f as f32)
        }
    }

    impl Deserialize for bool {
        fn from_value(v: &Value) -> Result<Self, Error> {
            expect(v, "a bool", v.as_bool())
        }
    }

    impl Deserialize for String {
        fn from_value(v: &Value) -> Result<Self, Error> {
            expect(v, "a string", v.as_str().map(str::to_owned))
        }
    }

    impl Deserialize for Value {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Ok(v.clone())
        }
    }

    impl<T: Deserialize> Deserialize for Option<T> {
        fn from_value(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Null => Ok(None),
                other => T::from_value(other).map(Some),
            }
        }
    }

    impl<T: Deserialize> Deserialize for Vec<T> {
        fn from_value(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Array(items) => items.iter().map(T::from_value).collect(),
                other => Err(Error(format!("expected an array, found {other:?}"))),
            }
        }
    }

    impl<T: Deserialize> Deserialize for Box<T> {
        fn from_value(v: &Value) -> Result<Self, Error> {
            T::from_value(v).map(Box::new)
        }
    }

    macro_rules! de_tuple {
        ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
            impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    match v {
                        Value::Array(items) if items.len() == $len => {
                            Ok(($($t::from_value(&items[$n])?,)+))
                        }
                        other => Err(Error(format!(
                            "expected an array of {}, found {other:?}", $len
                        ))),
                    }
                }
            }
        )*};
    }
    de_tuple! {
        (1: 0 A)
        (2: 0 A, 1 B)
        (3: 0 A, 1 B, 2 C)
        (4: 0 A, 1 B, 2 C, 3 D)
        (5: 0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

// Trait re-exports share names with the derive macros above — they live
// in different namespaces, exactly as in the real serde.
pub use de::Deserialize;
pub use ser::Serialize;

#[cfg(test)]
mod tests {
    use crate::ser::Serialize as _;
    use crate::value::Value;

    #[test]
    fn primitives_round_the_data_model() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(2i32.to_value(), Value::U64(2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::U64(1), Value::U64(2)]));
        assert_eq!((1usize, 2.5f64).to_value(), Value::Array(vec![Value::U64(1), Value::F64(2.5)]));
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["missing"].is_null());
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn deserialize_coercions() {
        use crate::de::Deserialize as _;
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::U64(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }
}
