//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde`'s collapsed JSON data model, without `syn`/`quote`
//! (unavailable offline): the item definition is parsed directly from the
//! `proc_macro` token stream and the impl is emitted as source text.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (field attribute `#[serde(default)]`);
//! * enums whose variants are unit or have named fields (serde's
//!   externally-tagged representation: `"Variant"` /
//!   `{"Variant": {...}}`).
//!
//! Generics, tuple structs and tuple variants are rejected with a panic
//! at expansion time.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    /// `#[serde(default)]`: fall back to `Default::default()` if absent.
    default: bool,
}

struct Variant {
    name: String,
    /// `None` = unit variant; `Some(fields)` = struct variant.
    fields: Option<Vec<Field>>,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

fn ident_of(t: &TokenTree) -> String {
    match t {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected identifier, found {other}"),
    }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// True if the bracketed attribute body is `serde(... default ...)`.
fn attr_is_serde_default(g: &Group) -> bool {
    let mut toks = g.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Skips `#[...]` attributes at `toks[*i]`, returning whether any was
/// `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while is_punct(toks.get(*i), '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            if attr_is_serde_default(g) {
                default = true;
            }
        }
        *i += 2;
    }
    default
}

/// Skips `pub` / `pub(...)` at `toks[*i]`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn parse_item(ts: TokenStream) -> Item {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind = ident_of(&toks[i]);
    i += 1;
    let name = ident_of(&toks[i]);
    i += 1;
    if is_punct(toks.get(i), '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let body_group = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.clone(),
        _ => panic!("vendored serde_derive supports only brace-bodied items; `{name}` is not one"),
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_fields(body_group.stream())),
        "enum" => Body::Enum(parse_variants(body_group.stream())),
        other => panic!("cannot derive for item kind `{other}`"),
    };
    Item { name, body }
}

fn parse_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let default = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = ident_of(&toks[i]);
        i += 1;
        assert!(is_punct(toks.get(i), ':'), "expected `:` after field `{name}`");
        i += 1;
        // Consume the type: everything up to the next top-level comma,
        // tracking angle-bracket depth (groups are atomic token trees, so
        // only `<...>` nesting matters).
        let mut angle_depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = ident_of(&toks[i]);
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde_derive does not support tuple variant `{name}`")
            }
            _ => None,
        };
        // Skip to (and over) the variant separator, tolerating explicit
        // discriminants.
        while i < toks.len() && !is_punct(toks.get(i), ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    out.push_str(IMPL_ATTRS);
    out.push_str(&format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n"
    ));
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(&ser_field_stmts(fields, |f| format!("&self.{f}")));
            out.push_str("::serde::value::Value::Object(__fields)\n");
        }
        Body::Enum(variants) => {
            out.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    None => out.push_str(&format!(
                        "{name}::{vname} => ::serde::value::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Some(fields) => {
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        out.push_str(&format!("{name}::{vname} {{ {} }} => {{\n", pat.join(", ")));
                        out.push_str(&ser_field_stmts(fields, |f| f.to_string()));
                        // Externally-tagged envelope: {"Variant": {...}}.
                        out.push_str(&format!(
                            "::serde::value::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::value::Value::Object(__fields))])\n}},\n"
                        ));
                    }
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out
}

/// Emits statements declaring `__fields` and pushing every field's
/// `(name, value)` pair, reading each field via `access`.
fn ser_field_stmts(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, \
         ::serde::value::Value)> = ::std::vec::Vec::new();\n",
    );
    for f in fields {
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{0}\"), \
             ::serde::ser::Serialize::to_value({1})));\n",
            f.name,
            access(&f.name)
        ));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    out.push_str(IMPL_ATTRS);
    out.push_str(&format!(
        "impl ::serde::de::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n"
    ));
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(&format!(
                "let __obj = match __v {{ \
                 ::serde::value::Value::Object(__m) => __m, \
                 _ => return ::std::result::Result::Err(\
                 ::serde::de::Error::custom(\"expected object for {name}\")) }};\n"
            ));
            out.push_str(&format!(
                "::std::result::Result::Ok({})\n",
                de_fields_literal(name, fields)
            ));
        }
        Body::Enum(variants) => {
            out.push_str("match __v {\n");
            // Unit variants arrive as plain strings.
            out.push_str("::serde::value::Value::String(__s) => match __s.as_str() {\n");
            for v in variants.iter().filter(|v| v.fields.is_none()) {
                out.push_str(&format!(
                    "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                    v.name
                ));
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n"
            ));
            // Struct variants arrive as single-key objects.
            out.push_str(
                "::serde::value::Value::Object(__pairs) if __pairs.len() == 1 => {\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {\n",
            );
            for v in variants.iter() {
                if let Some(fields) = &v.fields {
                    let vname = &v.name;
                    out.push_str(&format!(
                        "\"{vname}\" => {{ let __obj = match __inner {{ \
                         ::serde::value::Value::Object(__m) => __m, \
                         _ => return ::std::result::Result::Err(\
                         ::serde::de::Error::custom(\
                         \"expected object body for {name}::{vname}\")) }};\n\
                         ::std::result::Result::Ok({})\n}},\n",
                        de_fields_literal(&format!("{name}::{vname}"), fields)
                    ));
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n}},\n"
            ));
            out.push_str(&format!(
                "_ => ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"expected a variant of {name}\")),\n}}\n"
            ));
        }
    }
    out.push_str("}\n}\n");
    out
}

/// Emits a `Path { field: ..., }` literal deserializing every field from
/// `__obj`.
fn de_fields_literal(path: &str, fields: &[Field]) -> String {
    let mut out = format!("{path} {{\n");
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"missing field `{}` in {}\"))",
                f.name, path
            )
        };
        out.push_str(&format!(
            "{0}: match ::serde::value::get_field(__obj, \"{0}\") {{\n\
             ::std::option::Option::Some(__fv) => \
             ::serde::de::Deserialize::from_value(__fv)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            f.name
        ));
    }
    out.push('}');
    out
}
