//! Vendored offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde`'s [`Value`] model to JSON text and
//! parses JSON text back, exposing the same entry points this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`],
//! [`from_value`], plus the `json!`-free [`Value`] re-export.

pub use serde::value::Value;
use serde::{de, ser};

/// Parse or serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<de::Error> for Error {
    fn from(e: de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON.
pub fn to_string<T: ser::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: ser::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: ser::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes `T` from JSON text.
pub fn from_str<T: de::Deserialize>(s: &str) -> Result<T> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Deserializes `T` from a [`Value`] tree.
pub fn from_value<T: de::Deserialize>(v: &Value) -> Result<T> {
    Ok(T::from_value(v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a ".0" suffix.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("dws".into())),
            ("n".into(), Value::U64(42)),
            ("neg".into(), Value::I64(-7)),
            ("pi".into(), Value::F64(3.5)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("xs".into(), Value::Array(vec![Value::U64(1), Value::U64(2)])),
        ]);
        let s = to_string(&v).unwrap();
        let back = parse(&s).unwrap();
        assert_eq!(format!("{back:?}"), format!("{v:?}"));
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Array(vec![
            Value::Object(vec![("k".into(), Value::String("a\"b\\c\n".into()))]),
            Value::U64(9),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back = parse(&s).unwrap();
        assert_eq!(format!("{back:?}"), format!("{v:?}"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "line\nup A ok", "f": 1.25e2}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("line\nup A ok"));
        assert_eq!(v["f"].as_f64(), Some(125.0));
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&Value::F64(2.0)).unwrap(), "2.0");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
    }
}
